//! Quickstart: generate a synthetic country, simulate one week of mobile
//! traffic through the measurement pipeline, and reproduce the paper's
//! headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobilenet::core::ranking::{service_ranking, uplink_fraction, zipf_ranking};
use mobilenet::core::report::overview_text;
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale};

fn main() {
    // A ~1,000-commune country with the full measurement pipeline:
    // sessions → GTP probes → ULI localization → DPI → commune aggregation.
    println!("generating study (this samples a few million sessions)...\n");
    let study = Pipeline::builder()
        .scale(Scale::Small)
        .seed(42)
        .run()
        .expect("small config is valid")
        .into_study();

    println!("== dataset overview ==\n{}", overview_text(&study));

    // §3 / Figure 2: the service ranking follows a Zipf law in its head.
    let fig2 = zipf_ranking(&study);
    if let Some(fit) = &fig2.dl_fit {
        println!(
            "== figure 2 ==\ndownlink Zipf exponent {:.2} (paper: 1.69), r² {:.3}, {:.1} orders of magnitude spanned\n",
            fit.exponent, fit.r2, fig2.dl_span_orders
        );
    }

    // §3 / Figure 3: who carries the traffic.
    let ranking = service_ranking(&study, Direction::Down);
    println!("== figure 3: top services by downlink share ==");
    for s in ranking.services.iter().take(8) {
        println!(
            "  {:<16} {:<16} {:>5.1}%",
            s.name,
            s.category.label(),
            s.share_of_total * 100.0
        );
    }
    let video = ranking.category_shares.get("video streaming").copied().unwrap_or(0.0);
    println!(
        "  video streaming carries {:.0}% of downlink (paper: >46%)",
        video * 100.0
    );
    println!(
        "  uplink is {:.1}% of the total load (paper: <5%)",
        uplink_fraction(&study) * 100.0
    );
}
