//! Capacity planning from demand forecasts — the follow-on to the paper's
//! orchestration motivation: given the first five days of the measurement
//! week, how well can an operator predict (and therefore pre-provision
//! for) the weekend's per-service demand?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use mobilenet::core::forecast::{forecast_report, holt_winters, HoltWintersConfig};
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale};

fn main() {
    let study = Pipeline::builder()
        .scale(Scale::Small)
        .seed(42)
        .run()
        .expect("small config is valid")
        .into_study();
    let train_hours = 120; // Sat..Wed; predict Thu+Fri

    println!("== per-service predictability (train 5 days, test 2) ==");
    println!(
        "{:<17} {:>12} {:>12} {:>9}",
        "service", "naive sMAPE", "HW sMAPE", "winner"
    );
    let report = forecast_report(&study, Direction::Down, train_hours);
    let mut hw_wins = 0;
    for f in &report {
        let winner = if f.holt_winters.smape <= f.naive.smape {
            hw_wins += 1;
            "HW"
        } else {
            "naive"
        };
        println!(
            "{:<17} {:>11.1}% {:>11.1}% {:>9}",
            f.name,
            f.naive.smape * 100.0,
            f.holt_winters.smape * 100.0,
            winner
        );
    }
    println!("\nHolt-Winters wins on {hw_wins}/{} services.", report.len());

    // Provisioning: forecast the total downlink demand and compare the
    // implied peak-hour capacity against what actually happened.
    let n = study.catalog().head().len();
    let mut total = vec![0.0; mobilenet::traffic::HOURS_PER_WEEK];
    for s in 0..n {
        for (acc, v) in total
            .iter_mut()
            .zip(study.dataset().national_series(Direction::Down, s).iter())
        {
            *acc += v;
        }
    }
    let (train, test) = total.split_at(train_hours);
    let forecast = holt_winters(train, &HoltWintersConfig::hourly(), test.len());
    let predicted_peak = forecast.iter().cloned().fold(0.0f64, f64::max);
    let actual_peak = test.iter().cloned().fold(0.0f64, f64::max);
    println!("\n== peak-hour provisioning for the held-out days ==");
    println!("predicted peak demand: {predicted_peak:>12.0} MB/h");
    println!("actual peak demand:    {actual_peak:>12.0} MB/h");
    let headroom = predicted_peak * 1.15;
    println!(
        "provisioning at forecast +15% headroom ({headroom:.0} MB/h) {} the actual peak",
        if headroom >= actual_peak { "covers" } else { "misses" }
    );
}
