//! Per-service activity-peak profiles — a terminal rendering of Figure 6.
//!
//! Runs the smoothed z-score detector (§4) on every service's national
//! series and prints which of the seven topical times each service peaks
//! at, with the measured peak intensity.
//!
//! ```text
//! cargo run --release --example peak_profiles
//! ```

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::topical::topical_profiles;
use mobilenet::traffic::{Direction, TopicalTime};
use mobilenet::{Pipeline, Scale};

fn main() {
    // Expected-value path: noise-free aggregates at demo scale. The measured
    // path gives the same picture at figure scale (6k+ communes) — see the
    // `figures` binary — but at 1,000 communes its sampling noise would blur
    // this illustration.
    let study = Pipeline::builder()
        .scale(Scale::Small)
        .expected()
        .seed(42)
        .run()
        .expect("small config is valid")
        .into_study();
    let profiles = topical_profiles(&study, Direction::Down, &PeakConfig::paper());

    // Header: one column per topical time (ring order of Figure 6).
    print!("{:<17}", "service");
    for t in TopicalTime::ALL {
        print!("{:>12}", short_label(t));
    }
    println!();
    println!("{}", "-".repeat(17 + 12 * 7));

    for p in &profiles {
        print!("{:<17}", p.name);
        for t in TopicalTime::ALL {
            match p.intensity[t.index()] {
                Some(v) if p.has_peak[t.index()] => print!("{:>11.0}%", v * 100.0),
                _ => print!("{:>12}", "·"),
            }
        }
        println!();
    }

    // The §4 observations.
    let midday = profiles
        .iter()
        .filter(|p| p.has_peak[TopicalTime::Midday.index()])
        .count();
    println!(
        "\n{midday}/{} services peak at weekday midday (paper: almost all).",
        profiles.len()
    );
    let students: Vec<&str> = profiles
        .iter()
        .filter(|p| p.has_peak[TopicalTime::MorningBreak.index()])
        .map(|p| p.name)
        .collect();
    println!(
        "morning-break peaks (the paper's student services): {}",
        students.join(", ")
    );

    // Few identical (timing, intensity) signatures → the clustering of
    // Figure 5 finds nothing to group.
    let mut signatures: Vec<[Option<u8>; 7]> = profiles
        .iter()
        .map(|p| {
            let mut sig = [None; 7];
            for (i, s) in sig.iter_mut().enumerate() {
                if p.has_peak[i] {
                    *s = Some((p.intensity[i].unwrap_or(0.0) / 0.25).round() as u8);
                }
            }
            sig
        })
        .collect();
    signatures.sort_unstable();
    let total = signatures.len();
    signatures.dedup();
    println!(
        "{} distinct peak signatures over {} services — temporal dynamics are heterogeneous.",
        signatures.len(),
        total
    );
}

fn short_label(t: TopicalTime) -> &'static str {
    match t {
        TopicalTime::WeekendMidday => "we-midday",
        TopicalTime::WeekendEvening => "we-evening",
        TopicalTime::MorningCommute => "commute-am",
        TopicalTime::MorningBreak => "break-am",
        TopicalTime::Midday => "midday",
        TopicalTime::AfternoonCommute => "commute-pm",
        TopicalTime::Evening => "evening",
    }
}
