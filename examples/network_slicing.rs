//! Network-slicing dimensioning — the paper's motivating application.
//!
//! The introduction argues that understanding *when* each service is
//! consumed enables dynamic resource orchestration: "an effective
//! orchestration of network slices builds on the spatial [and temporal]
//! complementarity of the demands for the different services". This
//! example quantifies that: if every service category got its own
//! statically-dimensioned slice (provisioned for its own peak), how much
//! more capacity would that need than a shared pool provisioned for the
//! peak of the *sum*? The temporal heterogeneity the paper demonstrates
//! (services peaking at different topical times) is exactly what makes
//! the shared pool cheaper.
//!
//! ```text
//! cargo run --release --example network_slicing
//! ```

use std::collections::BTreeMap;

use mobilenet::traffic::{Direction, HOURS_PER_WEEK};
use mobilenet::{Pipeline, Scale};

fn main() {
    let study = Pipeline::builder()
        .scale(Scale::Small)
        .seed(42)
        .run()
        .expect("small config is valid")
        .into_study();
    let ds = study.dataset();

    // Aggregate national hourly downlink per category.
    let mut per_category: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for (s, spec) in study.catalog().head().iter().enumerate() {
        let series = ds.national_series(Direction::Down, s);
        let entry = per_category
            .entry(spec.category.label())
            .or_insert_with(|| vec![0.0; HOURS_PER_WEEK]);
        for (acc, v) in entry.iter_mut().zip(series.iter()) {
            *acc += v;
        }
    }

    println!("== per-slice (static) dimensioning ==");
    println!("{:<16} {:>12} {:>12} {:>8}", "slice", "peak MB/h", "mean MB/h", "peak/mean");
    let mut sum_of_peaks = 0.0;
    let mut total = vec![0.0; HOURS_PER_WEEK];
    for (category, series) in &per_category {
        let peak = series.iter().cloned().fold(0.0f64, f64::max);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        sum_of_peaks += peak;
        for (acc, v) in total.iter_mut().zip(series.iter()) {
            *acc += v;
        }
        println!("{:<16} {:>12.0} {:>12.0} {:>8.2}", category, peak, mean, peak / mean);
    }

    let shared_peak = total.iter().cloned().fold(0.0f64, f64::max);
    println!("\n== pooling gain from temporal complementarity ==");
    println!("sum of per-slice peaks : {:>12.0} MB/h", sum_of_peaks);
    println!("peak of the shared pool: {:>12.0} MB/h", shared_peak);
    println!(
        "static slicing over-provisions by {:.1}% — the temporal heterogeneity of §4 is the saving",
        (sum_of_peaks / shared_peak - 1.0) * 100.0
    );

    // When does each slice need its capacity? Distinct peak hours are the
    // fingerprint of Figure 6.
    println!("\n== peak hour of each slice (hour-of-week, 0 = Sat 00:00) ==");
    for (category, series) in &per_category {
        let (argmax, _) = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let day = ["Sat", "Sun", "Mon", "Tue", "Wed", "Thu", "Fri"][argmax / 24];
        println!("{:<16} {} {:02}:00", category, day, argmax % 24);
    }
}
