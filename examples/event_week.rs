//! Why the paper picked an event-free week.
//!
//! §2: the measurement week "was carefully selected so as to avoid major
//! nationwide events like holidays or strikes". This example injects a
//! Saturday-evening stadium event near the capital and shows what it does
//! to the paper's analyses: a surge in the host commune's per-user demand,
//! and extra activity peaks at a non-topical moment.
//!
//! ```text
//! cargo run --release --example event_week
//! ```

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::topical::topical_profiles;
use mobilenet::traffic::{Direction, EventSpec};
use mobilenet::{Pipeline, Scale};

fn main() {
    let seed = 42;
    let clean = Pipeline::builder()
        .scale(Scale::Small)
        .seed(seed)
        .run()
        .expect("small config is valid")
        .into_study();

    // The same week, with a stadium match near the capital on Saturday
    // evening. The epicenter must be chosen on the same country, so peek
    // at the clean study's geography.
    let capital = clean.country().cities()[0].center;
    let event = Pipeline::builder()
        .scale(Scale::Small)
        .configure(|c| c.traffic.events.push(EventSpec::stadium_match(capital)))
        .seed(seed)
        .run()
        .expect("small config is valid")
        .into_study();

    // Effect 1: the host commune's demand surges.
    let host = clean.country().commune_at(&capital);
    let facebook = clean
        .catalog()
        .head()
        .iter()
        .position(|s| s.name == "Facebook")
        .unwrap();
    let before = clean.dataset().per_user_commune_vector(Direction::Up, facebook)
        [host.index()];
    let after = event.dataset().per_user_commune_vector(Direction::Up, facebook)
        [host.index()];
    println!("== host-commune effect (Facebook uplink, per subscriber) ==");
    println!("clean week: {before:.2} MB/week   event week: {after:.2} MB/week   ({:+.0}%)",
        (after / before - 1.0) * 100.0);

    // Effect 2: the national series of affected services pick up peaks at
    // the event hour (Saturday 19:00–22:00 is near no weekday topical
    // time; on weekends only midday/evening are topical, so the 19:00
    // front lands close to the weekend-evening slot — or off the grid).
    println!("\n== detector view (downlink, fronts per topical time + off-grid) ==");
    println!(
        "{:<17} {:>14} {:>14} {:>11} {:>11}",
        "service", "we-evening(ck)", "we-evening(ev)", "off-grid(ck)", "off-grid(ev)"
    );
    let clean_profiles = topical_profiles(&clean, Direction::Down, &PeakConfig::paper());
    let event_profiles = topical_profiles(&event, Direction::Down, &PeakConfig::paper());
    for name in ["Facebook", "SnapChat", "YouTube", "Mail"] {
        let c = clean_profiles.iter().find(|p| p.name == name).unwrap();
        let e = event_profiles.iter().find(|p| p.name == name).unwrap();
        let we = mobilenet::traffic::TopicalTime::WeekendEvening.index();
        println!(
            "{:<17} {:>14} {:>14} {:>11} {:>11}",
            name, c.front_counts[we], e.front_counts[we], c.off_topical_fronts,
            e.off_topical_fronts
        );
    }

    println!(
        "\nA single localized event already nudges the national peak structure — at\n\
         nationwide-event scale it would rewrite it, which is why the paper's week\n\
         was chosen to avoid holidays and strikes."
    );
}
