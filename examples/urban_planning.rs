//! Urbanization and land use seen through mobile demand — the paper's §5
//! in one report, plus an ASCII rendering of Figure 9's maps.
//!
//! ```text
//! cargo run --release --example urban_planning
//! ```

use mobilenet::core::maps::{coverage_map, per_user_map};
use mobilenet::core::spatial::{concentration, spatial_correlation};
use mobilenet::core::urbanization::{
    mean_temporal_r2, mean_volume_ratios, urbanization_profiles,
};
use mobilenet::geo::UsageClass;
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale};

fn main() {
    // Expected-value path: noise-free aggregates at demo scale. The measured
    // path gives the same picture at figure scale (6k+ communes) — see the
    // `figures` binary — but at 1,000 communes its sampling noise would blur
    // this illustration.
    let study = Pipeline::builder()
        .scale(Scale::Small)
        .expected()
        .seed(42)
        .run()
        .expect("small config is valid")
        .into_study();

    // Figure 8: demand concentration across communes.
    let twitter = study
        .catalog()
        .head()
        .iter()
        .position(|s| s.name == "Twitter")
        .unwrap();
    let conc = concentration(&study, twitter);
    println!("== demand concentration (Twitter, Figure 8) ==");
    println!(
        "top 1% of communes carry {:.0}% of the traffic; top 10% carry {:.0}%",
        conc.top1_share * 100.0,
        conc.top10_share * 100.0
    );
    println!(
        "median weekly per-subscriber volume {:.2} MB; 90th percentile {:.2} MB\n",
        conc.per_user_cdf.inverse(0.5),
        conc.per_user_cdf.inverse(0.9)
    );

    // Figure 10: geography is shared across services.
    let corr = spatial_correlation(&study, Direction::Down);
    let outliers: Vec<&str> = corr.outlier_order()[..3]
        .iter()
        .map(|&i| corr.names[i])
        .collect();
    println!("== spatial correlation (Figure 10) ==");
    println!(
        "mean pairwise r² of per-user maps: {:.2} (paper: 0.60); least-correlated: {}\n",
        corr.mean_r2,
        outliers.join(", ")
    );

    // Figure 11: urbanization scales volume, not timing.
    let urb = urbanization_profiles(&study, Direction::Down);
    let ratios = mean_volume_ratios(&urb);
    let r2 = mean_temporal_r2(&urb);
    println!("== urbanization (Figure 11) ==");
    println!("{:<12} {:>14} {:>14}", "class", "volume ratio", "temporal r²");
    for class in UsageClass::ALL {
        println!(
            "{:<12} {:>14.2} {:>14.2}",
            class.label(),
            ratios[class.index()],
            r2[class.index()]
        );
    }
    println!("(volume ratios relative to urban; TGV stands apart in timing)\n");

    // Figure 9: the maps, rendered as ASCII (cities and corridors glow).
    println!("== per-subscriber Twitter downlink (Figure 9 left) ==");
    println!("{}", per_user_map(&study, Direction::Down, twitter, 72).to_ascii());

    println!("== 3G/4G coverage (Figure 9 right; ' '=none, ':'=3G, '@'=4G) ==");
    let grid = coverage_map(study.country(), 72);
    let rendered: String = grid
        .cells
        .chunks(grid.width)
        .map(|row| {
            row.iter()
                .map(|v| match *v as u8 {
                    2 => '@',
                    1 => ':',
                    _ => ' ',
                })
                .collect::<String>()
                + "\n"
        })
        .collect();
    println!("{rendered}");
}
