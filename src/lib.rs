//! `mobilenet` — a Rust reproduction of *Not All Apps Are Created Equal:
//! Analysis of Spatiotemporal Heterogeneity in Nationwide Mobile Service
//! Usage* (Marquez et al., CoNEXT 2017).
//!
//! The paper measures one week of per-service mobile traffic over a whole
//! country and shows that services have **unique temporal dynamics**,
//! **shared geography**, and **urbanization-scaled volume with
//! urbanization-independent timing**. This workspace rebuilds both the
//! measurement substrate (synthetic country, packet-core collection
//! pipeline) and the analysis stack, end to end, in pure Rust:
//!
//! * [`geo`] — synthetic nationwide geography (communes, cities, TGV
//!   corridors, 3G/4G coverage);
//! * [`traffic`] — the generative per-service workload model and session
//!   sampler;
//! * [`netsim`] — GTP probes, ULI localization, DPI classification,
//!   commune aggregation;
//! * [`timeseries`] — FFT, shape-based distance, statistics;
//! * [`cluster`] — k-shape, k-means, cluster-quality indices;
//! * [`core`] — the paper's analyses and figure pipeline;
//! * [`par`] — the deterministic parallel execution layer (ordered
//!   scoped-thread map/reduce, `MOBILENET_THREADS`);
//! * [`obs`] — the observability layer (span timers, counters, gauges,
//!   histograms; `MOBILENET_OBS`);
//! * [`serve`] — incremental aggregation over the record stream and the
//!   live TCP query service (`mobilenet serve` / `mobilenet query`).
//!
//! # Quickstart
//!
//! The [`Pipeline`] builder is the single entry point: pick a scale,
//! maybe tweak the configuration, seed it, run.
//!
//! ```no_run
//! use mobilenet::core::ranking::zipf_ranking;
//! use mobilenet::{Pipeline, Scale};
//!
//! // Generate a country, simulate a week of traffic through the
//! // measurement pipeline, and analyze it.
//! let run = Pipeline::builder().scale(Scale::Small).seed(42).run()?;
//! let fig2 = zipf_ranking(run.study());
//! println!("Zipf exponent: {:.2}", fig2.dl_fit.unwrap().exponent);
//! # Ok::<(), mobilenet::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mobilenet_cluster as cluster;
pub use mobilenet_core as core;
pub use mobilenet_geo as geo;
pub use mobilenet_netsim as netsim;
pub use mobilenet_obs as obs;
pub use mobilenet_par as par;
pub use mobilenet_serve as serve;
pub use mobilenet_timeseries as timeseries;
pub use mobilenet_traffic as traffic;

pub use mobilenet_core::{
    CollectOptions, Error, FaultPlan, FaultStats, FoldStrategy, IngestStats, OutageWindow,
    Pipeline, PipelineBuilder, Run, Scale, DEFAULT_CHUNK_SIZE, DEFAULT_SEED,
};
pub use mobilenet_serve::{
    spawn_registry_server, spawn_server, Client, DeltaEvent, LiveSnapshot, LiveState,
    ServerHandle, SnapshotQuery, StudyInfo, StudyRegistry, Topic, PROTOCOL_VERSION,
};
