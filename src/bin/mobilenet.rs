//! `mobilenet` — command-line front end to the reproduction.
//!
//! ```text
//! mobilenet overview  [--scale S] [--seed N]             dataset + collection summary
//! mobilenet ranking   [--scale S] [--seed N] [--uplink]  Figure 3 as a table
//! mobilenet peaks     [--scale S] [--seed N]             Figure 6 as a table
//! mobilenet map       [--scale S] [--seed N] [--service NAME] [--width W]
//! mobilenet forecast  [--scale S] [--seed N]             predictability report
//! mobilenet export    [--scale S] [--seed N] --out FILE  dataset CSV for offline analysis
//! mobilenet serve     [--scale S] [--seed N] [--addr A] [--weeks W] [--study NAME=SCALE[:SEED[:WEEKS]]]...
//! mobilenet query     [--addr A] [--use STUDY] [--body-only] Q...
//! mobilenet watch     [--addr A] [--use STUDY] [--topics LIST] [--events N]
//! ```
//!
//! Scales: `small` (1k communes), `medium` (6k), `france` (36k),
//! `national` (36k communes at paper session counts, ~10⁸ over the week,
//! streamed in bounded memory).
//!
//! Every command also accepts `--threads N` to pin the worker count of the
//! parallel pipeline stages (default: `MOBILENET_THREADS` or all cores) —
//! the output is identical at any thread count — and `--obs FILE` to
//! collect per-stage observability (spans, counters, histograms) and
//! write it to `FILE` as JSON (`MOBILENET_OBS` works too; see README).
//!
//! `--faults SPEC` injects capture-path faults (probe outages, record
//! loss/duplication, counter truncation, clock skew). `SPEC` is either
//! the preset `degraded` or a comma-separated key=value list, e.g.
//! `--faults seed=7,loss=0.05,dup=0.01,outage=gn:33-37`.
//!
//! `--chunk-size N` bounds the streaming-ingestion chunk size in
//! records: peak resident records stay at or below `N × workers`, and
//! the output is bit-identical at every chunk size.
//!
//! `serve` binds `--addr` (default `127.0.0.1:7878`), prints the bound
//! address, then ingests on background threads while answering queries;
//! it runs until a client sends `SHUTDOWN`. One study per `--study`
//! spec is served (`NAME=SCALE[:SEED[:WEEKS]]`, repeatable); without
//! `--study`, a single study named `default` runs at
//! `--scale`/`--seed`/`--weeks`. `--weeks W` folds `W` consecutive
//! weeks through the 168-hour ring in the memory of a one-week run.
//!
//! `query` connects a typed client to a running server, optionally
//! selects a study (`--use STUDY`), sends each `Q` as one protocol line
//! and prints the responses (`--body-only` drops the `OK <n>` frame —
//! handy for piping `DATASET` into a file to diff against a batch
//! `export`). `watch` subscribes to a study's delta stream
//! (`--topics watermark,version,rank,autocorr` or `all`) and prints one
//! `<seq> <payload>` line per event until the stream ends or `--events
//! N` have been printed.

use std::path::PathBuf;
use std::process::ExitCode;

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::ranking::service_ranking;
use mobilenet::core::report::overview_text;
use mobilenet::core::study::Study;
use mobilenet::core::topical::topical_profiles;
use mobilenet::core::{forecast, maps};
use mobilenet::traffic::{Direction, TopicalTime};
use mobilenet::{Error, FaultPlan, Pipeline, Scale, DEFAULT_SEED};

struct Args {
    command: String,
    scale: Scale,
    seed: u64,
    uplink: bool,
    service: String,
    width: usize,
    out: Option<PathBuf>,
    threads: Option<usize>,
    obs: Option<PathBuf>,
    faults: Option<FaultPlan>,
    chunk_size: Option<usize>,
    addr: String,
    body_only: bool,
    queries: Vec<String>,
    weeks: usize,
    studies: Vec<String>,
    use_study: Option<String>,
    topics: String,
    events: Option<usize>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mobilenet <overview|ranking|peaks|map|forecast|export|serve|query|watch> \
         [--scale small|medium|france|national] [--seed N] [--uplink] \
         [--service NAME] [--width W] [--out FILE] [--threads N] [--obs FILE] \
         [--faults SPEC] [--chunk-size N] [--addr HOST:PORT] [--weeks N] \
         [--study NAME=SCALE[:SEED[:WEEKS]]] [--use STUDY] [--topics LIST] \
         [--events N] [--body-only] [QUERY...]"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) => c,
        None => return Err(usage()),
    };
    let mut args = Args {
        command,
        scale: Scale::Small,
        seed: DEFAULT_SEED,
        uplink: false,
        service: "Twitter".into(),
        width: 72,
        out: None,
        threads: None,
        obs: None,
        faults: None,
        chunk_size: None,
        addr: "127.0.0.1:7878".into(),
        body_only: false,
        queries: Vec::new(),
        weeks: 1,
        studies: Vec::new(),
        use_study: None,
        topics: "all".into(),
        events: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => {
                let name = argv.next().ok_or_else(usage)?;
                args.scale = name.parse().map_err(|e: Error| {
                    eprintln!("{e}");
                    ExitCode::from(2)
                })?;
            }
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?
            }
            "--uplink" => args.uplink = true,
            "--service" => args.service = argv.next().ok_or_else(usage)?,
            "--width" => {
                args.width = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?
            }
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or_else(usage)?)),
            "--threads" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                args.threads = Some(n);
            }
            "--obs" => args.obs = Some(PathBuf::from(argv.next().ok_or_else(usage)?)),
            "--chunk-size" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                args.chunk_size = Some(n);
            }
            "--faults" => {
                let spec = argv.next().ok_or_else(usage)?;
                args.faults = Some(FaultPlan::parse(&spec).map_err(|e| {
                    eprintln!("--faults: {e}");
                    ExitCode::from(2)
                })?);
            }
            "--addr" => args.addr = argv.next().ok_or_else(usage)?,
            "--body-only" => args.body_only = true,
            "--weeks" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                args.weeks = n;
            }
            "--study" => args.studies.push(argv.next().ok_or_else(usage)?),
            "--use" => args.use_study = Some(argv.next().ok_or_else(usage)?),
            "--topics" => args.topics = argv.next().ok_or_else(usage)?,
            "--events" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                args.events = Some(n);
            }
            other if args.command == "query" && !other.starts_with("--") => {
                args.queries.push(other.to_string());
            }
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(code)) => code,
        Err(CliError::Pipeline(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// CLI failure: either a usage problem (its exit code is already decided)
/// or a pipeline error to print.
enum CliError {
    Usage(ExitCode),
    Pipeline(Error),
}

impl From<Error> for CliError {
    fn from(e: Error) -> Self {
        CliError::Pipeline(e)
    }
}

fn run(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "serve" => return run_serve(args),
        "query" => return run_query(args),
        "watch" => return run_watch(args),
        _ => {}
    }
    let dir = if args.uplink { Direction::Up } else { Direction::Down };

    eprintln!("generating {} study (seed {})...", args.scale, args.seed);
    let mut builder = Pipeline::builder().scale(args.scale).seed(args.seed);
    if let Some(n) = args.threads {
        builder = builder.threads(n);
    }
    if let Some(plan) = &args.faults {
        builder = builder.faults(plan.clone());
    }
    if let Some(n) = args.chunk_size {
        builder = builder.chunk_size(n);
    }
    // --obs enables collection; MOBILENET_OBS may also carry a path.
    let obs_path = args.obs.clone().or_else(mobilenet::obs::env_output_path);
    if args.obs.is_some() {
        builder = builder.obs(true);
    }
    let run = builder.run()?;
    let study: &Study = run.study();

    match args.command.as_str() {
        "overview" => {
            print!("{}", overview_text(study));
        }
        "ranking" => {
            let r = service_ranking(study, dir);
            println!("{:<4} {:<17} {:<16} {:>8}", "#", "service", "category", "share");
            for (i, s) in r.services.iter().enumerate() {
                println!(
                    "{:<4} {:<17} {:<16} {:>7.2}%",
                    i + 1,
                    s.name,
                    s.category.label(),
                    s.share_of_total * 100.0
                );
            }
            println!(
                "top-20 share {:.1}%, unclassified {:.1}%",
                r.head_share * 100.0,
                r.unclassified_share * 100.0
            );
        }
        "peaks" => {
            let profiles = topical_profiles(study, dir, &PeakConfig::paper());
            print!("{:<17}", "service");
            for t in TopicalTime::ALL {
                print!(" {:>10}", t.label().split(' ').next().unwrap());
            }
            println!();
            for p in &profiles {
                print!("{:<17}", p.name);
                for t in TopicalTime::ALL {
                    print!(
                        " {:>10}",
                        if p.has_peak[t.index()] { "peak" } else { "·" }
                    );
                }
                println!();
            }
        }
        "map" => {
            let Some(spec) = study.catalog().by_name(&args.service) else {
                return Err(Error::UnknownService(args.service.clone()).into());
            };
            let grid = maps::per_user_map(study, dir, spec.id.index(), args.width);
            println!(
                "per-subscriber weekly {} traffic of {} (log scale):",
                dir.label(),
                spec.name
            );
            print!("{}", grid.to_ascii());
        }
        "forecast" => {
            let report = forecast::forecast_report(study, dir, 120);
            println!(
                "{:<17} {:>12} {:>12}",
                "service", "naive sMAPE", "HW sMAPE"
            );
            for f in &report {
                println!(
                    "{:<17} {:>11.1}% {:>11.1}%",
                    f.name,
                    f.naive.smape * 100.0,
                    f.holt_winters.smape * 100.0
                );
            }
        }
        "export" => {
            let Some(path) = &args.out else {
                eprintln!("export needs --out FILE");
                return Err(CliError::Usage(ExitCode::from(2)));
            };
            let file = std::fs::File::create(path).map_err(Error::Io)?;
            let mut writer = std::io::BufWriter::new(file);
            study.dataset().write_to(&mut writer).map_err(Error::Io)?;
            use std::io::Write as _;
            writer.flush().map_err(Error::Io)?;
            eprintln!("dataset written to {}", path.display());
        }
        other => {
            eprintln!("unknown command {other:?}");
            return Err(CliError::Usage(usage()));
        }
    }

    // Observability report: JSON when a path was given, and a
    // human-readable summary on stderr.
    if mobilenet::obs::enabled() {
        let snapshot = run.obs_snapshot();
        if let Some(path) = obs_path {
            run.write_obs_json(&path)?;
            eprintln!("observability report written to {}", path.display());
        } else {
            eprint!("{}", snapshot.render());
        }
    }
    Ok(())
}

/// One `--study NAME=SCALE[:SEED[:WEEKS]]` spec, resolved.
struct StudySpec {
    name: String,
    scale: Scale,
    seed: u64,
    weeks: usize,
}

/// Parses a `--study` spec; seed and weeks fall back to the global
/// `--seed`/`--weeks` flags.
fn parse_study_spec(spec: &str, default_seed: u64, default_weeks: usize) -> Result<StudySpec, String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("bad --study {spec:?} (expected NAME=SCALE[:SEED[:WEEKS]])"))?;
    let mut parts = rest.split(':');
    let scale: Scale = parts
        .next()
        .unwrap_or_default()
        .parse()
        .map_err(|e: Error| format!("bad --study {spec:?}: {e}"))?;
    let seed = match parts.next() {
        None => default_seed,
        Some(t) => t.parse().map_err(|_| format!("bad --study {spec:?}: seed {t:?}"))?,
    };
    let weeks = match parts.next() {
        None => default_weeks,
        Some(t) => t.parse().map_err(|_| format!("bad --study {spec:?}: weeks {t:?}"))?,
    };
    if weeks == 0 {
        return Err(format!("bad --study {spec:?}: weeks must be at least 1"));
    }
    if parts.next().is_some() {
        return Err(format!("bad --study {spec:?} (expected NAME=SCALE[:SEED[:WEEKS]])"));
    }
    Ok(StudySpec { name: name.to_string(), scale, seed, weeks })
}

/// `mobilenet serve`: register every requested study, bind the query
/// server, then stream each study's weeks on background threads while
/// answering clients; runs until `SHUTDOWN`.
fn run_serve(args: &Args) -> Result<(), CliError> {
    if let Some(n) = args.threads {
        mobilenet::par::set_thread_override(Some(n));
    }
    // The health endpoint needs the registry live regardless of --obs.
    mobilenet::obs::set_enabled(Some(true));
    let config_err = |e: String| CliError::Pipeline(Error::Config(e));
    let specs: Vec<StudySpec> = if args.studies.is_empty() {
        vec![StudySpec {
            name: "default".into(),
            scale: args.scale,
            seed: args.seed,
            weeks: args.weeks,
        }]
    } else {
        args.studies
            .iter()
            .map(|s| parse_study_spec(s, args.seed, args.weeks))
            .collect::<Result<_, _>>()
            .map_err(config_err)?
    };
    let registry = mobilenet::StudyRegistry::new();
    let mut entries = Vec::with_capacity(specs.len());
    for spec in &specs {
        let mut config = spec.scale.config();
        if let Some(plan) = &args.faults {
            config = config.with_faults(plan.clone());
        }
        if let Some(n) = args.chunk_size {
            config = config.with_chunk_size(n);
        }
        eprintln!(
            "generating {} model for study {} (seed {}, {} week(s))...",
            spec.scale, spec.name, spec.seed, spec.weeks
        );
        let entry = registry
            .register_config(&spec.name, spec.scale.name(), &config, spec.seed, spec.weeks)
            .map_err(config_err)?;
        entries.push(entry);
    }
    let mut server =
        mobilenet::spawn_registry_server(registry.clone(), &args.addr).map_err(Error::Io)?;
    // Scripts scrape this line for the (possibly ephemeral) bound port;
    // it must appear before ingestion starts.
    println!("listening on {}", server.addr());
    for entry in &entries {
        registry.start(entry).map_err(config_err)?;
    }
    server.wait();
    registry.shutdown();
    let failures = mobilenet::obs::snapshot().counter("serve.ingest_errors").unwrap_or(0);
    if failures > 0 {
        return Err(Error::Config(format!("{failures} ingestion run(s) failed")).into());
    }
    Ok(())
}

fn client_err(e: mobilenet::serve::ClientError) -> CliError {
    CliError::Pipeline(Error::Config(e.to_string()))
}

/// `mobilenet query`: send each query through the typed client and print
/// the responses.
fn run_query(args: &Args) -> Result<(), CliError> {
    let mut client = mobilenet::Client::connect(&args.addr).map_err(client_err)?;
    if let Some(study) = &args.use_study {
        client.use_study(study).map_err(client_err)?;
    }
    let mut failed = false;
    for q in &args.queries {
        match client.request(q) {
            Ok(body) => {
                if !args.body_only {
                    println!("OK {}", body.len());
                }
                for line in &body {
                    println!("{line}");
                }
            }
            Err(mobilenet::serve::ClientError::Server(msg)) => {
                eprintln!("{q}: ERR {msg}");
                failed = true;
            }
            Err(e) => return Err(client_err(e)),
        }
    }
    let _ = client.quit();
    if failed {
        return Err(Error::Config("one or more queries failed".into()).into());
    }
    Ok(())
}

/// `mobilenet watch`: subscribe to a study's delta stream and print one
/// `<seq> <payload>` line per event.
fn run_watch(args: &Args) -> Result<(), CliError> {
    let mut client = mobilenet::Client::connect(&args.addr).map_err(client_err)?;
    if let Some(study) = &args.use_study {
        let info = client.use_study(study).map_err(client_err)?;
        eprintln!("watching {}", info.protocol_line());
    }
    let topics = mobilenet::Topic::parse_list(&args.topics)
        .map_err(|e| CliError::Pipeline(Error::Config(e)))?;
    let subscription = client.subscribe(topics).map_err(client_err)?;
    for (printed, item) in subscription.enumerate() {
        let (seq, event) = item.map_err(client_err)?;
        println!("{seq} {}", event.to_wire());
        if args.events.is_some_and(|n| printed + 1 >= n) {
            break;
        }
    }
    Ok(())
}
