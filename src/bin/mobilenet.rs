//! `mobilenet` — command-line front end to the reproduction.
//!
//! ```text
//! mobilenet overview  [--scale S] [--seed N]             dataset + collection summary
//! mobilenet ranking   [--scale S] [--seed N] [--uplink]  Figure 3 as a table
//! mobilenet peaks     [--scale S] [--seed N]             Figure 6 as a table
//! mobilenet map       [--scale S] [--seed N] [--service NAME] [--width W]
//! mobilenet forecast  [--scale S] [--seed N]             predictability report
//! mobilenet export    [--scale S] [--seed N] --out FILE  dataset CSV for offline analysis
//! ```
//!
//! Scales: `small` (1k communes), `medium` (6k), `france` (36k).
//!
//! Every command also accepts `--threads N` to pin the worker count of the
//! parallel pipeline stages (default: `MOBILENET_THREADS` or all cores);
//! the output is identical at any thread count.

use std::path::PathBuf;
use std::process::ExitCode;

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::ranking::service_ranking;
use mobilenet::core::report::overview_text;
use mobilenet::core::study::{Study, StudyConfig};
use mobilenet::core::topical::topical_profiles;
use mobilenet::core::{forecast, maps};
use mobilenet::traffic::{Direction, TopicalTime};

struct Args {
    command: String,
    scale: String,
    seed: u64,
    uplink: bool,
    service: String,
    width: usize,
    out: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mobilenet <overview|ranking|peaks|map|forecast|export> \
         [--scale small|medium|france] [--seed N] [--uplink] \
         [--service NAME] [--width W] [--out FILE] [--threads N]"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) => c,
        None => return Err(usage()),
    };
    let mut args = Args {
        command,
        scale: "small".into(),
        // The grouping spells the measurement week's start date.
        #[allow(clippy::inconsistent_digit_grouping)]
        seed: 2016_09_24,
        uplink: false,
        service: "Twitter".into(),
        width: 72,
        out: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => args.scale = argv.next().ok_or_else(usage)?,
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?
            }
            "--uplink" => args.uplink = true,
            "--service" => args.service = argv.next().ok_or_else(usage)?,
            "--width" => {
                args.width = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?
            }
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or_else(usage)?)),
            "--threads" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                mobilenet::par::set_thread_override(Some(n));
            }
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn study_config(scale: &str) -> Option<StudyConfig> {
    match scale {
        "small" => Some(StudyConfig::small()),
        "medium" => Some(StudyConfig::medium()),
        "france" => Some(StudyConfig::france_scale()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let Some(config) = study_config(&args.scale) else {
        eprintln!("unknown scale {:?}; use small|medium|france", args.scale);
        return ExitCode::from(2);
    };
    let dir = if args.uplink { Direction::Up } else { Direction::Down };

    eprintln!("generating {} study (seed {})...", args.scale, args.seed);
    let study = Study::generate(&config, args.seed);

    match args.command.as_str() {
        "overview" => {
            print!("{}", overview_text(&study));
        }
        "ranking" => {
            let r = service_ranking(&study, dir);
            println!("{:<4} {:<17} {:<16} {:>8}", "#", "service", "category", "share");
            for (i, s) in r.services.iter().enumerate() {
                println!(
                    "{:<4} {:<17} {:<16} {:>7.2}%",
                    i + 1,
                    s.name,
                    s.category.label(),
                    s.share_of_total * 100.0
                );
            }
            println!(
                "top-20 share {:.1}%, unclassified {:.1}%",
                r.head_share * 100.0,
                r.unclassified_share * 100.0
            );
        }
        "peaks" => {
            let profiles = topical_profiles(&study, dir, &PeakConfig::paper());
            print!("{:<17}", "service");
            for t in TopicalTime::ALL {
                print!(" {:>10}", t.label().split(' ').next().unwrap());
            }
            println!();
            for p in &profiles {
                print!("{:<17}", p.name);
                for t in TopicalTime::ALL {
                    print!(
                        " {:>10}",
                        if p.has_peak[t.index()] { "peak" } else { "·" }
                    );
                }
                println!();
            }
        }
        "map" => {
            let Some(spec) = study.catalog().by_name(&args.service) else {
                eprintln!("unknown service {:?}", args.service);
                return ExitCode::from(2);
            };
            let grid = maps::per_user_map(&study, dir, spec.id.index(), args.width);
            println!(
                "per-subscriber weekly {} traffic of {} (log scale):",
                dir.label(),
                spec.name
            );
            print!("{}", grid.to_ascii());
        }
        "forecast" => {
            let report = forecast::forecast_report(&study, dir, 120);
            println!(
                "{:<17} {:>12} {:>12}",
                "service", "naive sMAPE", "HW sMAPE"
            );
            for f in &report {
                println!(
                    "{:<17} {:>11.1}% {:>11.1}%",
                    f.name,
                    f.naive.smape * 100.0,
                    f.holt_winters.smape * 100.0
                );
            }
        }
        "export" => {
            let Some(path) = args.out else {
                eprintln!("export needs --out FILE");
                return ExitCode::from(2);
            };
            let csv = study.dataset().to_csv();
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("dataset written to {}", path.display());
        }
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    }
    ExitCode::SUCCESS
}
