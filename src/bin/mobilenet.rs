//! `mobilenet` — command-line front end to the reproduction.
//!
//! ```text
//! mobilenet overview  [--scale S] [--seed N]             dataset + collection summary
//! mobilenet ranking   [--scale S] [--seed N] [--uplink]  Figure 3 as a table
//! mobilenet peaks     [--scale S] [--seed N]             Figure 6 as a table
//! mobilenet map       [--scale S] [--seed N] [--service NAME] [--width W]
//! mobilenet forecast  [--scale S] [--seed N]             predictability report
//! mobilenet export    [--scale S] [--seed N] --out FILE  dataset CSV for offline analysis
//! mobilenet serve     [--scale S] [--seed N] [--addr A]  live query service (ingest + TCP server)
//! mobilenet query     [--addr A] [--body-only] Q...      scripted client for a running server
//! ```
//!
//! Scales: `small` (1k communes), `medium` (6k), `france` (36k),
//! `national` (36k communes at paper session counts, ~10⁸ over the week,
//! streamed in bounded memory).
//!
//! Every command also accepts `--threads N` to pin the worker count of the
//! parallel pipeline stages (default: `MOBILENET_THREADS` or all cores) —
//! the output is identical at any thread count — and `--obs FILE` to
//! collect per-stage observability (spans, counters, histograms) and
//! write it to `FILE` as JSON (`MOBILENET_OBS` works too; see README).
//!
//! `--faults SPEC` injects capture-path faults (probe outages, record
//! loss/duplication, counter truncation, clock skew). `SPEC` is either
//! the preset `degraded` or a comma-separated key=value list, e.g.
//! `--faults seed=7,loss=0.05,dup=0.01,outage=gn:33-37`.
//!
//! `--chunk-size N` bounds the streaming-ingestion chunk size in
//! records: peak resident records stay at or below `N × workers`, and
//! the output is bit-identical at every chunk size.
//!
//! `serve` binds `--addr` (default `127.0.0.1:7878`), prints the bound
//! address, then ingests on a background thread while answering queries;
//! it runs until a client sends `SHUTDOWN`. `query` connects to a
//! running server, sends each `Q` as one protocol line and prints the
//! responses (`--body-only` drops the `OK <n>` frame — handy for piping
//! `DATASET` into a file to diff against a batch `export`).

use std::path::PathBuf;
use std::process::ExitCode;

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::ranking::service_ranking;
use mobilenet::core::report::overview_text;
use mobilenet::core::study::Study;
use mobilenet::core::topical::topical_profiles;
use mobilenet::core::{forecast, maps};
use mobilenet::traffic::{Direction, TopicalTime};
use mobilenet::{Error, FaultPlan, Pipeline, Scale, DEFAULT_SEED};

struct Args {
    command: String,
    scale: Scale,
    seed: u64,
    uplink: bool,
    service: String,
    width: usize,
    out: Option<PathBuf>,
    threads: Option<usize>,
    obs: Option<PathBuf>,
    faults: Option<FaultPlan>,
    chunk_size: Option<usize>,
    addr: String,
    body_only: bool,
    queries: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mobilenet <overview|ranking|peaks|map|forecast|export|serve|query> \
         [--scale small|medium|france|national] [--seed N] [--uplink] \
         [--service NAME] [--width W] [--out FILE] [--threads N] [--obs FILE] \
         [--faults SPEC] [--chunk-size N] [--addr HOST:PORT] [--body-only] [QUERY...]"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) => c,
        None => return Err(usage()),
    };
    let mut args = Args {
        command,
        scale: Scale::Small,
        seed: DEFAULT_SEED,
        uplink: false,
        service: "Twitter".into(),
        width: 72,
        out: None,
        threads: None,
        obs: None,
        faults: None,
        chunk_size: None,
        addr: "127.0.0.1:7878".into(),
        body_only: false,
        queries: Vec::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => {
                let name = argv.next().ok_or_else(usage)?;
                args.scale = name.parse().map_err(|e: Error| {
                    eprintln!("{e}");
                    ExitCode::from(2)
                })?;
            }
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?
            }
            "--uplink" => args.uplink = true,
            "--service" => args.service = argv.next().ok_or_else(usage)?,
            "--width" => {
                args.width = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?
            }
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or_else(usage)?)),
            "--threads" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                args.threads = Some(n);
            }
            "--obs" => args.obs = Some(PathBuf::from(argv.next().ok_or_else(usage)?)),
            "--chunk-size" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    return Err(usage());
                }
                args.chunk_size = Some(n);
            }
            "--faults" => {
                let spec = argv.next().ok_or_else(usage)?;
                args.faults = Some(FaultPlan::parse(&spec).map_err(|e| {
                    eprintln!("--faults: {e}");
                    ExitCode::from(2)
                })?);
            }
            "--addr" => args.addr = argv.next().ok_or_else(usage)?,
            "--body-only" => args.body_only = true,
            other if args.command == "query" && !other.starts_with("--") => {
                args.queries.push(other.to_string());
            }
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(code)) => code,
        Err(CliError::Pipeline(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// CLI failure: either a usage problem (its exit code is already decided)
/// or a pipeline error to print.
enum CliError {
    Usage(ExitCode),
    Pipeline(Error),
}

impl From<Error> for CliError {
    fn from(e: Error) -> Self {
        CliError::Pipeline(e)
    }
}

fn run(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "serve" => return run_serve(args),
        "query" => return run_query(args),
        _ => {}
    }
    let dir = if args.uplink { Direction::Up } else { Direction::Down };

    eprintln!("generating {} study (seed {})...", args.scale, args.seed);
    let mut builder = Pipeline::builder().scale(args.scale).seed(args.seed);
    if let Some(n) = args.threads {
        builder = builder.threads(n);
    }
    if let Some(plan) = &args.faults {
        builder = builder.faults(plan.clone());
    }
    if let Some(n) = args.chunk_size {
        builder = builder.chunk_size(n);
    }
    // --obs enables collection; MOBILENET_OBS may also carry a path.
    let obs_path = args.obs.clone().or_else(mobilenet::obs::env_output_path);
    if args.obs.is_some() {
        builder = builder.obs(true);
    }
    let run = builder.run()?;
    let study: &Study = run.study();

    match args.command.as_str() {
        "overview" => {
            print!("{}", overview_text(study));
        }
        "ranking" => {
            let r = service_ranking(study, dir);
            println!("{:<4} {:<17} {:<16} {:>8}", "#", "service", "category", "share");
            for (i, s) in r.services.iter().enumerate() {
                println!(
                    "{:<4} {:<17} {:<16} {:>7.2}%",
                    i + 1,
                    s.name,
                    s.category.label(),
                    s.share_of_total * 100.0
                );
            }
            println!(
                "top-20 share {:.1}%, unclassified {:.1}%",
                r.head_share * 100.0,
                r.unclassified_share * 100.0
            );
        }
        "peaks" => {
            let profiles = topical_profiles(study, dir, &PeakConfig::paper());
            print!("{:<17}", "service");
            for t in TopicalTime::ALL {
                print!(" {:>10}", t.label().split(' ').next().unwrap());
            }
            println!();
            for p in &profiles {
                print!("{:<17}", p.name);
                for t in TopicalTime::ALL {
                    print!(
                        " {:>10}",
                        if p.has_peak[t.index()] { "peak" } else { "·" }
                    );
                }
                println!();
            }
        }
        "map" => {
            let Some(spec) = study.catalog().by_name(&args.service) else {
                return Err(Error::UnknownService(args.service.clone()).into());
            };
            let grid = maps::per_user_map(study, dir, spec.id.index(), args.width);
            println!(
                "per-subscriber weekly {} traffic of {} (log scale):",
                dir.label(),
                spec.name
            );
            print!("{}", grid.to_ascii());
        }
        "forecast" => {
            let report = forecast::forecast_report(study, dir, 120);
            println!(
                "{:<17} {:>12} {:>12}",
                "service", "naive sMAPE", "HW sMAPE"
            );
            for f in &report {
                println!(
                    "{:<17} {:>11.1}% {:>11.1}%",
                    f.name,
                    f.naive.smape * 100.0,
                    f.holt_winters.smape * 100.0
                );
            }
        }
        "export" => {
            let Some(path) = &args.out else {
                eprintln!("export needs --out FILE");
                return Err(CliError::Usage(ExitCode::from(2)));
            };
            let file = std::fs::File::create(path).map_err(Error::Io)?;
            let mut writer = std::io::BufWriter::new(file);
            study.dataset().write_to(&mut writer).map_err(Error::Io)?;
            use std::io::Write as _;
            writer.flush().map_err(Error::Io)?;
            eprintln!("dataset written to {}", path.display());
        }
        other => {
            eprintln!("unknown command {other:?}");
            return Err(CliError::Usage(usage()));
        }
    }

    // Observability report: JSON when a path was given, and a
    // human-readable summary on stderr.
    if mobilenet::obs::enabled() {
        let snapshot = run.obs_snapshot();
        if let Some(path) = obs_path {
            run.write_obs_json(&path)?;
            eprintln!("observability report written to {}", path.display());
        } else {
            eprint!("{}", snapshot.render());
        }
    }
    Ok(())
}

/// `mobilenet serve`: bind the query server, then stream the week on a
/// background thread while answering clients; runs until `SHUTDOWN`.
fn run_serve(args: &Args) -> Result<(), CliError> {
    if let Some(n) = args.threads {
        mobilenet::par::set_thread_override(Some(n));
    }
    // The health endpoint needs the registry live regardless of --obs.
    mobilenet::obs::set_enabled(Some(true));
    let mut config = args.scale.config();
    if let Some(plan) = &args.faults {
        config = config.with_faults(plan.clone());
    }
    if let Some(n) = args.chunk_size {
        config = config.with_chunk_size(n);
    }
    eprintln!("generating {} model (seed {})...", args.scale, args.seed);
    let state = mobilenet::LiveState::from_config(&config, args.seed)
        .map_err(|e| CliError::Pipeline(Error::Config(e)))?;
    let mut server = mobilenet::spawn_server(state.clone(), &args.addr).map_err(Error::Io)?;
    // Scripts scrape this line for the (possibly ephemeral) bound port;
    // it must appear before ingestion starts.
    println!("listening on {}", server.addr());
    let ingest_state = state.clone();
    let ingest = std::thread::spawn(move || {
        let result = ingest_state.run_ingestion();
        match &result {
            Ok(stats) => eprintln!(
                "ingestion complete: {} records in {} chunks, peak resident {}",
                stats.records, stats.chunks, stats.peak_resident_records
            ),
            Err(e) => eprintln!("ingestion failed: {e}"),
        }
        result
    });
    server.wait();
    match ingest.join() {
        Ok(Ok(_)) => Ok(()),
        Ok(Err(e)) => Err(Error::Config(format!("live ingestion failed: {e}")).into()),
        Err(_) => Err(Error::Config("live ingestion panicked".into()).into()),
    }
}

/// `mobilenet query`: send each query as one protocol line and print the
/// responses.
fn run_query(args: &Args) -> Result<(), CliError> {
    use std::io::{BufRead as _, Write as _};
    let stream = std::net::TcpStream::connect(&args.addr).map_err(Error::Io)?;
    let mut reader = std::io::BufReader::new(stream.try_clone().map_err(Error::Io)?);
    let mut writer = stream;
    let mut failed = false;
    for q in &args.queries {
        writeln!(writer, "{q}").map_err(Error::Io)?;
        writer.flush().map_err(Error::Io)?;
        let mut head = String::new();
        reader.read_line(&mut head).map_err(Error::Io)?;
        let head = head.trim_end().to_string();
        if let Some(n) = head.strip_prefix("OK ") {
            let n: usize = n
                .parse()
                .map_err(|_| Error::Config(format!("malformed response frame {head:?}")))?;
            if !args.body_only {
                println!("{head}");
            }
            let mut line = String::new();
            for _ in 0..n {
                line.clear();
                reader.read_line(&mut line).map_err(Error::Io)?;
                print!("{line}");
            }
        } else {
            eprintln!("{q}: {head}");
            failed = true;
        }
    }
    let _ = writeln!(writer, "QUIT");
    if failed {
        return Err(Error::Config("one or more queries failed".into()).into());
    }
    Ok(())
}
