//! The observability contract, checked across the whole stack:
//!
//! 1. Instrumentation is invisible — an instrumented run produces a
//!    bit-identical dataset to an uninstrumented one.
//! 2. Counts are exact — counters, `f64` counters and histograms are
//!    identical at 1, 2 and 8 worker threads.
//! 3. The probes are actually wired — the expected span paths and
//!    counters show up with sensible values.

use mobilenet::core::spatial::spatial_correlation;
use mobilenet::obs;
use mobilenet::par::set_thread_override;
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale};

/// One full pipeline run plus one analysis, returning the exported
/// dataset CSV and the observability snapshot.
fn run(threads: usize, observing: bool) -> (String, obs::Snapshot) {
    set_thread_override(Some(threads));
    obs::set_enabled(Some(observing));
    obs::reset();
    let study = Pipeline::builder().scale(Scale::Small).seed(314).run().unwrap().into_study();
    // One parallel analysis so the `core.*` probes are exercised too.
    let corr = spatial_correlation(&study, Direction::Down);
    assert!(corr.mean_r2.is_finite());
    (study.dataset().to_csv(), obs::snapshot())
}

#[test]
fn instrumentation_is_invisible_and_count_exact() {
    // Everything runs inside one #[test]: the thread override and the obs
    // enable switch are both process-global.
    let (clean_csv, clean_snap) = run(2, false);
    assert!(clean_snap.is_empty(), "disabled obs must record nothing");

    let (csv, reference) = run(2, true);
    assert_eq!(csv, clean_csv, "instrumented run diverged from uninstrumented run");

    // Count-exactness across worker counts.
    for threads in [1usize, 8] {
        let (csv, snap) = run(threads, true);
        assert_eq!(csv, clean_csv, "dataset differs at {threads} threads");
        assert_eq!(
            snap.counts_fingerprint(),
            reference.counts_fingerprint(),
            "obs counters differ at {threads} threads"
        );
    }

    // The probes the workspace promises are all present.
    for span in [
        "generate",
        "generate/country",
        "generate/demand_model",
        "generate/collect",
        "generate/collect/capture",
        "generate/collect/shards",
        "generate/collect/merge",
        "spatial_r2",
    ] {
        assert!(reference.span(span).is_some(), "span {span:?} missing");
    }
    let sessions = reference.counter("traffic.sessions").expect("traffic.sessions");
    assert!(sessions > 1_000);
    // Every generated session passes through the measurement pipeline.
    assert_eq!(reference.counter("netsim.sessions"), Some(sessions));
    assert!(reference.fcounter("netsim.classified_mb").unwrap_or(0.0) > 0.0);
    // 20 head services → 190 unordered pairs in the r² matrix.
    assert_eq!(reference.counter("core.r2_pairs"), Some(190));
    // Total parallel items are scheduling-independent.
    assert_eq!(reference.counter("par.items"), reference.counter("par.worker_items"));
    let uli = reference.histogram("netsim.uli_error_km").expect("ULI histogram");
    assert!(uli.count > 0);

    set_thread_override(None);
    obs::set_enabled(None);
}
