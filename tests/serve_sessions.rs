//! Sessioned multi-study protocol contracts (DESIGN §3.16).
//!
//! What this file pins:
//!
//! * **Multi-study isolation:** two live studies with different seeds
//!   served by one registry never mix — each `USE`d study's `DATASET`
//!   equals *its own* batch export, switching back and forth on one
//!   connection;
//! * **Delta-vs-poll equivalence** (acceptance criterion): replaying a
//!   `SUBSCRIBE` stream's rank events reconstructs the post-ingest
//!   ranking bit-identically to a polled `RANK` snapshot — at 1, 2 and
//!   8 threads, with and without `FaultPlan::degraded`;
//! * **Handshake and hygiene:** `HELLO` reports `mobilenet-serve/v2`
//!   and the capability set, `LIST`/`USE` round-trip study descriptions,
//!   parse errors carry the offending token, and subscriptions after
//!   completion still deliver a baseline plus `end`;
//! * **Shutdown regression:** a `SHUTDOWN` issued on one connection
//!   wakes another connection's idle `SUBSCRIBE` writer (the PR 8
//!   read-timeout fix, mirrored on the write path) instead of stranding
//!   it on an empty event queue.

use std::time::Duration;

use mobilenet::par::set_thread_override;
use mobilenet::serve::{
    Client, ClientError, DeltaEvent, LiveState, StudyRegistry, Topic, PROTOCOL_VERSION,
};
use mobilenet::{FaultPlan, Pipeline, Scale};

/// The batch reference CSV for a small study at `seed`.
fn batch_csv(faults: FaultPlan, seed: u64) -> String {
    let run = Pipeline::builder()
        .scale(Scale::Small)
        .seed(seed)
        .faults(faults)
        .run()
        .expect("valid configuration");
    run.dataset().to_csv()
}

/// A registry serving one small study per `(name, seed)`, with a server
/// bound on an ephemeral port.
fn serve_studies(
    studies: &[(&str, u64)],
    faults: &FaultPlan,
) -> (std::sync::Arc<StudyRegistry>, mobilenet::ServerHandle) {
    mobilenet::obs::set_enabled(Some(true));
    let registry = StudyRegistry::new();
    let config = Scale::Small.config().with_faults(faults.clone());
    for (name, seed) in studies {
        let state = LiveState::from_config(&config, *seed).expect("valid config");
        registry.register_state(name, "small", state, 1).expect("registration succeeds");
    }
    let server =
        mobilenet::spawn_registry_server(registry.clone(), "127.0.0.1:0").expect("bind");
    (registry, server)
}

/// Polls `WATERMARK` until the selected study reports completion.
fn wait_complete(client: &mut Client) {
    loop {
        let body = client.request("WATERMARK").expect("watermark answers");
        if body[0].contains("complete true") {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn studies_never_mix_across_use_switches() {
    let (registry, mut server) = serve_studies(&[("alpha", 11), ("beta", 23)], &FaultPlan::none());
    let addr = server.addr().to_string();
    for entry in [registry.get("alpha").unwrap(), registry.get("beta").unwrap()] {
        registry.start(&entry).expect("ingestion starts");
    }

    let mut client = Client::connect(&addr).expect("connect");
    let hello = client.hello().expect("hello answers");
    assert_eq!(hello.version, PROTOCOL_VERSION);
    assert_eq!(hello.studies, 2);
    assert!(hello.capabilities.iter().any(|c| c == "SUBSCRIBE"), "caps: {hello:?}");

    let listed = client.list().expect("list answers");
    assert_eq!(listed.len(), 2);
    assert_eq!(listed[0].name, "alpha");
    assert_eq!(listed[0].seed, 11);
    assert_eq!(listed[1].name, "beta");
    assert_eq!(listed[1].seed, 23);

    // With several studies registered, an un-USEd connection must pick.
    let mut fresh = Client::connect(&addr).expect("connect");
    match fresh.request("WATERMARK") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("USE"), "got {msg:?}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    fresh.quit().expect("quit");

    let reference_alpha = batch_csv(FaultPlan::none(), 11);
    let reference_beta = batch_csv(FaultPlan::none(), 23);
    assert!(reference_alpha != reference_beta, "seeds must differ for isolation to mean anything");

    // Switch back and forth on ONE connection: each DATASET must be the
    // USE'd study's own batch export, never the other's.
    for (study, reference) in
        [("alpha", &reference_alpha), ("beta", &reference_beta), ("alpha", &reference_alpha)]
    {
        let info = client.use_study(study).expect("use answers");
        assert_eq!(info.name, study);
        wait_complete(&mut client);
        let body = client.request("DATASET").expect("dataset answers");
        let mut wire = body.join("\n");
        wire.push('\n');
        assert!(wire == *reference, "study {study} served a foreign dataset");
    }

    client.quit().expect("quit");
    server.shutdown();
}

/// Replays a subscription into the final per-direction rankings and
/// checks them against a polled `RANK` — the delta-vs-poll equivalence
/// criterion.
fn assert_delta_replay_matches_poll(faults: &FaultPlan, threads: usize) {
    set_thread_override(Some(threads));
    let (registry, mut server) = serve_studies(&[("solo", 7)], faults);
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    // Subscribe BEFORE ingestion starts: the stream must cover the whole
    // run and terminate itself at completion.
    let subscription = client.subscribe(vec![Topic::Rank, Topic::Watermark]).expect("subscribe");
    let entry = registry.get("solo").unwrap();

    let registry_start = registry.clone();
    let starter = std::thread::spawn(move || {
        // Give the subscriber a moment to receive its pre-ingest baseline.
        std::thread::sleep(Duration::from_millis(50));
        registry_start.start(&entry).expect("ingestion starts");
    });

    let mut last_rank: [Option<Vec<String>>; 2] = [None, None];
    let mut last_seq = None;
    let mut saw_end = false;
    for item in subscription {
        let (seq, event) = item.expect("well-formed event");
        if let Some(prev) = last_seq {
            assert_eq!(seq, prev + 1, "a seq gap means this subscriber lagged");
        }
        last_seq = Some(seq);
        match event {
            DeltaEvent::Rank { dir, entries, .. } => {
                let slot = match dir {
                    mobilenet::traffic::Direction::Down => 0,
                    mobilenet::traffic::Direction::Up => 1,
                };
                last_rank[slot] =
                    Some(entries.iter().map(|e| e.protocol_line()).collect());
            }
            DeltaEvent::End { .. } => saw_end = true,
            _ => {}
        }
    }
    starter.join().expect("starter thread");
    assert!(saw_end, "stream terminates itself at completion");

    // The connection is back in command mode: poll the final ranking and
    // compare bit for bit with the replayed stream.
    for (slot, dir_token) in [(0, "dl"), (1, "ul")] {
        let replayed = last_rank[slot].as_ref().expect("rank events arrived");
        let polled = client
            .request(&format!("RANK {dir_token} {}", replayed.len()))
            .expect("rank answers");
        assert!(
            replayed == &polled,
            "replayed {dir_token} ranking differs from polled snapshot at {threads} threads"
        );
    }

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn delta_replay_reconstructs_the_polled_ranking() {
    for faults in [FaultPlan::none(), FaultPlan::degraded(3)] {
        for threads in [1usize, 2, 8] {
            assert_delta_replay_matches_poll(&faults, threads);
        }
    }
    set_thread_override(None);
}

#[test]
fn subscribing_after_completion_yields_baseline_and_end() {
    let (registry, mut server) = serve_studies(&[("done", 5)], &FaultPlan::none());
    let addr = server.addr().to_string();
    let entry = registry.get("done").unwrap();
    registry.start(&entry).expect("ingestion starts");

    let mut client = Client::connect(&addr).expect("connect");
    wait_complete(&mut client);

    let events: Vec<_> = client
        .subscribe(vec![Topic::Watermark, Topic::Version, Topic::Rank, Topic::Autocorr])
        .expect("subscribe")
        .map(|item| item.expect("well-formed event").1)
        .collect();
    assert!(
        matches!(events.last(), Some(DeltaEvent::End { .. })),
        "stream ends immediately on a completed study: {events:?}"
    );
    let weeks_complete = events
        .iter()
        .any(|e| matches!(e, DeltaEvent::Watermark { complete: true, .. }));
    assert!(weeks_complete, "baseline carries the completed watermark: {events:?}");
    assert!(
        events.iter().any(|e| matches!(e, DeltaEvent::Rank { .. })),
        "baseline carries the final rankings: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(e, DeltaEvent::Autocorr { lag: 24, .. })),
        "baseline carries the hour-lag autocorrelation: {events:?}"
    );

    // Parse errors carry the offending token (protocol hygiene).
    match client.request("SUBSCRIBE nope") {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("bad SUBSCRIBE: nope"), "got {msg:?}")
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    match client.request("USEX done") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("bad verb: USEX"), "got {msg:?}"),
        other => panic!("expected a parse error, got {other:?}"),
    }

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn shutdown_wakes_a_subscribed_idle_client() {
    // The study is registered but never started: no events will ever
    // arrive past the baseline, so the streaming writer sits in its
    // queue wait — exactly the state the stop-flag recheck must cover.
    let (_registry, mut server) = serve_studies(&[("idle", 3)], &FaultPlan::none());
    let addr = server.addr().to_string();

    let (tx, rx) = std::sync::mpsc::channel();
    let sub_addr = addr.clone();
    let subscriber = std::thread::spawn(move || {
        let mut client = Client::connect(&sub_addr).expect("connect");
        let mut events = 0usize;
        for item in client.subscribe(vec![Topic::Watermark]).expect("subscribe") {
            match item {
                Ok(_) => events += 1,
                // Server hang-up mid-stream surfaces as one transport
                // error, then the iterator finishes.
                Err(ClientError::Io(_)) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        tx.send(events).expect("report");
    });

    // Let the subscriber drain its baseline and go idle, then stop the
    // server from a second connection.
    std::thread::sleep(Duration::from_millis(300));
    let admin = Client::connect(&addr).expect("connect admin");
    admin.shutdown().expect("shutdown acks");

    let events = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("subscribed client must wake on SHUTDOWN instead of hanging");
    subscriber.join().expect("subscriber thread");
    assert!(events >= 1, "the pre-stop baseline was delivered");
    server.shutdown();
}
