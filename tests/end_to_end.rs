//! End-to-end integration: the full chain from geography generation
//! through the measurement pipeline to every analysis, checked for
//! cross-crate consistency.

use std::sync::OnceLock;

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::ranking::{service_ranking, zipf_ranking};
use mobilenet::core::report;
use mobilenet::core::spatial::{concentration, spatial_correlation};
use mobilenet::core::study::Study;
use mobilenet::core::temporal::{clustering_sweep, Algorithm};
use mobilenet::core::topical::topical_profiles;
use mobilenet::core::urbanization::urbanization_profiles;
use mobilenet::geo::UsageClass;
use mobilenet::traffic::{Direction, HOURS_PER_WEEK};
use mobilenet::{Pipeline, Scale};

fn study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| {
        Pipeline::builder().scale(Scale::Small).seed(1234).run().unwrap().into_study()
    })
}

#[test]
fn collection_stats_are_consistent_with_the_dataset() {
    let s = study();
    let stats = s.collection_stats().expect("measured study");
    // Interface counters partition the sessions.
    assert_eq!(stats.sessions, stats.gn_records + stats.s5s8_records);
    // Classified volume in the stats equals what landed in head services
    // of the dataset (tail volumes are filled analytically).
    let ds = s.dataset();
    let head_total: f64 = Direction::BOTH
        .iter()
        .flat_map(|&d| (0..ds.n_services()).map(move |svc| (d, svc)))
        .map(|(d, svc)| ds.national_weekly(d, svc))
        .sum();
    assert!(
        (stats.classified_mb - head_total).abs() / head_total < 1e-9,
        "stats {} vs dataset {}",
        stats.classified_mb,
        head_total
    );
    let unclassified = ds.unclassified(Direction::Down) + ds.unclassified(Direction::Up);
    assert!((stats.unclassified_mb - unclassified).abs() < 1e-6);
}

#[test]
fn every_marginal_table_is_internally_consistent() {
    let ds = study().dataset();
    for dir in Direction::BOTH {
        for svc in 0..ds.n_services() {
            // National hourly sums equal commune weekly sums.
            let national: f64 = ds.national_series(dir, svc).iter().sum();
            let communes: f64 = ds.commune_vector(dir, svc).iter().sum();
            assert!(
                (national - communes).abs() < 1e-6,
                "{} svc {svc}: national {national} vs communes {communes}",
                dir.label()
            );
            // Class series sum to the national series hour by hour.
            for h in (0..HOURS_PER_WEEK).step_by(13) {
                let class_sum: f64 = UsageClass::ALL
                    .iter()
                    .map(|&c| ds.class_series(dir, svc, c)[h])
                    .sum();
                assert!((ds.national_series(dir, svc)[h] - class_sum).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn all_figures_compute_without_panicking_and_serialize() {
    let s = study();
    let fig2 = zipf_ranking(s);
    assert!(!report::zipf_csv(&fig2).is_empty());
    for dir in Direction::BOTH {
        let fig3 = service_ranking(s, dir);
        assert!(!report::ranking_csv(&fig3).is_empty());
        let fig10 = spatial_correlation(s, dir);
        assert!(!report::correlation_csv(&fig10).is_empty());
    }
    let profiles = topical_profiles(s, Direction::Down, &PeakConfig::paper());
    assert!(!report::topical_matrix_csv(&profiles).is_empty());
    assert!(!report::intensity_csv(&profiles).is_empty());
    let fig8 = concentration(s, 7);
    assert!(!report::concentration_csv(&fig8).is_empty());
    let fig11 = urbanization_profiles(s, Direction::Down);
    assert!(!report::urbanization_csv(&fig11).is_empty());
    let fig5 = clustering_sweep(s, Direction::Down, Algorithm::KShape, 1);
    assert!(!report::sweep_csv(&fig5).is_empty());
    assert!(!report::overview_text(s).is_empty());
}

#[test]
fn maps_render_at_multiple_resolutions() {
    let s = study();
    for width in [16usize, 48, 96] {
        let grid = mobilenet::core::maps::per_user_map(s, Direction::Down, 0, width);
        assert_eq!(grid.width, width);
        let ascii = grid.to_ascii();
        assert_eq!(ascii.lines().count(), grid.height);
        let pgm = grid.to_pgm();
        assert!(pgm.starts_with("P2\n"));
    }
}

#[test]
fn uplink_and_downlink_tell_the_same_spatial_story() {
    // Figure 10's point: geography is shared; it should hold in both
    // directions, on the same study, with correlated outlier sets.
    let s = study();
    let dl = spatial_correlation(s, Direction::Down);
    let ul = spatial_correlation(s, Direction::Up);
    // The two directions' pairwise matrices correlate with each other.
    let dl_flat: Vec<f64> = dl.pair_values.clone();
    let ul_flat: Vec<f64> = ul.pair_values.clone();
    let r = mobilenet::timeseries::stats::pearson_r(&dl_flat, &ul_flat);
    assert!(r > 0.3, "directions disagree on spatial structure: r = {r}");
}

#[test]
fn the_dataset_supports_the_papers_three_headline_claims() {
    let s = study();

    // 1. Temporal heterogeneity: no two services share a peak signature
    //    (checked on detected topical-time sets). At 1/36 of the paper's
    //    subscriber base the measured hourly series carry sampling noise
    //    the detector (tuned for 30 M users) would read as peaks, so this
    //    claim is checked on the expectation path; the measured path is
    //    validated at figure scale by the `figures` binary.
    // A signature is the set of topical times with a peak plus the peak
    // intensity bucketed to 25% steps — the paper's "diversity of activity
    // peaks, both in timing and intensity".
    let expected = Pipeline::builder()
        .scale(Scale::Small)
        .expected()
        .seed(1234)
        .run()
        .unwrap()
        .into_study();
    let profiles = topical_profiles(&expected, Direction::Down, &PeakConfig::paper());
    let mut signatures: Vec<[Option<u8>; 7]> = profiles
        .iter()
        .map(|p| {
            let mut sig = [None; 7];
            for (i, s) in sig.iter_mut().enumerate() {
                if p.has_peak[i] {
                    *s = Some((p.intensity[i].unwrap_or(0.0) / 0.25).round() as u8);
                }
            }
            sig
        })
        .collect();
    signatures.sort_unstable();
    signatures.dedup();
    assert!(
        signatures.len() >= 14,
        "only {} distinct (timing, intensity) signatures across 20 services",
        signatures.len()
    );

    // 2. Spatial homogeneity: strong on the expectation path (the paper's
    //    regime), still clearly positive through the noisy small-scale
    //    measurement pipeline.
    let corr = spatial_correlation(&expected, Direction::Down);
    assert!(corr.mean_r2 > 0.35, "expected-path mean r² {}", corr.mean_r2);
    let measured_corr = spatial_correlation(s, Direction::Down);
    assert!(measured_corr.mean_r2 > 0.08, "measured mean r² {}", measured_corr.mean_r2);

    // 3. Urbanization: rural volume ratio clearly below urban.
    let urb = urbanization_profiles(s, Direction::Down);
    let means = mobilenet::core::urbanization::mean_volume_ratios(&urb);
    assert!(
        means[UsageClass::Rural.index()] < 0.85,
        "rural ratio {}",
        means[UsageClass::Rural.index()]
    );
}
