//! Parallel-vs-serial determinism: the whole pipeline must produce
//! bit-identical outputs at any worker count.
//!
//! This is the contract the `mobilenet-par` layer promises: work is
//! sharded with per-shard RNG streams (`seed_for`) and results are merged
//! in submission order, so thread count is invisible in every artifact.

use mobilenet::core::report;
use mobilenet::core::spatial::spatial_correlation;
use mobilenet::core::temporal::{clustering_sweep, Algorithm};
use mobilenet::core::topical::topical_profiles;
use mobilenet::core::peaks::PeakConfig;
use mobilenet::par::set_thread_override;
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale, DEFAULT_SEED};

const SEED: u64 = DEFAULT_SEED;

/// Everything downstream analyses consume, rendered to exact text.
struct Snapshot {
    dataset_csv: String,
    fig5_csv: String,
    fig10_csv: String,
    fig6_csv: String,
}

fn snapshot() -> Snapshot {
    let study =
        Pipeline::builder().scale(Scale::Small).seed(SEED).run().unwrap().into_study();
    let sweep = clustering_sweep(&study, Direction::Down, Algorithm::KShape, 3);
    let corr = spatial_correlation(&study, Direction::Down);
    let profiles = topical_profiles(&study, Direction::Down, &PeakConfig::paper());
    Snapshot {
        dataset_csv: study.dataset().to_csv(),
        fig5_csv: report::sweep_csv(&sweep),
        fig10_csv: report::correlation_csv(&corr),
        fig6_csv: report::topical_matrix_csv(&profiles),
    }
}

#[test]
fn pipeline_is_bit_identical_at_1_2_and_8_threads() {
    // All thread counts run inside one #[test] so the process-global
    // override is never raced by a sibling test.
    set_thread_override(Some(1));
    let reference = snapshot();
    assert!(!reference.dataset_csv.is_empty());
    assert!(!reference.fig5_csv.is_empty());
    assert!(!reference.fig10_csv.is_empty());
    assert!(!reference.fig6_csv.is_empty());

    for threads in [2usize, 8] {
        set_thread_override(Some(threads));
        let run = snapshot();
        assert!(
            run.dataset_csv == reference.dataset_csv,
            "TrafficDataset CSV differs at {threads} threads"
        );
        assert!(
            run.fig5_csv == reference.fig5_csv,
            "Figure 5 sweep differs at {threads} threads"
        );
        assert!(
            run.fig10_csv == reference.fig10_csv,
            "Figure 10 correlation differs at {threads} threads"
        );
        assert!(
            run.fig6_csv == reference.fig6_csv,
            "Figure 6 topical matrix differs at {threads} threads"
        );
    }
    set_thread_override(None);
}
