//! Streaming bounded-memory ingestion across the whole stack.
//!
//! The contracts this file pins:
//!
//! * chunked collection is **bit-identical** to the materialized path at
//!   every thread count and every chunk size — chunking bounds memory,
//!   never the fold order;
//! * the fault-injected path keeps the same guarantee: a degraded plan
//!   streamed in tiny chunks produces the same bytes as the whole-shard
//!   run;
//! * peak resident records never exceed `chunk_size × workers`;
//! * the ingest counters reported through the observability layer agree
//!   with the stats the pipeline returns.

use mobilenet::netsim::records::FlowSignature;
use mobilenet::netsim::{
    stream_shard_chunked, ChunkSink, CollectionStats, IngestError, IngestMeter, Interface,
    RecordSource, SessionRecord, ERROR_SAMPLE_CAP,
};
use mobilenet::par::set_thread_override;
use mobilenet::{FaultPlan, FoldStrategy, Pipeline, Scale, DEFAULT_SEED};

/// One pipeline run: dataset CSV, collection stats and ingest stats.
fn run(faults: FaultPlan, chunk_size: Option<usize>, seed: u64) -> mobilenet::Run {
    run_fold(faults, chunk_size, seed, FoldStrategy::Batched)
}

/// [`run`] with an explicit batch-fold strategy.
fn run_fold(
    faults: FaultPlan,
    chunk_size: Option<usize>,
    seed: u64,
    fold: FoldStrategy,
) -> mobilenet::Run {
    let mut builder =
        Pipeline::builder().scale(Scale::Small).seed(seed).faults(faults).fold_strategy(fold);
    if let Some(n) = chunk_size {
        builder = builder.chunk_size(n);
    }
    builder.run().expect("valid configuration")
}

#[test]
fn streaming_is_bit_identical_across_threads_and_chunk_sizes() {
    // All thread counts run inside one #[test] so the process-global
    // override is never raced by a sibling test.
    set_thread_override(Some(1));
    let reference = run(FaultPlan::none(), None, DEFAULT_SEED);
    let reference_csv = reference.dataset().to_csv();
    let reference_stats = reference.collection_stats().expect("measured").clone();
    let total_records = reference.ingest_stats().expect("measured").records;
    assert!(total_records > 0);

    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        // Chunk size 1 (worst case), a small prime, the default, and one
        // larger than the whole input (the materialized path).
        for chunk in [1usize, 251, 8192, total_records as usize + 1] {
            let out = run(FaultPlan::none(), Some(chunk), DEFAULT_SEED);
            assert!(
                out.dataset().to_csv() == reference_csv,
                "chunked dataset differs at {threads} threads, chunk {chunk}"
            );
            let stats = out.collection_stats().expect("measured");
            assert_eq!(
                stats.sessions, reference_stats.sessions,
                "session count differs at {threads} threads, chunk {chunk}"
            );
            assert_eq!(stats.gn_records, reference_stats.gn_records);
            assert_eq!(stats.s5s8_records, reference_stats.s5s8_records);
            let ingest = out.ingest_stats().expect("measured");
            assert_eq!(ingest.chunk_size, chunk);
            assert_eq!(ingest.records, total_records);
            assert!(
                ingest.peak_resident_records <= ingest.resident_budget(),
                "peak {} exceeds budget {} at {threads} threads, chunk {chunk}",
                ingest.peak_resident_records,
                ingest.resident_budget()
            );
        }
    }
    set_thread_override(None);
}

#[test]
fn degraded_streaming_matches_degraded_materialized() {
    set_thread_override(Some(1));
    let reference = run(FaultPlan::degraded(3), None, DEFAULT_SEED);
    let reference_csv = reference.dataset().to_csv();
    let reference_faults = reference.collection_stats().expect("measured").faults;
    assert!(reference_faults.any(), "degraded plan must register fault events");

    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        for chunk in [1usize, 97] {
            let out = run(FaultPlan::degraded(3), Some(chunk), DEFAULT_SEED);
            assert!(
                out.dataset().to_csv() == reference_csv,
                "degraded chunked dataset differs at {threads} threads, chunk {chunk}"
            );
            let faults = &out.collection_stats().expect("measured").faults;
            assert_eq!(
                faults, &reference_faults,
                "fault accounting differs at {threads} threads, chunk {chunk}"
            );
            let ingest = out.ingest_stats().expect("measured");
            assert!(ingest.peak_resident_records <= ingest.resident_budget());
        }
    }
    set_thread_override(None);
}

#[test]
fn batched_fold_matches_row_at_a_time_reference_under_faults() {
    // The columnar dense-accumulation fold must reproduce the legacy
    // row-at-a-time fold bit for bit — same dataset bytes, same stats
    // down to the f64 bits — with a fault plan active, at every chunk
    // size and thread count. One serial row-at-a-time run is the
    // reference; everything else must equal it exactly.
    set_thread_override(Some(1));
    let reference =
        run_fold(FaultPlan::degraded(3), None, DEFAULT_SEED, FoldStrategy::RowAtATime);
    let reference_csv = reference.dataset().to_csv();
    let reference_stats = reference.collection_stats().expect("measured").clone();
    let total_records = reference.ingest_stats().expect("measured").records;

    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        // Chunk size 1 (worst case), a small prime, the default-ish, and
        // one larger than the whole input (the materialized path).
        for chunk in [1usize, 251, 8192, total_records as usize + 1] {
            for fold in [FoldStrategy::Batched, FoldStrategy::RowAtATime] {
                let out = run_fold(FaultPlan::degraded(3), Some(chunk), DEFAULT_SEED, fold);
                assert!(
                    out.dataset().to_csv() == reference_csv,
                    "{fold:?} dataset differs at {threads} threads, chunk {chunk}"
                );
                let stats = out.collection_stats().expect("measured");
                assert_eq!(stats.sessions, reference_stats.sessions);
                assert_eq!(stats.gn_records, reference_stats.gn_records);
                assert_eq!(stats.s5s8_records, reference_stats.s5s8_records);
                assert_eq!(stats.misassigned_sessions, reference_stats.misassigned_sessions);
                assert_eq!(stats.stale_fixes, reference_stats.stale_fixes);
                assert_eq!(
                    stats.classified_mb.to_bits(),
                    reference_stats.classified_mb.to_bits(),
                    "{fold:?} classified_mb bits differ at {threads} threads, chunk {chunk}"
                );
                assert_eq!(
                    stats.unclassified_mb.to_bits(),
                    reference_stats.unclassified_mb.to_bits(),
                    "{fold:?} unclassified_mb bits differ at {threads} threads, chunk {chunk}"
                );
                assert_eq!(stats.faults, reference_stats.faults);
            }
        }
    }
    set_thread_override(None);
}

/// A source standing in for a paper-scale shard: it *reports* more than
/// `u32::MAX` sessions and records through its diagnostics while only
/// materializing a handful of records — the counter-width regression
/// harness for national-scale runs (10⁸ real records and beyond).
struct VirtualScaleSource;

/// Virtual per-shard session count, comfortably past the 32-bit wrap.
const VIRTUAL_SESSIONS: u64 = u32::MAX as u64 + 17;

impl RecordSource for VirtualScaleSource {
    fn shards(&self) -> usize {
        3
    }

    fn stream_shard(
        &self,
        shard: usize,
        stats: &mut CollectionStats,
        sink: &mut ChunkSink<'_>,
    ) -> Result<(), IngestError> {
        stats.sessions += VIRTUAL_SESSIONS;
        stats.gn_records += VIRTUAL_SESSIONS - 5;
        stats.s5s8_records += 5;
        stats.misassigned_sessions += u32::MAX as u64 + 3;
        stats.stale_fixes += u32::MAX as u64 + 1;
        // Offer far more error samples than the reservoir cap; retention
        // must stay bounded while the seen count keeps exact u64 track.
        for i in 0..(4 * ERROR_SAMPLE_CAP as u64) {
            stats.push_error_sample((shard as u64 * 7 + i) as f64);
        }
        for h in 0..4u16 {
            sink.push(&SessionRecord {
                interface: Interface::Gn,
                start_hour: h,
                dl_mb: 1.0,
                ul_mb: 0.25,
                commune: mobilenet::geo::CommuneId(0),
                signature: FlowSignature(0),
                stale_uli: false,
            });
        }
        Ok(())
    }
}

#[test]
fn virtual_records_past_u32_max_do_not_wrap_any_counter() {
    let source = VirtualScaleSource;
    let meter = IngestMeter::new();
    let mut merged = CollectionStats::default();
    for shard in 0..source.shards() {
        let mut stats = CollectionStats::default();
        let mut records = 0u64;
        stream_shard_chunked(&source, shard, 2, &meter, &mut stats, |batch| {
            records += batch.len() as u64;
        })
        .expect("virtual shard streams");
        assert_eq!(records, 4);
        assert_eq!(stats.sessions, VIRTUAL_SESSIONS, "per-shard count wrapped");
        assert!(
            stats.sampled_errors_km.len() < ERROR_SAMPLE_CAP,
            "reservoir exceeded its cap: {}",
            stats.sampled_errors_km.len()
        );
        assert_eq!(stats.error_samples_seen, 4 * ERROR_SAMPLE_CAP as u64);
        assert!(stats.error_sample_thin >= 2, "thinning never engaged");
        merged.merge(&stats);
    }
    // Merging three >u32::MAX partials crosses the wrap boundary again;
    // every diagnostic must stay exact.
    assert_eq!(merged.sessions, 3 * VIRTUAL_SESSIONS);
    assert_eq!(merged.gn_records + merged.s5s8_records, 3 * VIRTUAL_SESSIONS);
    assert!(merged.sessions > u32::MAX as u64);
    assert!(merged.misassigned_sessions > u32::MAX as u64);
    assert!(merged.stale_fixes > u32::MAX as u64);
    assert!(merged.misassignment_rate() > 0.99 && merged.misassignment_rate() <= 1.0);
    assert!(merged.median_error_km().is_finite());
    let ingest = meter.stats(2, 1, 0);
    assert_eq!(ingest.records, 12, "the engine folded only the real records");
    assert!(ingest.peak_resident_records <= ingest.resident_budget());
}

#[test]
fn ingest_obs_counters_agree_with_reported_stats() {
    mobilenet::obs::reset();
    let out = Pipeline::builder()
        .scale(Scale::Small)
        .seed(7)
        .chunk_size(64)
        .obs(true)
        .run()
        .unwrap();
    let ingest = *out.ingest_stats().expect("measured run has ingest stats");
    let snapshot = out.obs_snapshot();
    assert_eq!(snapshot.counter("netsim.ingest.chunks"), Some(ingest.chunks));
    assert_eq!(snapshot.counter("netsim.ingest.records"), Some(ingest.records));
    assert_eq!(
        snapshot.counter("netsim.ingest.bytes_read"),
        Some(ingest.bytes_read)
    );
    // Every chunk flush emits exactly one batch on the columnar path.
    assert_eq!(snapshot.counter("netsim.ingest.batches"), Some(ingest.chunks));
    assert_eq!(ingest.chunk_size, 64);
    assert!(ingest.workers >= 1);
    assert!(ingest.peak_resident_records <= ingest.resident_budget());
    mobilenet::obs::set_enabled(Some(false));
    mobilenet::obs::reset();
}
