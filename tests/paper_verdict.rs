//! The headline regression gate: at figure scale, every quantitative claim
//! of the paper must fall inside its acceptance band. A failure anywhere in
//! the stack — geography, demand model, measurement pipeline, analysis —
//! shows up here as a named claim.
//!
//! This is the slowest test in the suite (it generates the 6,000-commune
//! study the shipped figures use); run with `--release`.

use mobilenet::core::study::{Study, StudyConfig};
use mobilenet::core::verdict::{evaluate, verdict_table};

#[test]
#[allow(clippy::inconsistent_digit_grouping)] // the seed spells 2016-09-24
fn all_paper_claims_hold_at_figure_scale() {
    let study = Study::generate(&StudyConfig::medium(), 2016_09_24);
    let claims = evaluate(&study);
    let failures: Vec<String> = claims
        .iter()
        .filter(|c| !c.pass())
        .map(|c| format!("{}: measured {:.3} outside [{}, {}]", c.id, c.measured, c.band.0, c.band.1))
        .collect();
    assert!(
        failures.is_empty(),
        "paper claims out of band:\n{}\n\nfull table:\n{}",
        failures.join("\n"),
        verdict_table(&claims)
    );
    assert!(claims.len() >= 19, "claim set shrank to {}", claims.len());
}
