//! The headline regression gate: at figure scale, every quantitative claim
//! of the paper must fall inside its acceptance band. A failure anywhere in
//! the stack — geography, demand model, measurement pipeline, analysis —
//! shows up here as a named claim.
//!
//! This is the slowest test in the suite (it generates the 6,000-commune
//! study the shipped figures use); run with `--release`.

use mobilenet::core::verdict::{evaluate, verdict_table};
use mobilenet::{Pipeline, Scale, DEFAULT_SEED};

#[test]
fn all_paper_claims_hold_at_figure_scale() {
    let study = Pipeline::builder()
        .scale(Scale::Medium)
        .seed(DEFAULT_SEED)
        .run()
        .unwrap()
        .into_study();
    let claims = evaluate(&study);
    let failures: Vec<String> = claims
        .iter()
        .filter(|c| !c.pass())
        .map(|c| format!("{}: measured {:.3} outside [{}, {}]", c.id, c.measured, c.band.0, c.band.1))
        .collect();
    assert!(
        failures.is_empty(),
        "paper claims out of band:\n{}\n\nfull table:\n{}",
        failures.join("\n"),
        verdict_table(&claims)
    );
    assert!(claims.len() >= 19, "claim set shrank to {}", claims.len());
}
