//! Property-based tests over the numerical core, with randomized inputs
//! spanning the whole stack.

use proptest::prelude::*;

use mobilenet::cluster::{kmeans, kshape};
use mobilenet::timeseries::fft::{
    cross_correlation, cross_correlation_auto, cross_correlation_naive,
    cross_correlation_with_plan, fft_in_place, next_pow2, CorrScratch, Direction, FftPlan,
    AUTO_NAIVE_MAX_WORK,
};
use mobilenet::timeseries::norm::{min_max_normalize, to_shares, z_normalize};
use mobilenet::timeseries::sbd::{
    ncc_c, shape_based_distance, shift_series, SbdEngine, SbdScratch,
};
use mobilenet::timeseries::Complex;
use mobilenet::timeseries::stats::{
    concentration_curve, linear_fit, pearson_r, quantile, r_squared, share_of_top, Ecdf,
};
use mobilenet::timeseries::zipf::{fit_zipf, zipf_weights};

fn finite_series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_cross_correlation_matches_naive(
        x in finite_series(1..48),
        y in finite_series(1..48),
    ) {
        let fast = cross_correlation(&x, &y);
        let slow = cross_correlation_naive(&x, &y);
        prop_assert_eq!(fast.len(), slow.len());
        let scale = x.iter().chain(y.iter()).fold(1.0f64, |a, &v| a.max(v.abs()));
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - b).abs() <= 1e-6 * scale * scale * 48.0,
                "{} vs {}", a, b);
        }
    }

    #[test]
    fn z_normalize_is_idempotent_in_distribution(s in finite_series(2..200)) {
        let z = z_normalize(&s);
        let zz = z_normalize(&z);
        for (a, b) in z.iter().zip(zz.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn min_max_stays_in_unit_interval(s in finite_series(1..100)) {
        for v in min_max_normalize(&s) {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn shares_are_a_distribution(s in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let shares = to_shares(&s);
        let total: f64 = shares.iter().sum();
        if s.iter().sum::<f64>() > 0.0 {
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        prop_assert!(shares.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn planned_fft_matches_oneshot_oracle_bitwise(
        x in finite_series(1..130),
    ) {
        // The cached-plan transform must be BIT-identical to the one-shot
        // reference, both directions — the twiddle tables are filled by
        // the same recurrence the unplanned kernel runs live.
        let n = next_pow2(x.len());
        let plan = FftPlan::new(n);
        let mut planned: Vec<Complex> =
            x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        planned.resize(n, Complex::new(0.0, 0.0));
        let mut oneshot = planned.clone();
        for dir in [Direction::Forward, Direction::Inverse] {
            plan.fft_in_place(&mut planned, dir);
            fft_in_place(&mut oneshot, dir);
            for (a, b) in planned.iter().zip(oneshot.iter()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn scratch_cross_correlation_matches_allocating_form_bitwise(
        x in finite_series(1..80),
        y in finite_series(1..80),
    ) {
        let plan = FftPlan::new(next_pow2(x.len() + y.len() - 1));
        let mut scratch = CorrScratch::new();
        let mut out = Vec::new();
        // Twice through the same scratch: the warmed second pass must
        // also match (stale buffer contents must not leak through).
        for _ in 0..2 {
            cross_correlation_with_plan(&plan, &x, &y, &mut scratch, &mut out);
            let oracle = cross_correlation(&x, &y);
            prop_assert_eq!(out.len(), oracle.len());
            for (a, b) in out.iter().zip(oracle.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn auto_cross_correlation_matches_selected_branch_bitwise(
        x in finite_series(1..80),
        y in finite_series(1..80),
    ) {
        // Lengths up to 80×80 straddle the 48×48 dispatch threshold, so
        // both branches are exercised. The contract is bit-identity with
        // whichever kernel the size class selects.
        let auto = cross_correlation_auto(&x, &y);
        let oracle = if x.len() * y.len() <= AUTO_NAIVE_MAX_WORK {
            cross_correlation_naive(&x, &y)
        } else {
            cross_correlation(&x, &y)
        };
        prop_assert_eq!(auto.len(), oracle.len());
        for (a, b) in auto.iter().zip(oracle.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sbd_engine_matches_oneshot_kernels_bitwise(
        series in prop::collection::vec(finite_series(6..6 + 1), 2..6),
        m in 4usize..32,
    ) {
        // Re-cut the generated rows to a common length m, then check the
        // batched engine against the per-call kernels bit-for-bit.
        let rows: Vec<Vec<f64>> = series
            .iter()
            .map(|s| (0..m).map(|i| s[i % s.len()] * (1.0 + i as f64 * 0.01)).collect())
            .collect();
        let engine = SbdEngine::new(m);
        let specs: Vec<_> = rows.iter().map(|r| engine.spectrum(r)).collect();
        let mut scratch = SbdScratch::new();
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                let batched = engine.sbd(&specs[i], &specs[j], &mut scratch);
                let oneshot = shape_based_distance(a, b);
                prop_assert_eq!(batched.to_bits(), oneshot.to_bits());
            }
        }
    }

    #[test]
    fn sbd_is_symmetric_and_bounded(
        x in finite_series(4..64),
        y in finite_series(4..64),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let d1 = shape_based_distance(x, y);
        let d2 = shape_based_distance(y, x);
        prop_assert!((d1 - d2).abs() < 1e-9, "{} vs {}", d1, d2);
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d1));
    }

    #[test]
    fn sbd_self_distance_is_zero_after_znorm(x in finite_series(4..64)) {
        let z = z_normalize(&x);
        if z.iter().any(|v| *v != 0.0) {
            prop_assert!(shape_based_distance(&z, &z) < 1e-9);
        }
    }

    #[test]
    fn ncc_shift_recovers_integer_shifts(
        x in finite_series(8..40),
        shift in 0isize..8,
    ) {
        // Only meaningful when the series has energy in its prefix.
        let energy: f64 = x.iter().map(|v| v * v).sum();
        prop_assume!(energy > 1.0);
        let shifted = shift_series(&x, shift);
        let shifted_energy: f64 = shifted.iter().map(|v| v * v).sum();
        prop_assume!(shifted_energy > 0.5 * energy);
        let a = ncc_c(&x, &shifted);
        // The best alignment should move the shifted series back, within
        // the tolerance allowed by truncated mass.
        prop_assert!((a.shift + shift).abs() <= 2, "shift {} vs {}", a.shift, shift);
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        x in finite_series(3..100),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let r = pearson_r(&x, &y);
        prop_assert!((-1.0..=1.0).contains(&r));
        let sd: f64 = {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
        };
        if sd > 1e-9 {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {}", r);
            prop_assert!((r_squared(&x, &y) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn linear_fit_residuals_are_orthogonal(x in finite_series(3..50), noise in finite_series(3..50)) {
        let n = x.len().min(noise.len());
        let xs = &x[..n];
        let ys: Vec<f64> = xs.iter().zip(noise.iter()).map(|(a, b)| a + b * 0.01).collect();
        let fit = linear_fit(xs, &ys);
        // Residuals sum to ~0 (least-squares normal equations).
        let resid_sum: f64 = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| y - (fit.slope * x + fit.intercept))
            .sum();
        let scale = ys.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        prop_assert!(resid_sum.abs() < 1e-6 * scale * n as f64);
    }

    #[test]
    fn ecdf_is_monotone_and_normalized(s in finite_series(1..200)) {
        let e = Ecdf::new(&s);
        let curve = e.curve();
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        if let Some(last) = curve.last() {
            prop_assert!((last.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles_are_monotone(s in finite_series(1..100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&s, lo) <= quantile(&s, hi) + 1e-9);
    }

    #[test]
    fn concentration_curve_dominates_the_diagonal(
        s in prop::collection::vec(0.0f64..1e6, 2..200),
    ) {
        // Sorting descending means the top-x% always carries >= x% of mass.
        for (pop, mass) in concentration_curve(&s) {
            prop_assert!(mass >= pop - 1e-9, "top {} carries only {}", pop, mass);
        }
        // share_of_top reports the mass at the largest curve point whose
        // population share fits the requested fraction; by the dominance
        // above it carries at least its own population share.
        let n = s.iter().filter(|v| v.is_finite()).count();
        let included = n / 2;
        if included > 0 {
            let top_half = share_of_top(&s, 0.5);
            prop_assert!(top_half >= included as f64 / n as f64 - 1e-9);
        }
    }

    #[test]
    fn zipf_fit_recovers_exponent(s in 0.5f64..3.0, n in 20usize..200) {
        let w = zipf_weights(n, s);
        let fit = fit_zipf(&w).unwrap();
        prop_assert!((fit.exponent - s).abs() < 1e-6, "{} vs {}", fit.exponent, s);
    }

    #[test]
    fn clustering_outputs_are_well_formed(
        seed in 0u64..1000,
        k in 1usize..5,
    ) {
        let series: Vec<Vec<f64>> = (0..8)
            .map(|i| (0..24).map(|t| ((t + i * 3) as f64 * 0.7).sin() + i as f64 * 0.1).collect())
            .collect();
        for clustering in [kshape(&series, k, seed), kmeans(&series, k, seed)] {
            prop_assert_eq!(clustering.assignments.len(), series.len());
            prop_assert!(clustering.assignments.iter().all(|&a| a < k));
            prop_assert!(clustering.sizes().iter().all(|&s| s > 0));
            for c in &clustering.centroids {
                prop_assert_eq!(c.len(), 24);
                prop_assert!(c.iter().all(|v| v.is_finite()));
            }
        }
    }
}

// --- persistence property tests (appended) ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn session_record_lines_round_trip(
        start_hour in 0u16..168,
        dl in 0.0f64..1e6,
        ul in 0.0f64..1e6,
        commune in 0u32..100_000,
        signature in prop::num::u64::ANY,
        stale in prop::bool::ANY,
        s5s8 in prop::bool::ANY,
    ) {
        use mobilenet::netsim::{Interface, SessionRecord};
        use mobilenet::netsim::trace::{record_from_line, record_to_line};
        let r = SessionRecord {
            interface: if s5s8 { Interface::S5S8 } else { Interface::Gn },
            start_hour,
            dl_mb: dl,
            ul_mb: ul,
            commune: mobilenet::geo::CommuneId(commune),
            signature: mobilenet::netsim::records::FlowSignature(signature),
            stale_uli: stale,
        };
        let back = record_from_line(&record_to_line(&r)).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn session_record_lines_round_trip_extreme_volumes(
        start_hour in 0u16..168,
        dl_mantissa in 0.0f64..10.0,
        dl_exp in -320i32..300,
        ul_mantissa in 0.0f64..10.0,
        ul_exp in -320i32..300,
        commune in 0u32..100_000,
        signature in prop::num::u64::ANY,
        stale in prop::bool::ANY,
        s5s8 in prop::bool::ANY,
    ) {
        use mobilenet::netsim::{Interface, SessionRecord};
        use mobilenet::netsim::trace::{record_from_line, record_to_line};
        // Volumes spanning the whole finite range, down into the
        // subnormals (10^-320) and up to 10^300 — the `{:e}` writer and
        // the parser must agree bit for bit on all of them.
        let r = SessionRecord {
            interface: if s5s8 { Interface::S5S8 } else { Interface::Gn },
            start_hour,
            dl_mb: dl_mantissa * 10f64.powi(dl_exp),
            ul_mb: ul_mantissa * 10f64.powi(ul_exp),
            commune: mobilenet::geo::CommuneId(commune),
            signature: mobilenet::netsim::records::FlowSignature(signature),
            stale_uli: stale,
        };
        let back = record_from_line(&record_to_line(&r)).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn dtw_is_a_semi_metric(
        x in prop::collection::vec(-100.0f64..100.0, 2..24),
        y in prop::collection::vec(-100.0f64..100.0, 2..24),
    ) {
        use mobilenet::timeseries::dtw::dtw_distance;
        let dxy = dtw_distance(&x, &y, None);
        let dyx = dtw_distance(&y, &x, None);
        prop_assert!((dxy - dyx).abs() < 1e-9, "symmetry: {} vs {}", dxy, dyx);
        prop_assert!(dxy >= 0.0);
        prop_assert!(dtw_distance(&x, &x, None) < 1e-9);
    }

    #[test]
    fn decomposition_reconstructs_any_series(
        s in prop::collection::vec(-1e3f64..1e3, 48..120),
    ) {
        use mobilenet::timeseries::decompose::decompose;
        let d = decompose(&s, 24);
        for (a, b) in d.reconstruct().iter().zip(s.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        prop_assert!((0.0..=1.0).contains(&d.seasonal_strength()));
    }

    #[test]
    fn holt_winters_is_finite_on_arbitrary_positive_series(
        s in prop::collection::vec(0.1f64..1e4, 48..96),
        horizon in 1usize..24,
    ) {
        use mobilenet::core::forecast::{holt_winters, HoltWintersConfig};
        let f = holt_winters(&s, &HoltWintersConfig::hourly(), horizon);
        prop_assert_eq!(f.len(), horizon);
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn autocorrelation_lag0_is_one_and_bounded(
        s in prop::collection::vec(-1e3f64..1e3, 4..128),
    ) {
        use mobilenet::timeseries::stats::autocorrelation;
        let max_lag = s.len() / 2;
        let acf = autocorrelation(&s, max_lag);
        prop_assert_eq!(acf[0], 1.0);
        for v in &acf {
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(v), "{}", v);
        }
    }
}
