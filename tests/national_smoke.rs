//! Thin-slice smoke of the national (paper-scale) tier.
//!
//! The full national run streams ~10⁸ sessions; CI cannot afford that on
//! every push, so the smoke streams a **thin slice** — the three
//! smallest per-service shards of the real national source — through the
//! real streaming engine and asserts the contracts that matter at scale:
//!
//! * peak resident records never exceed `chunk_size × workers`, no
//!   matter how many sessions a shard produces;
//! * every streamed shard covers the whole week (the live watermark can
//!   reach hour 168 — completeness is observable, not assumed);
//! * the error reservoir stays bounded while its `seen` counter keeps
//!   exact count;
//! * the verdict computed over the resulting study never goes NaN or
//!   infinite, even on a slice where most head services are empty.
//!
//! The heavy test is `#[ignore]` by default; CI runs it explicitly under
//! an address-space ceiling (`ulimit -v`) so an accidental
//! full-materialization regression fails loudly. The export-determinism
//! test below it is fast and always on.

use mobilenet::core::report;
use mobilenet::core::spatial::concentration;
use mobilenet::core::study::{Study, StudyConfig};
use mobilenet::core::verdict::evaluate;
use mobilenet::netsim::{
    aggregate_batch, stream_shard_chunked, CollectionOutput, CollectionStats, IngestMeter,
    ERROR_SAMPLE_CAP,
};
use mobilenet::par::set_thread_override;
use mobilenet::traffic::TrafficDataset;
use mobilenet::{Pipeline, Scale, DEFAULT_SEED};

/// The slice of the national source the smoke streams: the three
/// lowest-volume head-service shards (head services are catalog-ranked,
/// so the tail of the shard range is the cheapest representative slice).
const SMOKE_SHARDS: [usize; 3] = [17, 18, 19];

#[test]
#[ignore = "national thin-slice smoke (seconds-to-minutes); CI runs it explicitly under an RSS ceiling"]
fn national_smoke() {
    let config = StudyConfig::national();
    let model = config.demand_model(DEFAULT_SEED);
    let options = config.collect_options();
    let capture = mobilenet::netsim::Capture::build(&model, &config.netsim, DEFAULT_SEED)
        .expect("national netsim config is valid");
    let source = capture.source(&model, &options, DEFAULT_SEED);
    use mobilenet::netsim::RecordSource;
    assert!(source.shards() > *SMOKE_SHARDS.iter().max().unwrap());

    // Stream each smoke shard through the bounded engine, folding every
    // flushed batch straight into a per-shard marginal partial — exactly
    // the collection fold, never a materialized record set.
    let classifier = capture.classifier();
    let catalog = model.catalog();
    let new_dataset = || {
        TrafficDataset::new(
            model.country(),
            catalog.head().len(),
            catalog.tail_len(),
            model.config().subscriber_share,
        )
    };
    let meter = IngestMeter::new();
    let mut dataset = new_dataset();
    let mut stats = CollectionStats::default();
    for &shard in &SMOKE_SHARDS {
        let mut shard_dataset = new_dataset();
        // Source-side (session-level) and fold-side (record-level)
        // diagnostics live in disjoint fields; merging the two partials
        // afterwards reproduces the engine's single-struct accounting.
        let mut shard_stats = CollectionStats::default();
        let mut fold_stats = CollectionStats::default();
        let mut frontier = 0u16;
        stream_shard_chunked(
            &source,
            shard,
            config.chunk_size,
            &meter,
            &mut shard_stats,
            |batch| {
                for &h in batch.start_hours() {
                    frontier = frontier.max(h + 1);
                }
                aggregate_batch(
                    batch,
                    classifier,
                    options.fold,
                    false,
                    &mut shard_dataset,
                    &mut fold_stats,
                );
            },
        )
        .expect("national shard streams");
        shard_stats.merge(&fold_stats);
        // Watermark completeness: the shard's record stream reaches the
        // end of the measurement week.
        assert_eq!(frontier, 168, "shard {shard} never reached hour 168");
        assert!(shard_stats.sessions > 0, "shard {shard} produced no sessions");
        assert!(
            shard_stats.sampled_errors_km.len() < ERROR_SAMPLE_CAP,
            "shard {shard} reservoir broke its cap"
        );
        dataset.merge(&shard_dataset).expect("same-shape partials merge");
        stats.merge(&shard_stats);
    }
    let ingest = meter.stats(config.chunk_size, 1, source.bytes_read());
    assert!(
        ingest.records > 100_000,
        "thin slice unexpectedly small ({} records) — is the national tier still paper-scale?",
        ingest.records
    );
    // The bounded-memory contract, the point of the tier: residency never
    // scales with the record count.
    assert!(
        ingest.peak_resident_records <= ingest.resident_budget(),
        "peak resident {} exceeds budget {}",
        ingest.peak_resident_records,
        ingest.resident_budget()
    );
    assert!(stats.median_error_km().is_finite());
    assert!(stats.misassignment_rate().is_finite());

    // The analysis stack over the slice: every verdict number must stay
    // finite even though 17 of 20 head services are all-zero here.
    model.fill_tail(&mut dataset);
    let study = Study::from_parts(model.clone(), CollectionOutput { dataset, stats, ingest });
    for claim in evaluate(&study) {
        assert!(
            claim.measured.is_finite(),
            "claim {} measured a non-finite value on the thin slice",
            claim.id
        );
    }
}

#[test]
fn sampled_exports_are_identical_at_any_thread_count() {
    // The figure-8 export reservoir-samples its sections at national
    // scale; the sample must be a pure function of (data, cap, seed) —
    // never of scheduling. All thread counts run inside one #[test] so
    // the process-global override is never raced by a sibling test.
    set_thread_override(Some(1));
    let reference = {
        let run = Pipeline::builder().scale(Scale::Small).seed(DEFAULT_SEED).run().unwrap();
        let study = run.into_study();
        let conc = concentration(&study, 0);
        assert!(conc.dl_curve.len() > 64, "study too small to engage sampling");
        report::concentration_csv_sampled(&conc, 64, DEFAULT_SEED)
    };
    assert!(reference.contains("# sampled max_points_per_section=64"));
    for threads in [2usize, 8] {
        set_thread_override(Some(threads));
        let run = Pipeline::builder().scale(Scale::Small).seed(DEFAULT_SEED).run().unwrap();
        let study = run.into_study();
        let csv = report::concentration_csv_sampled(&concentration(&study, 0), 64, DEFAULT_SEED);
        assert_eq!(csv, reference, "sampled export differs at {threads} threads");
    }
    set_thread_override(None);
}
