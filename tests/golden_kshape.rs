//! Golden fixture guarding the SBD/FFT/k-shape kernel layer.
//!
//! The plan-cached engine rewrite (DESIGN §3.12) promises that the Fig-5
//! sweep's *partition* — assignments, iteration counts, convergence — is
//! exactly what the pre-rewrite per-call kernels produced, and that the
//! full output (centroids and index scores included) is bit-identical
//! across thread counts. Two fixtures pin that:
//!
//! * `EXPECTED`: per-`k` iterations + assignments, captured from the
//!   pre-rewrite code (`golden_capture --scale small --seed 7
//!   --restarts 3`). These must never change: they are invariant to the
//!   kernel layout because every distance the algorithm compares is
//!   computed bit-identically (twiddle-table recurrence, cached spectra),
//!   and the implicit-operator shape extraction perturbs centroids by
//!   ulps only — not enough to flip any comparison on this data.
//! * `EXPECTED_BITS_DIGEST`: FNV-1a over every centroid and score bit of
//!   the sweep, captured from the current kernels. This pins the exact
//!   floating-point behavior; if a future change intentionally alters
//!   kernel arithmetic, regenerate with `golden_capture` and update both
//!   this digest and `DESIGN.md` §3.12's numerical contract.

use mobilenet::core::temporal::{clustering_sweep, Algorithm, ClusteringSweep};
use mobilenet::par::set_thread_override;
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale};

const SEED: u64 = 7;
const RESTARTS: u64 = 3;

/// (k, iterations, assignments) captured from the pre-rewrite kernels.
const EXPECTED: &[(usize, usize, &[usize])] = &[
    (2, 2, &[0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1]),
    (3, 3, &[0, 0, 1, 0, 1, 2, 0, 0, 1, 0, 1, 2, 0, 1, 1, 0, 2, 2, 1, 1]),
    (4, 4, &[0, 3, 1, 0, 2, 2, 0, 0, 1, 0, 1, 2, 3, 3, 1, 0, 0, 1, 0, 0]),
    (5, 4, &[3, 4, 1, 0, 2, 2, 0, 0, 1, 0, 2, 3, 4, 4, 1, 0, 1, 1, 0, 1]),
    (6, 2, &[4, 4, 2, 4, 2, 3, 1, 1, 0, 3, 2, 4, 5, 5, 2, 1, 1, 0, 0, 1]),
    (7, 1, &[4, 5, 2, 5, 3, 3, 1, 1, 4, 4, 2, 5, 6, 6, 2, 1, 1, 0, 0, 1]),
    (8, 2, &[1, 0, 5, 4, 2, 5, 1, 1, 5, 1, 5, 6, 0, 4, 3, 7, 1, 5, 1, 4]),
    (9, 3, &[1, 0, 5, 3, 3, 6, 8, 8, 1, 2, 5, 7, 0, 4, 3, 8, 1, 6, 3, 5]),
    (10, 2, &[7, 8, 3, 8, 4, 5, 1, 1, 6, 6, 0, 7, 9, 9, 3, 1, 2, 0, 0, 2]),
    (11, 2, &[2, 0, 6, 1, 3, 7, 1, 1, 2, 2, 7, 8, 0, 5, 4, 10, 9, 7, 4, 6]),
    (12, 2, &[8, 9, 4, 9, 5, 6, 2, 2, 8, 7, 0, 1, 11, 10, 4, 2, 2, 0, 0, 3]),
    (13, 2, &[9, 10, 4, 10, 5, 7, 2, 2, 9, 8, 0, 1, 12, 11, 4, 2, 3, 0, 0, 6]),
    (14, 2, &[9, 11, 4, 8, 6, 7, 2, 2, 1, 9, 5, 10, 13, 12, 5, 2, 3, 0, 0, 3]),
    (15, 2, &[10, 12, 5, 12, 6, 8, 2, 2, 7, 9, 4, 1, 14, 13, 5, 2, 3, 0, 0, 11]),
    (16, 2, &[11, 13, 5, 15, 7, 8, 3, 3, 12, 10, 6, 1, 14, 9, 5, 2, 3, 0, 0, 4]),
    (17, 2, &[13, 14, 5, 16, 7, 9, 3, 3, 11, 10, 2, 12, 15, 8, 6, 3, 4, 0, 0, 1]),
    (18, 2, &[15, 14, 10, 8, 7, 9, 3, 3, 12, 11, 2, 13, 16, 5, 6, 3, 4, 17, 0, 1]),
    (19, 2, &[13, 15, 6, 11, 8, 10, 3, 3, 9, 12, 2, 1, 17, 5, 7, 18, 4, 16, 0, 14]),
];

/// FNV-1a over every centroid bit and score bit of the whole sweep.
const EXPECTED_BITS_DIGEST: u64 = 0x9103_76a2_15d4_b396;

fn fnv1a(h: &mut u64, bits: u64) {
    for byte in bits.to_le_bytes() {
        *h ^= byte as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn bits_digest(sweep: &ClusteringSweep) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in &sweep.points {
        for v in p.clustering.centroids.iter().flatten() {
            fnv1a(&mut h, v.to_bits());
        }
        for s in [
            p.scores.davies_bouldin,
            p.scores.davies_bouldin_star,
            p.scores.dunn,
            p.scores.silhouette,
        ] {
            fnv1a(&mut h, s.to_bits());
        }
    }
    h
}

fn sweep_at(threads: usize) -> ClusteringSweep {
    set_thread_override(Some(threads));
    let study =
        Pipeline::builder().scale(Scale::Small).seed(SEED).run().unwrap().into_study();
    clustering_sweep(&study, Direction::Down, Algorithm::KShape, RESTARTS)
}

#[test]
fn kshape_sweep_matches_golden_fixture_at_1_2_and_8_threads() {
    // All thread counts run in one #[test] so the process-global thread
    // override is never raced by a sibling test.
    let reference = sweep_at(1);

    assert_eq!(reference.points.len(), EXPECTED.len());
    for (p, &(k, iters, assignments)) in reference.points.iter().zip(EXPECTED) {
        assert_eq!(p.k, k);
        assert_eq!(p.clustering.iterations, iters, "iterations at k={k}");
        assert!(p.clustering.converged, "k={k} did not converge");
        assert_eq!(p.clustering.assignments, assignments, "assignments at k={k}");
    }
    assert_eq!(
        bits_digest(&reference),
        EXPECTED_BITS_DIGEST,
        "centroid/score bits changed: got {:#018x} — if the kernel arithmetic \
         changed intentionally, regenerate via golden_capture and update the \
         fixture + DESIGN §3.12",
        bits_digest(&reference),
    );

    for threads in [2usize, 8] {
        let run = sweep_at(threads);
        assert_eq!(run.points.len(), reference.points.len());
        for (a, b) in run.points.iter().zip(reference.points.iter()) {
            assert_eq!(a.clustering.assignments, b.clustering.assignments);
            assert_eq!(a.clustering.iterations, b.clustering.iterations);
            for (ca, cb) in a.clustering.centroids.iter().zip(b.clustering.centroids.iter()) {
                for (x, y) in ca.iter().zip(cb.iter()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "centroid bits differ at {threads} threads (k={})",
                        a.k
                    );
                }
            }
            for (x, y) in [
                (a.scores.davies_bouldin, b.scores.davies_bouldin),
                (a.scores.davies_bouldin_star, b.scores.davies_bouldin_star),
                (a.scores.dunn, b.scores.dunn),
                (a.scores.silhouette, b.scores.silhouette),
            ] {
                assert_eq!(x.to_bits(), y.to_bits(), "score bits differ at {threads} threads");
            }
        }
    }
    set_thread_override(None);
}
