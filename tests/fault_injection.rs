//! Fault-injected capture across the whole stack.
//!
//! The two contracts this file pins:
//!
//! * the **identity plan** ([`FaultPlan::none`]) is bit-identical to the
//!   historical fault-free pipeline at any thread count — fault support
//!   must cost nothing when no fault is configured;
//! * a **degraded plan** completes without panicking at any thread count,
//!   produces the same bytes at 1/2/8 workers, and reports every fault
//!   event through the collection stats and the observability layer.

use mobilenet::netsim::{replay_lossy, trace_to_csv_faulty};
use mobilenet::par::set_thread_override;
use mobilenet::traffic::Direction;
use mobilenet::{FaultPlan, Pipeline, Scale, DEFAULT_SEED};

fn dataset_csv(faults: FaultPlan) -> String {
    Pipeline::builder()
        .scale(Scale::Small)
        .seed(DEFAULT_SEED)
        .faults(faults)
        .run()
        .expect("valid configuration")
        .dataset()
        .to_csv()
}

#[test]
fn zero_fault_plan_is_bit_identical_at_1_2_and_8_threads() {
    // All thread counts run inside one #[test] so the process-global
    // override is never raced by a sibling test.
    set_thread_override(Some(1));
    let plain = dataset_csv(FaultPlan::none());
    assert!(!plain.is_empty());

    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        let zeroed = dataset_csv(FaultPlan::none());
        assert!(
            zeroed == plain,
            "identity fault plan changed the dataset at {threads} threads"
        );
    }
    set_thread_override(None);
}

#[test]
fn degraded_plan_is_deterministic_across_thread_counts() {
    set_thread_override(Some(1));
    let reference = dataset_csv(FaultPlan::degraded(3));
    assert!(!reference.is_empty());
    // Degradation must actually change the output, not just the counters.
    assert!(
        reference != dataset_csv(FaultPlan::none()),
        "degraded plan produced the fault-free dataset"
    );

    for threads in [2usize, 8] {
        set_thread_override(Some(threads));
        let run = dataset_csv(FaultPlan::degraded(3));
        assert!(
            run == reference,
            "degraded dataset differs at {threads} threads"
        );
    }
    set_thread_override(None);
}

#[test]
fn faulted_run_reports_counters_through_stats_and_obs() {
    mobilenet::obs::reset();
    let run = Pipeline::builder()
        .scale(Scale::Small)
        .seed(7)
        .obs(true)
        .faults(FaultPlan::degraded(7))
        .run()
        .unwrap();

    let stats = run.collection_stats().expect("measured run has stats");
    assert!(stats.faults.any(), "degraded plan must register fault events");
    assert!(stats.faults.lost_outage > 0, "Gn outage window must drop records");
    assert!(stats.faults.lost_records > 0);
    assert!(stats.faults.duplicated_records > 0);
    assert!(run.dataset().total(Direction::Down) > 0.0, "degraded ≠ empty");

    let snapshot = run.obs_snapshot();
    for name in [
        "netsim.faults.lost_outage",
        "netsim.faults.lost_records",
        "netsim.faults.duplicated_records",
        "netsim.faults.truncated_records",
        "netsim.faults.skewed_records",
    ] {
        assert!(
            snapshot.counter(name).is_some(),
            "missing obs counter {name}"
        );
    }
    assert_eq!(
        snapshot.counter("netsim.faults.lost_outage"),
        Some(stats.faults.lost_outage)
    );
    mobilenet::obs::set_enabled(Some(false));
    mobilenet::obs::reset();
}

#[test]
fn corrupted_trace_replays_through_the_lossy_path_end_to_end() {
    let run = Pipeline::builder().scale(Scale::Small).seed(5).run().unwrap();
    let model = run.study().model();

    let mut records = Vec::new();
    let netsim = mobilenet::netsim::NetsimConfig::standard();
    let options = mobilenet::netsim::CollectOptions::default();
    mobilenet::netsim::observe_with_options(model, &netsim, &options, 5, |r| {
        records.push(r.clone())
    })
    .unwrap();

    let plan = FaultPlan { seed: 5, corrupt_prob: 0.05, ..FaultPlan::none() };
    let corrupted = trace_to_csv_faulty(&records, &plan);

    // The strict loader aborts on the first bad line …
    assert!(mobilenet::netsim::trace_from_csv(&corrupted).is_err());
    // … while the lossy replay skips-and-counts it and still yields a
    // usable dataset.
    let lossy = replay_lossy(&corrupted, model).expect("header intact");
    assert!(!lossy.skipped.is_empty(), "5% corruption must hit some lines");
    assert_eq!(lossy.stats.skipped_lines, lossy.skipped.len() as u64);
    assert!(lossy.dataset.total(Direction::Down) > 0.0);
    for e in &lossy.skipped {
        assert!(e.line >= 2, "line numbers are 1-based and skip the header");
    }
}
