//! Zero-allocation contract for the warmed SBD/FFT hot path (DESIGN §3.12).
//!
//! The k-shape inner loop calls `SbdEngine::sbd`/`ncc_c` and the planned
//! FFT kernels millions of times per sweep; the rewrite promises that,
//! once scratch buffers have warmed to the plan length, these calls touch
//! the heap zero times. A counting global allocator enforces that
//! directly rather than relying on code inspection.
//!
//! The binary holds exactly one `#[test]` so no sibling test thread can
//! allocate inside the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mobilenet::timeseries::fft::{
    cross_correlation_with_plan, CorrScratch, Direction, FftPlan,
};
use mobilenet::timeseries::sbd::{SbdEngine, SbdScratch};
use mobilenet::timeseries::Complex;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on and returns how many heap
/// allocations (including reallocations) it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn series(m: usize, phase: f64) -> Vec<f64> {
    (0..m).map(|i| (i as f64 * 0.37 + phase).sin() + 0.2 * (i as f64 * 1.7).cos()).collect()
}

#[test]
fn warmed_sbd_and_fft_kernels_do_not_allocate() {
    let m = 48;
    let engine = SbdEngine::new(m);
    let x = series(m, 0.0);
    let y = series(m, 1.3);
    let fx = engine.spectrum(&x);
    let mut fy = engine.spectrum(&y);
    let mut scratch = SbdScratch::new();

    // Warm every buffer to the plan length.
    engine.sbd(&fx, &fy, &mut scratch);
    engine.ncc_c(&fx, &fy, &mut scratch);
    engine.spectrum_into(&y, &mut fy);

    let sbd_allocs = allocations_in(|| {
        for _ in 0..100 {
            let d = engine.sbd(&fx, &fy, &mut scratch);
            assert!(d.is_finite());
            let a = engine.ncc_c(&fx, &fy, &mut scratch);
            assert!(a.ncc.is_finite());
            engine.spectrum_into(&y, &mut fy);
        }
    });
    assert_eq!(sbd_allocs, 0, "warmed SbdEngine path allocated {sbd_allocs} times");

    // Planned FFT + cross-correlation with caller-owned scratch.
    let plan = FftPlan::new(256);
    let mut data: Vec<Complex> =
        (0..256).map(|i| Complex::new((i as f64 * 0.11).sin(), 0.0)).collect();
    let mut corr_scratch = CorrScratch::new();
    let mut out = Vec::new();
    cross_correlation_with_plan(&plan, &x, &y, &mut corr_scratch, &mut out);

    let fft_allocs = allocations_in(|| {
        for _ in 0..100 {
            plan.fft_in_place(&mut data, Direction::Forward);
            plan.fft_in_place(&mut data, Direction::Inverse);
            cross_correlation_with_plan(&plan, &x, &y, &mut corr_scratch, &mut out);
        }
    });
    assert_eq!(fft_allocs, 0, "warmed planned-FFT path allocated {fft_allocs} times");
}
