//! Persistence integration: dataset export/import and probe-trace
//! capture/replay across the whole stack.

use std::sync::{Arc, OnceLock};

use mobilenet::core::ranking::service_ranking;
use mobilenet::core::spatial::spatial_correlation;
use mobilenet::core::study::Study;
use mobilenet::geo::{Country, CountryConfig};
use mobilenet::netsim::{
    collect_with_options, observe_with_options, replay, trace_from_csv, trace_to_csv,
    CollectOptions, NetsimConfig,
};
use mobilenet::traffic::{DemandModel, Direction, ServiceCatalog, TrafficConfig, TrafficDataset};
use mobilenet::{Pipeline, Scale};

fn small(seed: u64) -> Study {
    Pipeline::builder().scale(Scale::Small).seed(seed).run().unwrap().into_study()
}

fn study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| small(555))
}

#[test]
fn exported_dataset_supports_identical_analysis() {
    let s = study();
    let csv = s.dataset().to_csv();
    let restored = TrafficDataset::from_csv(&csv).expect("parse exported dataset");

    // Rankings computed from the restored tables are identical.
    let before = service_ranking(s, Direction::Down);
    for (i, share) in before.services.iter().enumerate() {
        let svc = share.service;
        let a = s.dataset().national_weekly(Direction::Down, svc);
        let b = restored.national_weekly(Direction::Down, svc);
        assert_eq!(a, b, "rank {i}");
    }
    // Per-user vectors too (users + classes round-trip).
    for svc in [0usize, 7, 19] {
        assert_eq!(
            s.dataset().per_user_commune_vector(Direction::Up, svc),
            restored.per_user_commune_vector(Direction::Up, svc)
        );
    }
}

#[test]
fn probe_trace_capture_and_replay_match_the_pipeline() {
    let country = Arc::new(Country::generate(&CountryConfig::small(), 4));
    let catalog = Arc::new(ServiceCatalog::standard(30));
    let model = DemandModel::new(country, catalog, TrafficConfig::fast(), 21);
    let netsim = NetsimConfig::standard();

    let direct = collect_with_options(&model, &netsim, &CollectOptions::default(), 9)
        .expect("standard config is valid");

    let mut records = Vec::new();
    let capture =
        observe_with_options(&model, &netsim, &CollectOptions::default(), 9, |r| {
            records.push(r.clone())
        })
        .expect("standard config is valid");
    assert_eq!(capture.emitted as usize, records.len());
    assert_eq!(capture.sessions, direct.stats.sessions);

    // Round-trip the trace through its CSV form before replaying.
    let parsed = trace_from_csv(&trace_to_csv(&records)).expect("trace parses");
    let replayed = replay(&parsed, &model);

    for dir in Direction::BOTH {
        assert!(
            (direct.dataset.total_classified(dir) - replayed.total_classified(dir)).abs()
                < 1e-6
        );
        assert!((direct.dataset.unclassified(dir) - replayed.unclassified(dir)).abs() < 1e-6);
    }
}

#[test]
fn export_is_stable_across_identical_runs() {
    let a = small(77).dataset().to_csv();
    let b = small(77).dataset().to_csv();
    assert_eq!(a, b, "export must be byte-identical for identical seeds");
}

#[test]
fn analyses_on_restored_data_keep_their_findings() {
    // The whole point of export: someone without the generator can load
    // the CSV and reproduce the spatial-correlation finding. Simulate that
    // by comparing the correlation run on original vs restored tables.
    let s = study();
    let restored = TrafficDataset::from_csv(&s.dataset().to_csv()).unwrap();
    let corr_before = spatial_correlation(s, Direction::Down).mean_r2;
    // Hand-rolled mean pairwise r² on the restored tables.
    let n = restored.n_services();
    let keep: Vec<usize> =
        (0..restored.n_communes()).filter(|&c| restored.commune_users()[c] > 0.0).collect();
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|svc| {
            let v = restored.per_user_commune_vector(Direction::Down, svc);
            keep.iter().map(|&c| v[c]).collect()
        })
        .collect();
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += mobilenet::timeseries::stats::r_squared(&vectors[i], &vectors[j]);
            count += 1;
        }
    }
    let corr_after = sum / count as f64;
    assert!((corr_before - corr_after).abs() < 1e-12);
}
