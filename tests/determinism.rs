//! Determinism: the entire stack — geography, demand, sessions, probes,
//! classification, analysis — must be reproducible from `(config, seed)`.

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::ranking::zipf_ranking;
use mobilenet::core::report;
use mobilenet::core::study::Study;
use mobilenet::core::temporal::{clustering_sweep, Algorithm};
use mobilenet::core::topical::topical_profiles;
use mobilenet::traffic::Direction;
use mobilenet::{Pipeline, Scale};

fn small(seed: u64) -> Study {
    Pipeline::builder().scale(Scale::Small).seed(seed).run().unwrap().into_study()
}

#[test]
fn identical_seeds_give_identical_figures() {
    let a = small(77);
    let b = small(77);

    // Figure 2 byte-for-byte.
    assert_eq!(
        report::zipf_csv(&zipf_ranking(&a)),
        report::zipf_csv(&zipf_ranking(&b))
    );
    // Figure 6 byte-for-byte.
    let pa = topical_profiles(&a, Direction::Down, &PeakConfig::paper());
    let pb = topical_profiles(&b, Direction::Down, &PeakConfig::paper());
    assert_eq!(report::topical_matrix_csv(&pa), report::topical_matrix_csv(&pb));
    // Figure 5 byte-for-byte (k-shape restarts are seeded).
    let sa = clustering_sweep(&a, Direction::Down, Algorithm::KShape, 2);
    let sb = clustering_sweep(&b, Direction::Down, Algorithm::KShape, 2);
    assert_eq!(report::sweep_csv(&sa), report::sweep_csv(&sb));
    // Collection diagnostics too.
    let (sa, sb) = (a.collection_stats().unwrap(), b.collection_stats().unwrap());
    assert_eq!(sa.sessions, sb.sessions);
    assert_eq!(sa.misassigned_sessions, sb.misassigned_sessions);
    assert_eq!(sa.stale_fixes, sb.stale_fixes);
}

#[test]
fn different_seeds_give_different_data_but_the_same_findings() {
    let a = small(1);
    let b = small(2);

    // The raw series differ…
    assert_ne!(
        a.dataset().national_series(Direction::Down, 0),
        b.dataset().national_series(Direction::Down, 0)
    );

    // …but the structural findings are seed-independent.
    let za = zipf_ranking(&a).dl_fit.unwrap();
    let zb = zipf_ranking(&b).dl_fit.unwrap();
    assert!((za.exponent - zb.exponent).abs() < 0.3);

    let ra = mobilenet::core::ranking::service_ranking(&a, Direction::Down);
    let rb = mobilenet::core::ranking::service_ranking(&b, Direction::Down);
    assert_eq!(ra.services[0].name, rb.services[0].name, "top service is stable");
}
