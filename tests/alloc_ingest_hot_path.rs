//! Zero-allocation contract for the warmed batch aggregation loop
//! (DESIGN §3.13).
//!
//! The streaming engine cycles one [`RecordBatch`] per sink: fill the
//! columns, dictionary-encode the signatures, fold dense columns into the
//! dataset's flat tables, clear, repeat. The columnar rewrite promises
//! that, once every column and the codes scratch have warmed to the chunk
//! size, that cycle touches the heap zero times — the counting global
//! allocator enforces it directly rather than relying on code inspection.
//!
//! The binary holds exactly one `#[test]` so no sibling test thread can
//! allocate inside the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mobilenet::geo::{Country, CountryConfig};
use mobilenet::netsim::pipeline::CollectionStats;
use mobilenet::netsim::{aggregate_batch, DpiClassifier, FoldStrategy, Interface, RecordBatch};
use mobilenet::traffic::TrafficDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Confines counting to the measuring thread: the libtest harness's main
// thread can perform one-time lazy allocations (first blocking park,
// channel internals) at any moment, and under CPU contention those land
// inside the measurement window of the sibling test thread. A const-init
// `Cell` TLS flag is allocation-free to read, so checking it inside the
// allocator cannot recurse.
thread_local! {
    static MEASURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) && MEASURING.with(|m| m.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) && MEASURING.with(|m| m.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on and returns how many heap
/// allocations (including reallocations) it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    MEASURING.with(|m| m.set(true));
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    MEASURING.with(|m| m.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warmed_batch_aggregation_does_not_allocate() {
    let n_head = 20usize;
    let n_tail = 30usize;
    let classifier = DpiClassifier::new(n_head, n_tail, 0.88);
    let country = Country::generate(&CountryConfig::small(), 7);
    let n_communes = country.communes().len() as u32;
    let mut dataset = TrafficDataset::new(&country, n_head, n_tail, 0.3);
    let mut stats = CollectionStats::default();
    let mut rng = StdRng::seed_from_u64(42);

    // A chunk-sized record set mixing head, tail and opaque signatures —
    // every branch of the fold gets exercised inside the window.
    const CHUNK: usize = 4096;
    let rows: Vec<_> = (0..CHUNK)
        .map(|i| {
            let signature = match i % 3 {
                0 => classifier.stamp_head((i % n_head) as u16, &mut rng),
                1 => classifier.stamp_tail((i % n_tail) as u16, &mut rng),
                _ => classifier.stamp_head((i % n_head) as u16, &mut rng),
            };
            (
                if i % 2 == 0 { Interface::Gn } else { Interface::S5S8 },
                (i % 168) as u16,
                0.25 + i as f64 * 0.001,
                0.05 + i as f64 * 0.0003,
                i as u32 % n_communes,
                signature.0,
                i % 17 == 0,
            )
        })
        .collect();

    let mut batch = RecordBatch::with_capacity(CHUNK);
    let fill = |batch: &mut RecordBatch| {
        batch.clear();
        for &(interface, hour, dl, ul, commune, sig, stale) in &rows {
            batch.push_parts(interface, hour, dl, ul, commune, sig, stale);
        }
    };

    // Warm every column and the codes scratch to the chunk size.
    fill(&mut batch);
    aggregate_batch(&mut batch, &classifier, FoldStrategy::Batched, true, &mut dataset, &mut stats);

    let allocs = allocations_in(|| {
        for _ in 0..50 {
            fill(&mut batch);
            aggregate_batch(
                &mut batch,
                &classifier,
                FoldStrategy::Batched,
                true,
                &mut dataset,
                &mut stats,
            );
        }
    });
    assert_eq!(allocs, 0, "warmed batch fill+fold cycle allocated {allocs} times");
    assert!(stats.sessions as usize == 51 * CHUNK);
    assert!(stats.classified_mb > 0.0 && stats.unclassified_mb > 0.0);
}
