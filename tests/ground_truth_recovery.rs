//! Ground-truth recovery: the generator encodes the paper's findings as
//! explicit parameters (peak palettes, urbanization multipliers, Zipf
//! exponents, spatial outliers); these tests verify the *analysis stack*
//! recovers them from the data — the strongest validation available for a
//! measurement-study reproduction without the proprietary dataset.

use std::sync::OnceLock;

use mobilenet::core::peaks::PeakConfig;
use mobilenet::core::ranking::zipf_ranking;
use mobilenet::core::spatial::spatial_correlation;
use mobilenet::core::study::Study;
use mobilenet::core::topical::topical_profiles;
use mobilenet::core::urbanization::urbanization_profiles;
use mobilenet::geo::UsageClass;
use mobilenet::traffic::{Direction, TopicalTime};
use mobilenet::{Pipeline, Scale};

/// Expected-value study: isolates the analysis from sampling noise.
fn expected() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Small)
            .expected()
            .seed(99)
            .run()
            .unwrap()
            .into_study()
    })
}

/// Measured study: the same checks must qualitatively survive the full
/// collection pipeline.
fn measured() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| {
        Pipeline::builder().scale(Scale::Small).seed(99).run().unwrap().into_study()
    })
}

#[test]
fn strong_ground_truth_peaks_are_detected() {
    // Every catalog peak with intensity >= 0.5 should be found by the
    // detector on the expected (noise-free) national series.
    let s = expected();
    let profiles = topical_profiles(s, Direction::Down, &PeakConfig::paper());
    let mut missed = Vec::new();
    for (spec, profile) in s.catalog().head().iter().zip(profiles.iter()) {
        for peak in &spec.peaks {
            if peak.intensity >= 0.5 && !profile.has_peak[peak.time.index()] {
                missed.push(format!("{} @ {}", spec.name, peak.time.label()));
            }
        }
    }
    let total_strong: usize = s
        .catalog()
        .head()
        .iter()
        .flat_map(|spec| spec.peaks.iter())
        .filter(|p| p.intensity >= 0.5)
        .count();
    assert!(
        missed.len() * 5 <= total_strong,
        "missed {}/{} strong ground-truth peaks: {missed:?}",
        missed.len(),
        total_strong
    );
}

#[test]
fn detected_peaks_rarely_fall_off_topical_times() {
    // §4: peaks only appear at seven specific moments. The daily ramp out
    // of the night trough contributes one structural off-topical front per
    // day for services without a morning peak; beyond that, detections off
    // the grid are detector noise, so topical fronts must dominate.
    let s = expected();
    let profiles = topical_profiles(s, Direction::Down, &PeakConfig::paper());
    for p in &profiles {
        let topical: usize = p.front_counts.iter().sum();
        assert!(
            p.off_topical_fronts <= 9 && p.off_topical_fronts < topical + 7,
            "{}: {} off-topical fronts vs {} topical",
            p.name,
            p.off_topical_fronts,
            topical
        );
    }
}

#[test]
fn zipf_exponent_is_recovered_from_the_ranking() {
    // The tail is constructed with s = 1.69 (downlink); the fit on the
    // measured ranking must land nearby.
    let s = measured();
    let fit = zipf_ranking(s).dl_fit.expect("fit");
    assert!(
        (fit.exponent - 1.69).abs() < 0.5,
        "recovered exponent {}",
        fit.exponent
    );
    assert!(fit.r2 > 0.8, "fit quality r² = {}", fit.r2);
}

#[test]
fn designed_outliers_surface_in_the_correlation_analysis() {
    let s = expected();
    let corr = spatial_correlation(s, Direction::Down);
    let order = corr.outlier_order();
    let lowest: Vec<&str> = order[..3].iter().map(|&i| corr.names[i]).collect();
    assert!(lowest.contains(&"Netflix"), "{lowest:?}");
    assert!(lowest.contains(&"iCloud"), "{lowest:?}");
    // And the typical services correlate strongly with each other.
    let youtube = corr.names.iter().position(|n| *n == "YouTube").unwrap();
    let twitter = corr.names.iter().position(|n| *n == "Twitter").unwrap();
    assert!(
        corr.matrix[youtube][twitter] > corr.mean_r2,
        "YouTube–Twitter r² {} below mean {}",
        corr.matrix[youtube][twitter],
        corr.mean_r2
    );
}

#[test]
fn urbanization_multipliers_are_recovered() {
    let s = expected();
    let urb = urbanization_profiles(s, Direction::Down);
    // Per-service rural ratios should rank in the same order as the
    // ground-truth rural multipliers.
    let mut pairs: Vec<(f64, f64)> = s
        .catalog()
        .head()
        .iter()
        .zip(urb.iter())
        .map(|(spec, p)| {
            (
                spec.spatial.class_mult[UsageClass::Rural.index()],
                p.volume_ratio[UsageClass::Rural.index()],
            )
        })
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let recovered: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let r = mobilenet::timeseries::stats::pearson_r(&truth, &recovered);
    assert!(r > 0.9, "rural multiplier recovery r = {r}");
}

#[test]
fn tgv_effect_survives_the_measurement_pipeline() {
    // The rail-aligned ULI model keeps corridor traffic on the corridor;
    // the measured TGV ratio must stay clearly above rural.
    let s = measured();
    let urb = urbanization_profiles(s, Direction::Down);
    let means = mobilenet::core::urbanization::mean_volume_ratios(&urb);
    assert!(
        means[UsageClass::Tgv.index()] > 1.6 * means[UsageClass::Rural.index()],
        "TGV {} vs rural {}",
        means[UsageClass::Tgv.index()],
        means[UsageClass::Rural.index()]
    );
}

#[test]
fn student_services_show_their_morning_break() {
    let s = expected();
    let profiles = topical_profiles(s, Direction::Down, &PeakConfig::paper());
    let with_break: Vec<&str> = profiles
        .iter()
        .filter(|p| p.has_peak[TopicalTime::MorningBreak.index()])
        .map(|p| p.name)
        .collect();
    for name in ["SnapChat", "Instagram", "Facebook", "Twitter"] {
        assert!(
            with_break.contains(&name),
            "{name} should peak at the morning break; found {with_break:?}"
        );
    }
}
