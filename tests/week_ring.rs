//! Week-ring expiry contracts (DESIGN §3.16).
//!
//! What this file pins:
//!
//! * **Per-week bit-identity:** a multi-week live run folds week `w`
//!   from the derived seed `week_seed(seed, w)`, and the snapshot after
//!   each week closes is bit-identical to a *batch* collection over the
//!   equivalent folded records — `collect_with_options` on the same
//!   model at that week's seed (week 0 = the base seed, so a one-week
//!   run keeps the original contract);
//! * **Bounded memory:** a ≥2-week run holds peak resident records at
//!   or below `chunk_size × workers` (the one-week budget — the ring
//!   retires each expired week instead of accumulating it), the
//!   snapshot's dataset is exactly one week's shape regardless of week
//!   count, and the cumulative accounting counts the folded weeks in
//!   `IngestStats::cycles`;
//! * **Roll-over semantics:** the `(week, watermark_hour)` pair resets
//!   at each roll, `complete` holds only once the *final* scheduled
//!   week closes, and expired weeks' collection diagnostics are retired
//!   from the snapshot.

use mobilenet::netsim::collect_with_options;
use mobilenet::par::set_thread_override;
use mobilenet::serve::{week_seed, LiveState};
use mobilenet::{FaultPlan, Scale, DEFAULT_SEED};

/// The batch reference CSV for the small study's model at `seed`,
/// collected at capture seed `capture_seed` (they differ for week ≥ 1).
fn batch_reference(
    faults: &FaultPlan,
    model_seed: u64,
    capture_seed: u64,
) -> (String, mobilenet::netsim::CollectionStats) {
    let config = Scale::Small.config().with_faults(faults.clone());
    let model = config.demand_model(model_seed);
    let out = collect_with_options(&model, &config.netsim, &config.collect_options(), capture_seed)
        .expect("batch collection succeeds");
    (out.dataset.to_csv(), out.stats)
}

#[test]
fn weekly_snapshots_are_bit_identical_to_batch_runs_over_folded_records() {
    const WEEKS: usize = 3;
    for faults in [FaultPlan::none(), FaultPlan::degraded(3)] {
        for threads in [1usize, 2, 8] {
            set_thread_override(Some(threads));
            let config = Scale::Small.config().with_faults(faults.clone());
            let state = LiveState::from_config(&config, DEFAULT_SEED).expect("valid config");
            state.set_weeks(WEEKS).expect("weeks scheduled before start");
            for week in 0..WEEKS {
                state.run_next_week().expect("week ingestion succeeds");
                let snap = state.snapshot();
                assert_eq!(snap.week, week);
                assert_eq!(snap.weeks, WEEKS);
                assert_eq!(
                    snap.watermark_hour,
                    mobilenet::traffic::HOURS_PER_WEEK,
                    "week {week} fully observed"
                );
                assert_eq!(snap.complete, week + 1 == WEEKS, "complete only at the final week");
                let capture_seed = week_seed(DEFAULT_SEED, week);
                assert_eq!(state.week_seed(week), capture_seed);
                let (reference_csv, reference_stats) =
                    batch_reference(&faults, DEFAULT_SEED, capture_seed);
                assert!(
                    snap.dataset.to_csv() == reference_csv,
                    "week {week} snapshot differs from its batch reference \
                     at {threads} threads (faults active: {})",
                    !faults.is_none()
                );
                // Diagnostics describe only the ring week: expired weeks
                // were retired at roll-over.
                assert_eq!(snap.stats.sessions, reference_stats.sessions, "week {week}");
                assert_eq!(snap.stats.gn_records, reference_stats.gn_records, "week {week}");
                assert_eq!(
                    snap.stats.faults.lost_total(),
                    reference_stats.faults.lost_total(),
                    "week {week}"
                );
            }
            // The scheduled weeks are consumed: a further week is an error.
            assert!(state.run_next_week().is_err());
        }
    }
    set_thread_override(None);
}

#[test]
fn multi_week_runs_hold_one_week_of_memory() {
    const WEEKS: usize = 4;
    set_thread_override(Some(2));

    // One-week baseline on the same config: its snapshot fixes the
    // week-count-independent dataset shape.
    let config = Scale::Small.config();
    let single = LiveState::from_config(&config, DEFAULT_SEED).expect("valid config");
    single.run_ingestion().expect("single-week ingestion succeeds");
    let single_snap = single.snapshot();
    let single_csv_bytes = single_snap.dataset.to_csv().len();
    let single_rows = single_snap.dataset.to_csv().lines().count();

    let state = LiveState::from_config(&config, DEFAULT_SEED).expect("valid config");
    let ingest = state.run_weeks(WEEKS).expect("multi-week ingestion succeeds");

    // Cumulative accounting: every week folded, counted, and bounded by
    // the one-week residency budget — the ring never holds two weeks.
    assert_eq!(ingest.cycles, WEEKS as u64, "each week folded through the ring");
    assert!(ingest.records > single_snap.ingest.records, "later weeks kept streaming");
    assert!(
        ingest.peak_resident_records <= ingest.resident_budget(),
        "peak resident {} exceeds the one-week budget {} over {WEEKS} weeks",
        ingest.peak_resident_records,
        ingest.resident_budget()
    );
    assert_eq!(ingest.resident_budget(), single_snap.ingest.resident_budget());

    // Snapshot memory is independent of week count: the dense dataset
    // has exactly the single-week shape (same commune × hour grid, same
    // row count), not WEEKS× it.
    let snap = state.snapshot();
    assert!(snap.complete);
    assert_eq!(snap.week, WEEKS - 1);
    assert_eq!(snap.dataset.to_csv().lines().count(), single_rows);
    // Byte size may differ (different values print differently) but only
    // within the same order — never by a ×WEEKS blowup.
    let final_bytes = snap.dataset.to_csv().len();
    assert!(
        final_bytes < single_csv_bytes * 2,
        "final snapshot {final_bytes} B vs one-week {single_csv_bytes} B"
    );

    // And the final week equals its batch reference (the ring holds one
    // week, not a blend).
    let (reference_csv, _) = {
        let model = config.demand_model(DEFAULT_SEED);
        let out = collect_with_options(
            &model,
            &config.netsim,
            &config.collect_options(),
            week_seed(DEFAULT_SEED, WEEKS - 1),
        )
        .expect("batch collection succeeds");
        (out.dataset.to_csv(), out.stats)
    };
    assert!(snap.dataset.to_csv() == reference_csv, "final ring week equals its batch run");
    set_thread_override(None);
}
