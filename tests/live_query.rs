//! Live query service contracts (DESIGN §3.14).
//!
//! What this file pins:
//!
//! * a snapshot taken after live ingestion completes is **bit-identical**
//!   to the batch pipeline on the same `(config, seed)` — at 1, 2 and 8
//!   threads, with and without an injected fault plan;
//! * mid-stream snapshots are consistent and monotone: version, watermark
//!   and folded session counts never go backwards, and the final
//!   snapshot converges to the batch output;
//! * the TCP server answers well-framed responses to at least four
//!   concurrent clients **while ingestion is running**, and a post-ingest
//!   `DATASET` response carries exactly the batch CSV.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

use mobilenet::par::set_thread_override;
use mobilenet::serve::LiveState;
use mobilenet::{FaultPlan, Pipeline, Scale, DEFAULT_SEED};

/// The batch reference for a small study with the given fault plan.
fn batch_csv(faults: FaultPlan, seed: u64) -> (String, mobilenet::netsim::CollectionStats) {
    let run = Pipeline::builder()
        .scale(Scale::Small)
        .seed(seed)
        .faults(faults)
        .run()
        .expect("valid configuration");
    let stats = run.collection_stats().expect("measured").clone();
    (run.dataset().to_csv(), stats)
}

/// A fully-ingested live state for the same study.
fn live_state(faults: FaultPlan, seed: u64) -> std::sync::Arc<LiveState> {
    let config = Scale::Small.config().with_faults(faults);
    LiveState::from_config(&config, seed).expect("valid configuration")
}

#[test]
fn complete_snapshots_are_bit_identical_to_batch_collection() {
    // All thread counts run inside one #[test] so the process-global
    // override is never raced within this contract.
    for faults in [FaultPlan::none(), FaultPlan::degraded(3)] {
        set_thread_override(Some(1));
        let (reference_csv, reference_stats) = batch_csv(faults.clone(), DEFAULT_SEED);
        for threads in [1usize, 2, 8] {
            set_thread_override(Some(threads));
            let state = live_state(faults.clone(), DEFAULT_SEED);
            let ingest = state.run_ingestion().expect("live ingestion succeeds");
            assert!(ingest.records > 0);
            assert!(
                ingest.peak_resident_records <= ingest.resident_budget(),
                "peak {} exceeds budget {} at {threads} threads",
                ingest.peak_resident_records,
                ingest.resident_budget()
            );
            let snap = state.snapshot();
            assert!(snap.complete, "all shards closed");
            assert_eq!(snap.watermark_hour, mobilenet::traffic::HOURS_PER_WEEK);
            assert!(
                snap.dataset.to_csv() == reference_csv,
                "live dataset differs from batch at {threads} threads"
            );
            assert_eq!(snap.stats.sessions, reference_stats.sessions);
            assert_eq!(snap.stats.gn_records, reference_stats.gn_records);
            assert_eq!(snap.stats.s5s8_records, reference_stats.s5s8_records);
            assert_eq!(snap.stats.faults.lost_total(), reference_stats.faults.lost_total());
            assert_eq!(snap.ingest.records, ingest.records);
        }
    }
    set_thread_override(None);
}

#[test]
fn mid_stream_snapshots_are_monotone_and_converge() {
    let (reference_csv, _) = batch_csv(FaultPlan::none(), DEFAULT_SEED);
    let state = live_state(FaultPlan::none(), DEFAULT_SEED);
    let ingest_state = state.clone();
    let ingest = std::thread::spawn(move || ingest_state.run_ingestion());

    let mut last_version = 0u64;
    let mut last_watermark = 0usize;
    let mut last_sessions = 0u64;
    let mut observed_partial = false;
    while !state.complete() {
        let snap = state.snapshot();
        assert!(snap.version >= last_version, "version went backwards");
        assert!(snap.watermark_hour >= last_watermark, "watermark went backwards");
        assert!(snap.stats.sessions >= last_sessions, "folded sessions went backwards");
        if !snap.complete {
            observed_partial = true;
        }
        last_version = snap.version;
        last_watermark = snap.watermark_hour;
        last_sessions = snap.stats.sessions;
    }
    ingest.join().expect("ingestion thread").expect("live ingestion succeeds");

    let final_snap = state.snapshot();
    assert!(final_snap.complete);
    assert!(final_snap.version >= last_version);
    assert!(final_snap.watermark_hour == mobilenet::traffic::HOURS_PER_WEEK);
    assert!(final_snap.dataset.to_csv() == reference_csv, "live result converges to batch");
    // The whole point of querying mid-stream: at least one snapshot must
    // have been taken before completion (small scale still folds many
    // chunks, so the polling loop always lands inside the run).
    assert!(observed_partial, "never observed an in-flight snapshot");
    // Snapshot caching: a repeated query at an unchanged version returns
    // the same Arc, not a recomputed merge.
    let again = state.snapshot();
    assert!(std::sync::Arc::ptr_eq(&final_snap, &again) || again.version >= final_snap.version);
}

/// Sends one protocol line and reads one framed response.
fn request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> Result<Vec<String>, String> {
    writeln!(writer, "{line}").expect("write request");
    writer.flush().expect("flush request");
    let mut head = String::new();
    reader.read_line(&mut head).expect("read response head");
    let head = head.trim_end();
    if let Some(n) = head.strip_prefix("OK ") {
        let n: usize = n.parse().expect("well-formed frame count");
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            let mut l = String::new();
            reader.read_line(&mut l).expect("read body line");
            body.push(l.trim_end().to_string());
        }
        Ok(body)
    } else if let Some(msg) = head.strip_prefix("ERR ") {
        Err(msg.to_string())
    } else {
        panic!("malformed response head {head:?}");
    }
}

#[test]
fn server_answers_concurrent_clients_during_ingestion() {
    // The HEALTH verb surfaces obs metrics; the registry must be live.
    mobilenet::obs::set_enabled(Some(true));
    let (reference_csv, _) = batch_csv(FaultPlan::none(), DEFAULT_SEED);
    let state = live_state(FaultPlan::none(), DEFAULT_SEED);
    let mut server =
        mobilenet::spawn_server(state.clone(), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let ingest_state = state.clone();
    let ingest = std::thread::spawn(move || ingest_state.run_ingestion());

    // Four clients hammer the server while the week streams. Each checks
    // its responses are well-framed and internally consistent.
    let clients: Vec<_> = (0..4)
        .map(|client| {
            let state = state.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut rounds = 0u32;
                while !(state.complete() && rounds >= 3) {
                    let rank = request(&mut reader, &mut writer, "RANK dl 5")
                        .expect("ranking answers");
                    assert!(rank.len() <= 5);
                    let watermark = request(&mut reader, &mut writer, "WATERMARK")
                        .expect("watermark answers");
                    assert_eq!(watermark.len(), 1);
                    assert!(watermark[0].starts_with("hour "));
                    let stats =
                        request(&mut reader, &mut writer, "STATS").expect("stats answers");
                    assert!(stats.iter().any(|l| l.starts_with("records ")));
                    if client == 0 {
                        let health =
                            request(&mut reader, &mut writer, "HEALTH").expect("health answers");
                        assert!(
                            health.iter().any(|l| l.contains("serve.queries")),
                            "health endpoint exposes serve.* metrics: {health:?}"
                        );
                    }
                    // Unknown verbs degrade to ERR, not a wedged stream.
                    let err = request(&mut reader, &mut writer, "NOPE");
                    assert!(err.is_err());
                    rounds += 1;
                }
                writeln!(writer, "QUIT").expect("quit");
            })
        })
        .collect();

    for c in clients {
        c.join().expect("client thread");
    }
    ingest.join().expect("ingestion thread").expect("live ingestion succeeds");

    // Post-ingest, the wire-format dataset is exactly the batch CSV.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let body = request(&mut reader, &mut writer, "DATASET").expect("dataset answers");
    let mut wire = body.join("\n");
    wire.push('\n');
    assert!(wire == reference_csv, "DATASET response is the batch export");
    let watermark = request(&mut reader, &mut writer, "WATERMARK").expect("watermark");
    assert!(watermark[0].contains("complete true"));

    // SHUTDOWN stops the accept loop; shutdown() is then idempotent.
    let resp = request(&mut reader, &mut writer, "SHUTDOWN").expect("shutdown acks");
    assert!(resp.is_empty());
    server.shutdown();
}

#[test]
fn protocol_edges_err_and_never_panic() {
    // Out-of-range operands and hostile framing must all degrade to ERR
    // (or a drop) on the same connection — never a panicked client
    // thread or an unboundedly growing line buffer.
    mobilenet::obs::set_enabled(Some(true));
    let state = live_state(FaultPlan::none(), DEFAULT_SEED);
    state.run_ingestion().expect("live ingestion succeeds");
    let mut server =
        mobilenet::spawn_server(state.clone(), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    let head_len = state.catalog().head().len();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // RANK bounds: k = 0 and k > |head| are protocol errors, the bounds
    // themselves are fine.
    let err = request(&mut reader, &mut writer, "RANK dl 0").expect_err("k=0 is rejected");
    assert!(err.contains("at least 1"), "unexpected message {err:?}");
    let err = request(&mut reader, &mut writer, &format!("RANK dl {}", head_len + 1))
        .expect_err("k>n is rejected");
    assert!(err.contains("out of range"), "unexpected message {err:?}");
    let full = request(&mut reader, &mut writer, &format!("RANK dl {head_len}"))
        .expect("k=n answers");
    assert_eq!(full.len(), head_len);
    // An absurd k parses as usize but is out of range; a non-numeric k
    // fails the parse. Both are ERRs, not panics.
    assert!(request(&mut reader, &mut writer, "RANK dl 18446744073709551615").is_err());
    assert!(request(&mut reader, &mut writer, "RANK dl twenty").is_err());

    // SERIES bounds: service index past the head is rejected, the last
    // valid index answers.
    let err = request(&mut reader, &mut writer, &format!("SERIES dl {head_len}"))
        .expect_err("service>=n is rejected");
    assert!(err.contains("out of range"), "unexpected message {err:?}");
    assert!(request(&mut reader, &mut writer, &format!("SERIES dl {}", head_len - 1)).is_ok());

    // A no-newline flood far past the line cap: the server drains it,
    // answers one ERR, and the connection keeps working.
    let flood = vec![b'A'; 16 * mobilenet::serve::MAX_LINE_BYTES];
    writer.write_all(&flood).expect("write flood");
    writer.write_all(b"\n").expect("terminate flood");
    writer.flush().expect("flush flood");
    let mut head = String::new();
    reader.read_line(&mut head).expect("flood response");
    assert!(head.starts_with("ERR line too long"), "unexpected response {head:?}");
    let watermark =
        request(&mut reader, &mut writer, "WATERMARK").expect("connection survives the flood");
    assert!(watermark[0].contains("complete true"));

    // The drop is counted.
    let snapshot = mobilenet::obs::snapshot();
    assert_eq!(snapshot.counter("serve.dropped_lines"), Some(1));

    writeln!(writer, "QUIT").expect("quit");
    server.shutdown();
}

#[test]
fn shutdown_disconnects_idle_clients() {
    // An idle client holds no request open; shutdown() must still
    // propagate — the read timeout wakes the client thread, it observes
    // the stop flag and closes the socket, so the peer sees EOF instead
    // of a connection pinned forever.
    let state = live_state(FaultPlan::none(), DEFAULT_SEED);
    state.run_ingestion().expect("live ingestion succeeds");
    let mut server =
        mobilenet::spawn_server(state, "127.0.0.1:0").expect("bind ephemeral port");
    let idle = TcpStream::connect(server.addr()).expect("connect");
    idle.set_read_timeout(Some(std::time::Duration::from_secs(10))).expect("timeout");
    // Give the accept loop a moment to hand the connection off.
    let mut probe = BufReader::new(idle.try_clone().expect("clone"));
    server.shutdown();
    let mut line = String::new();
    let n = probe.read_line(&mut line).expect("idle client sees EOF, not a timeout");
    assert_eq!(n, 0, "server closed the idle connection after shutdown");
}
