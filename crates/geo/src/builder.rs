//! The country generation algorithm.
//!
//! Generation proceeds in six deterministic stages, each seeded from the
//! caller's seed:
//!
//! 1. **Tessellation** — commune centroids on a jittered lattice covering
//!    the plane (France's communes average ≈ 16 km², i.e. a ≈ 4 km pitch).
//! 2. **Cities** — `n_cities` centres placed with a minimum-separation
//!    rule; populations follow a Zipf law in rank (Zipf's law for cities).
//! 3. **Population field** — each city spreads its population over nearby
//!    communes with exponential distance decay; a uniform (log-normally
//!    jittered) rural floor covers the rest.
//! 4. **Urbanization** — INSEE-like classification by population density.
//! 5. **Rail** — hub-and-spoke TGV lines between the largest cities; rural
//!    communes within the corridor width are flagged.
//! 6. **Coverage** — Bernoulli 3G/4G coverage with class-dependent rates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::commune::{Commune, CommuneId, Coverage, Urbanization};
use crate::config::CountryConfig;
use crate::country::{City, Country};
use crate::index::SpatialIndex;
use crate::point::Point;
use crate::rail::{hub_and_spoke, TgvLine};

/// Generates a [`Country`]; see the module docs for the algorithm.
pub(crate) fn generate(config: &CountryConfig, seed: u64) -> Country {
    config.validate().expect("invalid CountryConfig");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_6269_6c65_6e65); // "mobilene"

    let centroids = tessellate(config, &mut rng);
    let index = SpatialIndex::build(&centroids);
    let cities = place_cities(config, &centroids, &mut rng);
    let populations = spread_population(config, &centroids, &cities, &index, &mut rng);
    let area = config.mean_commune_area();

    // Stage 4: urbanization by density.
    let urbanization: Vec<Urbanization> = populations
        .iter()
        .map(|&p| {
            let density = p as f64 / area;
            if density >= config.urban_density_threshold {
                Urbanization::Urban
            } else if density >= config.semi_urban_density_threshold {
                Urbanization::SemiUrban
            } else {
                Urbanization::Rural
            }
        })
        .collect();

    // Stage 5: rail corridors.
    let hubs: Vec<Point> =
        cities.iter().take(config.tgv_city_count).map(|c| c.center).collect();
    let tgv_lines: Vec<TgvLine> = hub_and_spoke(&hubs);
    let on_corridor: Vec<bool> = centroids
        .iter()
        .map(|p| tgv_lines.iter().any(|l| l.covers(p, config.tgv_corridor_km)))
        .collect();

    // Stage 6: coverage.
    let communes: Vec<Commune> = (0..centroids.len())
        .map(|i| {
            let class_idx = match (urbanization[i], on_corridor[i]) {
                (Urbanization::Rural, true) => 3,
                (Urbanization::Urban, _) => 0,
                (Urbanization::SemiUrban, _) => 1,
                (Urbanization::Rural, false) => 2,
            };
            let has_3g = rng.gen::<f64>() < config.coverage_3g[class_idx];
            let has_4g = rng.gen::<f64>() < config.coverage_4g[class_idx];
            Commune {
                id: CommuneId(i as u32),
                centroid: centroids[i],
                area_km2: area,
                population: populations[i],
                urbanization: urbanization[i],
                on_tgv_corridor: on_corridor[i],
                coverage: Coverage { has_3g, has_4g },
            }
        })
        .collect();

    Country { config: config.clone(), communes, cities, tgv_lines, index }
}

/// Stage 1: jittered-lattice tessellation.
fn tessellate(config: &CountryConfig, rng: &mut StdRng) -> Vec<Point> {
    let n = config.n_communes;
    let aspect = config.width_km / config.height_km;
    let nx = ((n as f64 * aspect).sqrt().round() as usize).max(1);
    let ny = n.div_ceil(nx);
    let step_x = config.width_km / nx as f64;
    let step_y = config.height_km / ny as f64;
    let mut points = Vec::with_capacity(n);
    'outer: for gy in 0..ny {
        for gx in 0..nx {
            if points.len() == n {
                break 'outer;
            }
            let jx = rng.gen_range(-0.35..0.35) * step_x;
            let jy = rng.gen_range(-0.35..0.35) * step_y;
            points.push(Point::new(
                (gx as f64 + 0.5) * step_x + jx,
                (gy as f64 + 0.5) * step_y + jy,
            ));
        }
    }
    points
}

/// Stage 2: city placement with minimum separation, Zipf populations.
fn place_cities(config: &CountryConfig, centroids: &[Point], rng: &mut StdRng) -> Vec<City> {
    let min_sep = (config.width_km.min(config.height_km)) / (config.n_cities as f64).sqrt() / 1.5;
    let mut centers: Vec<Point> = Vec::with_capacity(config.n_cities);
    let margin_x = config.width_km * 0.06;
    let margin_y = config.height_km * 0.06;
    for _ in 0..config.n_cities {
        let mut placed = None;
        for _attempt in 0..200 {
            let cand = Point::new(
                rng.gen_range(margin_x..config.width_km - margin_x),
                rng.gen_range(margin_y..config.height_km - margin_y),
            );
            if centers.iter().all(|c| c.distance(&cand) >= min_sep) {
                placed = Some(cand);
                break;
            }
        }
        // After many failures accept any position: separation is a
        // preference, not an invariant.
        centers.push(placed.unwrap_or_else(|| {
            Point::new(
                rng.gen_range(margin_x..config.width_km - margin_x),
                rng.gen_range(margin_y..config.height_km - margin_y),
            )
        }));
    }
    // Snap each city to the nearest commune centroid so a city is always a
    // real place.
    let idx = SpatialIndex::build(centroids);
    for c in &mut centers {
        *c = centroids[idx.nearest(c)];
    }

    let city_pop = (config.total_population as f64 * config.city_population_share).round();
    let mut weights: Vec<f64> =
        (1..=config.n_cities).map(|r| (r as f64).powf(-config.city_zipf_exponent)).collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    centers
        .into_iter()
        .enumerate()
        .map(|(rank, center)| City {
            center,
            population: (city_pop * weights[rank]).round() as u64,
            rank,
        })
        .collect()
}

/// Stage 3: distance-decay population spreading plus the rural floor.
fn spread_population(
    config: &CountryConfig,
    centroids: &[Point],
    cities: &[City],
    index: &SpatialIndex,
    rng: &mut StdRng,
) -> Vec<u64> {
    let n = centroids.len();
    let mut field = vec![0f64; n];

    // Rural floor with log-normal jitter (σ = 0.6 keeps the jitter mild).
    let rural_total = config.total_population as f64 * (1.0 - config.city_population_share);
    let per_commune = rural_total / n as f64;
    let sigma = 0.6f64;
    let mu = -sigma * sigma / 2.0; // unit-mean log-normal
    let mut floor_sum = 0.0;
    for f in field.iter_mut() {
        // Box–Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let jitter = (mu + sigma * z).exp();
        *f = per_commune * jitter;
        floor_sum += *f;
    }
    // Renormalize the floor so jitter does not change the rural total.
    if floor_sum > 0.0 {
        let k = rural_total / floor_sum;
        for f in field.iter_mut() {
            *f *= k;
        }
    }

    // City halos: exponential decay with a radius shrinking as the cube
    // root of relative city size (bigger cities spread farther).
    let largest = cities.first().map(|c| c.population.max(1)).unwrap_or(1);
    for city in cities {
        let rel = city.population as f64 / largest as f64;
        let halo = (config.city_halo_km * rel.cbrt()).max(config.mean_commune_area().sqrt());
        let reach = halo * 5.0;
        let members = index.within(&city.center, reach);
        let mut weights = Vec::with_capacity(members.len());
        let mut wsum = 0.0;
        for &m in &members {
            let d = centroids[m].distance(&city.center);
            let w = (-d / halo).exp();
            weights.push(w);
            wsum += w;
        }
        if wsum <= 0.0 {
            continue;
        }
        for (&m, &w) in members.iter().zip(weights.iter()) {
            field[m] += city.population as f64 * w / wsum;
        }
    }

    field.into_iter().map(|f| f.round().max(0.0) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tessellation_fills_the_plane() {
        let cfg = CountryConfig::small();
        let mut rng = StdRng::seed_from_u64(1);
        let pts = tessellate(&cfg, &mut rng);
        assert_eq!(pts.len(), cfg.n_communes);
        for p in &pts {
            assert!(p.x > -10.0 && p.x < cfg.width_km + 10.0);
            assert!(p.y > -10.0 && p.y < cfg.height_km + 10.0);
        }
        // Lattice points must not collide.
        let mut min_d = f64::INFINITY;
        for i in 0..50 {
            for j in (i + 1)..50 {
                min_d = min_d.min(pts[i].distance(&pts[j]));
            }
        }
        assert!(min_d > 0.1, "centroids too close: {min_d}");
    }

    #[test]
    fn city_populations_follow_zipf_ranks() {
        let cfg = CountryConfig::small();
        let mut rng = StdRng::seed_from_u64(2);
        let pts = tessellate(&cfg, &mut rng);
        let cities = place_cities(&cfg, &pts, &mut rng);
        assert_eq!(cities.len(), cfg.n_cities);
        for w in cities.windows(2) {
            assert!(w[0].population >= w[1].population);
        }
        // Rank-1 city is within 2^zipf of twice rank-2 (Zipf shape).
        let ratio = cities[0].population as f64 / cities[1].population as f64;
        assert!(ratio > 1.5 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn population_field_conserves_total() {
        let cfg = CountryConfig::small();
        let mut rng = StdRng::seed_from_u64(3);
        let pts = tessellate(&cfg, &mut rng);
        let index = SpatialIndex::build(&pts);
        let cities = place_cities(&cfg, &pts, &mut rng);
        let pops = spread_population(&cfg, &pts, &cities, &index, &mut rng);
        let total: u64 = pops.iter().sum();
        let err = (total as f64 - cfg.total_population as f64).abs()
            / cfg.total_population as f64;
        assert!(err < 0.01, "total {total}");
    }

    #[test]
    fn population_decays_away_from_the_capital() {
        let cfg = CountryConfig::small();
        let country = generate(&cfg, 5);
        let capital = &country.cities()[0];
        let near = country.commune_at(&capital.center);
        let near_pop = country.commune(near).population;
        // The commune hosting the capital should hold far more people than
        // the median commune.
        let mut pops: Vec<u64> = country.communes().iter().map(|c| c.population).collect();
        pops.sort_unstable();
        let median = pops[pops.len() / 2];
        assert!(near_pop > 10 * median, "near {near_pop}, median {median}");
    }
}
