//! The generated country: communes, cities, rail network, coverage.

use crate::builder;
use crate::commune::{Commune, CommuneId, UsageClass};
use crate::config::CountryConfig;
use crate::index::SpatialIndex;
use crate::point::Point;
use crate::rail::TgvLine;

/// A city seed of the population field.
#[derive(Debug, Clone)]
pub struct City {
    /// Centre on the country plane.
    pub center: Point,
    /// Population assigned to the city's halo.
    pub population: u64,
    /// Rank by population (0 = largest, the "capital").
    pub rank: usize,
}

/// A fully generated synthetic country.
///
/// Construction is deterministic in `(config, seed)`; all collections are
/// immutable after generation.
#[derive(Debug, Clone)]
pub struct Country {
    pub(crate) config: CountryConfig,
    pub(crate) communes: Vec<Commune>,
    pub(crate) cities: Vec<City>,
    pub(crate) tgv_lines: Vec<TgvLine>,
    pub(crate) index: SpatialIndex,
}

impl Country {
    /// Generates a country from a configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CountryConfig::validate`].
    pub fn generate(config: &CountryConfig, seed: u64) -> Self {
        builder::generate(config, seed)
    }

    /// The configuration the country was generated from.
    pub fn config(&self) -> &CountryConfig {
        &self.config
    }

    /// All communes, indexable by [`CommuneId::index`].
    pub fn communes(&self) -> &[Commune] {
        &self.communes
    }

    /// A commune by id.
    pub fn commune(&self, id: CommuneId) -> &Commune {
        &self.communes[id.index()]
    }

    /// City seeds, ordered by decreasing population.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// High-speed rail lines.
    pub fn tgv_lines(&self) -> &[TgvLine] {
        &self.tgv_lines
    }

    /// Total resident population over all communes.
    pub fn total_population(&self) -> u64 {
        self.communes.iter().map(|c| c.population).sum()
    }

    /// The commune whose centroid is nearest to `p`.
    pub fn commune_at(&self, p: &Point) -> CommuneId {
        CommuneId(self.index.nearest(p) as u32)
    }

    /// Communes whose centroids lie within `radius_km` of `p`.
    pub fn communes_within(&self, p: &Point, radius_km: f64) -> Vec<CommuneId> {
        self.index.within(p, radius_km).into_iter().map(|i| CommuneId(i as u32)).collect()
    }

    /// Number of communes in each usage class, indexed by
    /// [`UsageClass::index`].
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for c in &self.communes {
            counts[c.usage_class().index()] += 1;
        }
        counts
    }

    /// Population in each usage class, indexed by [`UsageClass::index`].
    pub fn class_populations(&self) -> [u64; 4] {
        let mut pops = [0u64; 4];
        for c in &self.communes {
            pops[c.usage_class().index()] += c.population;
        }
        pops
    }

    /// Ids of communes in the given usage class.
    pub fn communes_in_class(&self, class: UsageClass) -> Vec<CommuneId> {
        self.communes
            .iter()
            .filter(|c| c.usage_class() == class)
            .map(|c| c.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commune::Urbanization;

    fn small_country() -> Country {
        Country::generate(&CountryConfig::small(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Country::generate(&CountryConfig::small(), 99);
        let b = Country::generate(&CountryConfig::small(), 99);
        assert_eq!(a.communes.len(), b.communes.len());
        for (ca, cb) in a.communes.iter().zip(b.communes.iter()) {
            assert_eq!(ca.population, cb.population);
            assert_eq!(ca.urbanization, cb.urbanization);
            assert_eq!(ca.on_tgv_corridor, cb.on_tgv_corridor);
            assert_eq!(ca.coverage, cb.coverage);
            assert_eq!(ca.centroid, cb.centroid);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Country::generate(&CountryConfig::small(), 1);
        let b = Country::generate(&CountryConfig::small(), 2);
        let same = a
            .communes
            .iter()
            .zip(b.communes.iter())
            .filter(|(x, y)| x.population == y.population)
            .count();
        assert!(same < a.communes.len(), "seeds must change the population field");
    }

    #[test]
    fn population_is_conserved() {
        let cfg = CountryConfig::small();
        let country = Country::generate(&cfg, 3);
        let total = country.total_population();
        let want = cfg.total_population;
        let err = (total as f64 - want as f64).abs() / want as f64;
        assert!(err < 0.01, "population drifted: {total} vs {want}");
    }

    #[test]
    fn all_classes_are_present() {
        let counts = small_country().class_counts();
        for (i, &n) in counts.iter().enumerate() {
            assert!(n > 0, "usage class {i} is empty");
        }
        // Rural communes dominate the count, as in France.
        assert!(counts[2] > counts[0], "rural should outnumber urban: {counts:?}");
    }

    #[test]
    fn urban_density_exceeds_rural_density() {
        let country = small_country();
        let mean_density = |urb: Urbanization| {
            let ds: Vec<f64> = country
                .communes()
                .iter()
                .filter(|c| c.urbanization == urb)
                .map(|c| c.density())
                .collect();
            ds.iter().sum::<f64>() / ds.len() as f64
        };
        assert!(mean_density(Urbanization::Urban) > 4.0 * mean_density(Urbanization::Rural));
    }

    #[test]
    fn tgv_class_lies_on_a_corridor() {
        let country = small_country();
        for id in country.communes_in_class(UsageClass::Tgv) {
            let c = country.commune(id);
            let d = country
                .tgv_lines()
                .iter()
                .map(|l| l.distance_to(&c.centroid))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= country.config().tgv_corridor_km + 1e-9);
            assert_eq!(c.urbanization, Urbanization::Rural);
        }
    }

    #[test]
    fn coverage_has_urban_bias() {
        let country = Country::generate(&CountryConfig::medium(), 11);
        let rate_4g = |class: UsageClass| {
            let ids = country.communes_in_class(class);
            let covered =
                ids.iter().filter(|id| country.commune(**id).coverage.has_4g).count();
            covered as f64 / ids.len() as f64
        };
        assert!(rate_4g(UsageClass::Urban) > rate_4g(UsageClass::Rural) + 0.2);
    }

    #[test]
    fn commune_at_returns_nearest_centroid() {
        let country = small_country();
        for id in [0usize, 17, 311, 999] {
            let c = &country.communes()[id.min(country.communes().len() - 1)];
            assert_eq!(country.commune_at(&c.centroid), c.id);
        }
    }

    #[test]
    fn class_populations_sum_to_total() {
        let country = small_country();
        let sum: u64 = country.class_populations().iter().sum();
        assert_eq!(sum, country.total_population());
    }

    #[test]
    fn city_ranks_are_ordered_by_population() {
        let country = small_country();
        let cities = country.cities();
        for w in cities.windows(2) {
            assert!(w[0].population >= w[1].population);
        }
        for (i, c) in cities.iter().enumerate() {
            assert_eq!(c.rank, i);
        }
    }
}
