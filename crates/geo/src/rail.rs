//! High-speed (TGV) rail corridors.
//!
//! §5 of the paper singles out rural communes crossed by a high-speed line
//! as a distinct usage class: their per-subscriber demand is **twice or
//! more** the urban level (train passengers dwarf the few residents in the
//! per-user normalization) and their temporal dynamics follow train
//! schedules instead of resident rhythms. The maps of Figure 9 show the
//! Paris–Lyon–Marseille artery glowing. Here a line is a polyline between
//! city centres, and corridor membership is a distance test.

use crate::point::Point;

/// A high-speed rail line as a polyline of waypoints (city centres).
#[derive(Debug, Clone)]
pub struct TgvLine {
    /// Ordered waypoints of the line.
    pub waypoints: Vec<Point>,
}

impl TgvLine {
    /// Creates a line; needs at least two waypoints.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two waypoints are supplied.
    pub fn new(waypoints: Vec<Point>) -> Self {
        assert!(waypoints.len() >= 2, "a rail line needs at least two waypoints");
        TgvLine { waypoints }
    }

    /// Minimum distance from `p` to any segment of the line, km.
    pub fn distance_to(&self, p: &Point) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| p.distance_to_segment(&w[0], &w[1]))
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether `p` lies within `corridor_km` of the line.
    pub fn covers(&self, p: &Point, corridor_km: f64) -> bool {
        self.distance_to(p) <= corridor_km
    }

    /// Total length of the polyline, km.
    pub fn length_km(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Unit tangent of the segment closest to `p` — the local direction of
    /// travel. Used to displace train passengers' ULI fixes *along* the
    /// track rather than isotropically.
    pub fn direction_at(&self, p: &Point) -> (f64, f64) {
        let mut best = (f64::INFINITY, (1.0, 0.0));
        for w in self.waypoints.windows(2) {
            let d = p.distance_to_segment(&w[0], &w[1]);
            if d < best.0 {
                let dx = w[1].x - w[0].x;
                let dy = w[1].y - w[0].y;
                let len = (dx * dx + dy * dy).sqrt().max(1e-12);
                best = (d, (dx / len, dy / len));
            }
        }
        best.1
    }
}

/// The unit tangent of the closest line in `lines` to `p`, or `None` when
/// no line exists.
pub fn nearest_line_direction(lines: &[TgvLine], p: &Point) -> Option<(f64, f64)> {
    lines
        .iter()
        .map(|l| (l.distance_to(p), l))
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .map(|(_, l)| l.direction_at(p))
}

/// Builds a rail network connecting `cities` (ordered by decreasing
/// importance): a trunk through all of them in nearest-neighbour order plus
/// direct spurs from the first city (the capital) to each other city —
/// a stylized version of France's hub-and-spoke TGV map centred on Paris.
pub fn hub_and_spoke(cities: &[Point]) -> Vec<TgvLine> {
    if cities.len() < 2 {
        return Vec::new();
    }
    let hub = cities[0];
    cities[1..].iter().map(|&c| TgvLine::new(vec![hub, c])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_to_polyline_takes_closest_segment() {
        let line = TgvLine::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        // Close to the second segment.
        let p = Point::new(12.0, 5.0);
        assert!((line.distance_to(&p) - 2.0).abs() < 1e-12);
        assert!(line.covers(&p, 2.5));
        assert!(!line.covers(&p, 1.5));
    }

    #[test]
    fn length_sums_segments() {
        let line = TgvLine::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 10.0),
        ]);
        assert!((line.length_km() - 11.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn single_waypoint_is_rejected() {
        TgvLine::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    fn direction_at_follows_the_closest_segment() {
        let line = TgvLine::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        let (dx, dy) = line.direction_at(&Point::new(5.0, 1.0));
        assert!((dx - 1.0).abs() < 1e-12 && dy.abs() < 1e-12);
        let (dx, dy) = line.direction_at(&Point::new(11.0, 8.0));
        assert!(dx.abs() < 1e-12 && (dy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_line_direction_picks_the_closest_line() {
        let horizontal = TgvLine::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let vertical = TgvLine::new(vec![Point::new(50.0, 0.0), Point::new(50.0, 10.0)]);
        let lines = vec![horizontal, vertical];
        let (dx, _) = nearest_line_direction(&lines, &Point::new(2.0, 1.0)).unwrap();
        assert!((dx - 1.0).abs() < 1e-12);
        let (_, dy) = nearest_line_direction(&lines, &Point::new(49.0, 5.0)).unwrap();
        assert!((dy - 1.0).abs() < 1e-12);
        assert!(nearest_line_direction(&[], &Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn hub_and_spoke_links_capital_to_all() {
        let cities = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
            Point::new(-50.0, -50.0),
        ];
        let lines = hub_and_spoke(&cities);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert_eq!(line.waypoints[0], cities[0]);
        }
        assert!(hub_and_spoke(&cities[..1]).is_empty());
        assert!(hub_and_spoke(&[]).is_empty());
    }
}
