//! Communes: the spatial unit of every analysis in the paper.
//!
//! The study aggregates all traffic at the granularity of the ~36,000
//! French communes (§2): the ULI-based localization has a ~3 km median
//! error, so base stations are mapped to the commune hosting them and
//! demands are merged over communes. The paper further groups communes in
//! four classes (§5): urban, semi-urban, rural — per the INSEE
//! classification — plus rural communes crossed by a high-speed train line
//! (the *TGV* class), which behave like neither.

use crate::point::Point;

/// Identifier of a commune, dense in `0..country.communes().len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommuneId(pub u32);

impl CommuneId {
    /// The id as an index into per-commune arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// INSEE-like urbanization level of a commune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Urbanization {
    /// Dense city cores and large towns.
    Urban,
    /// Peri-urban belts and medium towns.
    SemiUrban,
    /// Countryside.
    Rural,
}

impl Urbanization {
    /// Whether this is the urban level.
    #[inline]
    pub fn is_urban(self) -> bool {
        matches!(self, Urbanization::Urban)
    }
}

/// The four-way grouping used by Figure 11: urbanization level with rural
/// TGV-corridor communes split out into their own class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UsageClass {
    /// Dense city cores and large towns.
    Urban,
    /// Peri-urban belts and medium towns.
    SemiUrban,
    /// Countryside not crossed by a high-speed line.
    Rural,
    /// Rural communes crossed by a high-speed (TGV) line.
    Tgv,
}

impl UsageClass {
    /// All classes in the display order of Figure 11.
    pub const ALL: [UsageClass; 4] =
        [UsageClass::Urban, UsageClass::SemiUrban, UsageClass::Rural, UsageClass::Tgv];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            UsageClass::Urban => "urban",
            UsageClass::SemiUrban => "semi-urban",
            UsageClass::Rural => "rural",
            UsageClass::Tgv => "tgv",
        }
    }

    /// Index into fixed-size per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            UsageClass::Urban => 0,
            UsageClass::SemiUrban => 1,
            UsageClass::Rural => 2,
            UsageClass::Tgv => 3,
        }
    }
}

/// Radio technologies covering a commune.
///
/// In the paper's France, 3G is near-pervasive while 4G is concentrated in
/// and around cities (Figure 9 right); Netflix adoption tracks 4G coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coverage {
    /// 3G (UTRAN) service is available.
    pub has_3g: bool,
    /// 4G (EUTRAN) service is available.
    pub has_4g: bool,
}

impl Coverage {
    /// Coverage by both technologies.
    pub const FULL: Coverage = Coverage { has_3g: true, has_4g: true };
    /// 3G only.
    pub const G3_ONLY: Coverage = Coverage { has_3g: true, has_4g: false };
    /// No cellular service (rare dead zones).
    pub const NONE: Coverage = Coverage { has_3g: false, has_4g: false };

    /// Whether any technology covers the commune.
    #[inline]
    pub fn any(self) -> bool {
        self.has_3g || self.has_4g
    }
}

/// A commune: centroid, surface, census population, classification and
/// radio coverage.
#[derive(Debug, Clone)]
pub struct Commune {
    /// Dense identifier.
    pub id: CommuneId,
    /// Centroid on the country plane (km).
    pub centroid: Point,
    /// Surface in km² (France's communes average ≈ 16 km²).
    pub area_km2: f64,
    /// Resident census population.
    pub population: u64,
    /// INSEE-like urbanization level.
    pub urbanization: Urbanization,
    /// Crossed by a high-speed (TGV) rail corridor.
    pub on_tgv_corridor: bool,
    /// Radio coverage.
    pub coverage: Coverage,
}

impl Commune {
    /// Population density in inhabitants per km².
    #[inline]
    pub fn density(&self) -> f64 {
        if self.area_km2 <= 0.0 {
            return 0.0;
        }
        self.population as f64 / self.area_km2
    }

    /// The four-way class of Figure 11: rural TGV-corridor communes form
    /// their own class; urban/semi-urban communes keep their level even if
    /// a line passes through (city stations are dominated by residents).
    pub fn usage_class(&self) -> UsageClass {
        match (self.urbanization, self.on_tgv_corridor) {
            (Urbanization::Rural, true) => UsageClass::Tgv,
            (Urbanization::Urban, _) => UsageClass::Urban,
            (Urbanization::SemiUrban, _) => UsageClass::SemiUrban,
            (Urbanization::Rural, false) => UsageClass::Rural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commune(urb: Urbanization, tgv: bool) -> Commune {
        Commune {
            id: CommuneId(0),
            centroid: Point::new(0.0, 0.0),
            area_km2: 16.0,
            population: 800,
            urbanization: urb,
            on_tgv_corridor: tgv,
            coverage: Coverage::FULL,
        }
    }

    #[test]
    fn usage_class_splits_tgv_out_of_rural_only() {
        assert_eq!(commune(Urbanization::Rural, true).usage_class(), UsageClass::Tgv);
        assert_eq!(commune(Urbanization::Rural, false).usage_class(), UsageClass::Rural);
        assert_eq!(commune(Urbanization::Urban, true).usage_class(), UsageClass::Urban);
        assert_eq!(commune(Urbanization::SemiUrban, true).usage_class(), UsageClass::SemiUrban);
    }

    #[test]
    fn density_is_population_over_area() {
        let c = commune(Urbanization::Rural, false);
        assert!((c.density() - 50.0).abs() < 1e-12);
        let mut degenerate = c.clone();
        degenerate.area_km2 = 0.0;
        assert_eq!(degenerate.density(), 0.0);
    }

    #[test]
    fn class_indices_cover_all_four_slots() {
        let mut seen = [false; 4];
        for class in UsageClass::ALL {
            seen[class.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn coverage_any_reflects_either_technology() {
        assert!(Coverage::FULL.any());
        assert!(Coverage::G3_ONLY.any());
        assert!(!Coverage::NONE.any());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = UsageClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
