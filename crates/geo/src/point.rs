//! Planar geometry primitives.
//!
//! The country lives on a flat kilometre grid — at national scale the
//! analyses only need relative distances, so no geodesy is involved.

/// A point on the country plane, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East–west coordinate (km).
    pub x: f64,
    /// North–south coordinate (km).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in km.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Distance from this point to the segment `[a, b]`, in km.
    ///
    /// Used to test whether a commune lies inside a TGV corridor.
    pub fn distance_to_segment(&self, a: &Point, b: &Point) -> f64 {
        let abx = b.x - a.x;
        let aby = b.y - a.y;
        let len_sq = abx * abx + aby * aby;
        if len_sq <= f64::EPSILON {
            return self.distance(a);
        }
        let t = (((self.x - a.x) * abx + (self.y - a.y) * aby) / len_sq).clamp(0.0, 1.0);
        let proj = Point::new(a.x + t * abx, a.y + t * aby);
        self.distance(&proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(10.0, -3.25);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_projects_onto_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(5.0, 3.0);
        assert!((p.distance_to_segment(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let before = Point::new(-3.0, 4.0);
        assert!((before.distance_to_segment(&a, &b) - 5.0).abs() < 1e-12);
        let after = Point::new(13.0, -4.0);
        assert!((after.distance_to_segment(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let a = Point::new(1.0, 1.0);
        let p = Point::new(4.0, 5.0);
        assert!((p.distance_to_segment(&a, &a) - 5.0).abs() < 1e-12);
    }
}
