//! Synthetic nationwide geography for the `mobilenet` workspace.
//!
//! The CoNEXT 2017 study analyzes traffic aggregated over the ~36,000 French
//! *communes*, whose demand structure is shaped by three geographic forces
//! the paper calls out explicitly:
//!
//! 1. a highly skewed population distribution (a few metropolises, many
//!    small rural communes) classified by the French statistics institute
//!    into **urban / semi-urban / rural** levels;
//! 2. **high-speed rail (TGV) corridors** crossing otherwise-rural
//!    communes, whose travellers consume disproportionate traffic;
//! 3. a **3G/4G coverage gradient** — 3G is near-pervasive while 4G is
//!    biased toward cities — which gates high-bandwidth services such as
//!    Netflix.
//!
//! The real commune polygons and census are proprietary-adjacent inputs the
//! reproduction does not have, so this crate *generates* a country with the
//! same statistical structure: Zipf-sized cities scattered on a plane,
//! communes tessellating the territory on a jittered lattice, population
//! assigned by distance-decay around cities, INSEE-like urbanization
//! thresholds, TGV polylines connecting the largest cities, and a coverage
//! model with urban bias. Every step is seeded and fully deterministic.
//!
//! # Example
//!
//! ```
//! use mobilenet_geo::{CountryConfig, Country};
//!
//! let country = Country::generate(&CountryConfig::small(), 42);
//! assert!(country.communes().len() >= 900);
//! let city_pop: u64 = country
//!     .communes()
//!     .iter()
//!     .filter(|c| !matches!(c.urbanization, mobilenet_geo::Urbanization::Rural))
//!     .map(|c| c.population)
//!     .sum();
//! // Cities concentrate population even though most communes are rural.
//! assert!(city_pop > country.total_population() / 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod commune;
pub mod config;
pub mod country;
pub mod index;
pub mod point;
pub mod rail;

pub use commune::{Commune, CommuneId, Coverage, UsageClass, Urbanization};
pub use config::CountryConfig;
pub use country::{City, Country};
pub use index::SpatialIndex;
pub use point::Point;
pub use rail::TgvLine;
