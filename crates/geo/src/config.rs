//! Configuration of the synthetic country generator.

/// Parameters of the generated country.
///
/// The defaults are scaled-down France: the real study covers 550,000 km²,
/// 36,000+ communes and ~30 M subscribers of a single operator. A full-scale
/// country is available through [`CountryConfig::france_scale`]; analyses
/// and tests mostly run on [`CountryConfig::small`], which keeps the same
/// *shape* (urban fractions, Zipf city sizes, corridor coverage) at ~1/36 of
/// the commune count.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryConfig {
    /// Width of the country plane, km.
    pub width_km: f64,
    /// Height of the country plane, km.
    pub height_km: f64,
    /// Number of communes to tessellate the plane with.
    pub n_communes: usize,
    /// Number of cities seeding the population field.
    pub n_cities: usize,
    /// Zipf exponent of city populations (rank 1 = largest).
    pub city_zipf_exponent: f64,
    /// Total resident population.
    pub total_population: u64,
    /// Share of the population that belongs to city cores (the rest is a
    /// uniform rural floor).
    pub city_population_share: f64,
    /// Exponential decay radius of a city's population halo, km, for the
    /// largest city; smaller cities scale by the cube root of relative size.
    pub city_halo_km: f64,
    /// Density above which a commune is classified urban (inhab/km²).
    pub urban_density_threshold: f64,
    /// Density above which a commune is classified semi-urban (inhab/km²).
    pub semi_urban_density_threshold: f64,
    /// Number of largest cities interconnected by high-speed rail.
    pub tgv_city_count: usize,
    /// Half-width of a TGV corridor, km: rural communes closer than this to
    /// a line are tagged as the TGV class.
    pub tgv_corridor_km: f64,
    /// Probability that a commune has 3G coverage, by usage-class index
    /// `[urban, semi-urban, rural, tgv]`.
    pub coverage_3g: [f64; 4],
    /// Probability that a commune has 4G coverage, by usage-class index.
    pub coverage_4g: [f64; 4],
}

impl CountryConfig {
    /// A ~1,000-commune country; fast enough for unit tests and examples.
    pub fn small() -> Self {
        CountryConfig {
            width_km: 160.0,
            height_km: 160.0,
            n_communes: 1_000,
            n_cities: 12,
            city_zipf_exponent: 1.07, // Zipf's law for city sizes
            total_population: 900_000,
            city_population_share: 0.72,
            city_halo_km: 5.0,
            urban_density_threshold: 500.0,
            semi_urban_density_threshold: 120.0,
            tgv_city_count: 4,
            tgv_corridor_km: 3.0,
            coverage_3g: [1.0, 0.999, 0.99, 0.995],
            coverage_4g: [0.99, 0.90, 0.52, 0.75],
        }
    }

    /// A mid-size country (~6,000 communes) used by the figure pipeline:
    /// large enough for stable spatial statistics, small enough to generate
    /// in seconds.
    pub fn medium() -> Self {
        CountryConfig {
            width_km: 420.0,
            height_km: 420.0,
            n_communes: 6_000,
            n_cities: 30,
            city_zipf_exponent: 1.07,
            total_population: 5_500_000,
            city_population_share: 0.70,
            city_halo_km: 8.0,
            urban_density_threshold: 500.0,
            semi_urban_density_threshold: 120.0,
            tgv_city_count: 6,
            tgv_corridor_km: 4.0,
            coverage_3g: [1.0, 0.999, 0.99, 0.995],
            coverage_4g: [0.99, 0.90, 0.52, 0.75],
        }
    }

    /// Full France scale: 36,000 communes over ~550,000 km², 30 M people.
    pub fn france_scale() -> Self {
        CountryConfig {
            width_km: 760.0,
            height_km: 720.0,
            n_communes: 36_000,
            n_cities: 60,
            city_zipf_exponent: 1.07,
            total_population: 30_000_000,
            city_population_share: 0.68,
            city_halo_km: 10.0,
            urban_density_threshold: 500.0,
            semi_urban_density_threshold: 120.0,
            tgv_city_count: 8,
            tgv_corridor_km: 5.0,
            coverage_3g: [1.0, 0.999, 0.99, 0.995],
            coverage_4g: [0.99, 0.90, 0.52, 0.75],
        }
    }

    /// The national measurement tier's geography: the paper's Table 1
    /// coverage (>36,000 communes, 30 M subscribers' home country) — the
    /// same map as [`CountryConfig::france_scale`], named separately so
    /// the paper-scale session tier can evolve its geography without
    /// disturbing the figure-scale preset.
    pub fn national() -> Self {
        CountryConfig::france_scale()
    }

    /// Average commune surface implied by the configuration, km².
    pub fn mean_commune_area(&self) -> f64 {
        self.width_km * self.height_km / self.n_communes as f64
    }

    /// Validates internal consistency; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.width_km <= 0.0 || self.height_km <= 0.0 {
            return Err("country dimensions must be positive".into());
        }
        if self.n_communes == 0 {
            return Err("n_communes must be positive".into());
        }
        if self.n_cities == 0 || self.n_cities > self.n_communes {
            return Err("n_cities must be in 1..=n_communes".into());
        }
        if !(0.0..=1.0).contains(&self.city_population_share) {
            return Err("city_population_share must be in [0,1]".into());
        }
        if self.semi_urban_density_threshold >= self.urban_density_threshold {
            return Err("semi-urban threshold must be below urban threshold".into());
        }
        if self.tgv_city_count > self.n_cities {
            return Err("tgv_city_count cannot exceed n_cities".into());
        }
        for p in self.coverage_3g.iter().chain(self.coverage_4g.iter()) {
            if !(0.0..=1.0).contains(p) {
                return Err("coverage probabilities must be in [0,1]".into());
            }
        }
        Ok(())
    }
}

impl Default for CountryConfig {
    fn default() -> Self {
        CountryConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CountryConfig::small().validate().unwrap();
        CountryConfig::medium().validate().unwrap();
        CountryConfig::france_scale().validate().unwrap();
    }

    #[test]
    fn france_scale_matches_paper_magnitudes() {
        let cfg = CountryConfig::france_scale();
        // ~16 km² average commune, per §2 of the paper.
        let area = cfg.mean_commune_area();
        assert!(area > 10.0 && area < 20.0, "mean commune area {area}");
        assert_eq!(cfg.total_population, 30_000_000);
        assert_eq!(cfg.n_communes, 36_000);
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let mut cfg = CountryConfig::small();
        cfg.n_cities = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = CountryConfig::small();
        cfg.semi_urban_density_threshold = cfg.urban_density_threshold;
        assert!(cfg.validate().is_err());

        let mut cfg = CountryConfig::small();
        cfg.tgv_city_count = cfg.n_cities + 1;
        assert!(cfg.validate().is_err());

        let mut cfg = CountryConfig::small();
        cfg.coverage_4g[2] = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = CountryConfig::small();
        cfg.width_km = -1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = CountryConfig::small();
        cfg.n_communes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = CountryConfig::small();
        cfg.city_population_share = 1.2;
        assert!(cfg.validate().is_err());
    }
}
