//! A uniform-grid spatial index over commune centroids.
//!
//! The collection pipeline (`mobilenet-netsim`) must map noisy ULI fixes to
//! the commune whose base station served them; with 36,000 communes a linear
//! scan per fix would dominate generation time, so lookups go through a
//! bucket grid.

use crate::point::Point;

/// A uniform grid index mapping points to the nearest of a fixed set of
/// sites (commune centroids).
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    sites: Vec<Point>,
    cell_km: f64,
    nx: usize,
    ny: usize,
    min_x: f64,
    min_y: f64,
    buckets: Vec<Vec<u32>>,
}

impl SpatialIndex {
    /// Builds an index over `sites` with roughly one site per cell.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn build(sites: &[Point]) -> Self {
        assert!(!sites.is_empty(), "cannot index zero sites");
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in sites {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);
        // Aim for ~1 site per cell.
        let target_cells = sites.len() as f64;
        let cell_km = ((span_x * span_y) / target_cells).sqrt().max(1e-6);
        let nx = (span_x / cell_km).ceil() as usize + 1;
        let ny = (span_y / cell_km).ceil() as usize + 1;
        let mut buckets = vec![Vec::new(); nx * ny];
        for (i, p) in sites.iter().enumerate() {
            let cx = (((p.x - min_x) / cell_km) as usize).min(nx - 1);
            let cy = (((p.y - min_y) / cell_km) as usize).min(ny - 1);
            buckets[cy * nx + cx].push(i as u32);
        }
        SpatialIndex { sites: sites.to_vec(), cell_km, nx, ny, min_x, min_y, buckets }
    }

    /// Number of indexed sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the index holds no sites (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x - self.min_x) / self.cell_km).floor();
        let cy = ((p.y - self.min_y) / self.cell_km).floor();
        (
            (cx.max(0.0) as usize).min(self.nx - 1),
            (cy.max(0.0) as usize).min(self.ny - 1),
        )
    }

    /// Index of the site nearest to `p` (ties broken by lowest index).
    pub fn nearest(&self, p: &Point) -> usize {
        let (cx, cy) = self.cell_of(p);
        let mut best: Option<(f64, u32)> = None;
        // Expand rings of cells until a hit is found and the ring distance
        // exceeds the best hit (grid cells are cell_km wide, so any site in
        // a farther ring is at least (ring-1)*cell_km away).
        let max_ring = self.nx.max(self.ny);
        for ring in 0..=max_ring {
            if let Some((d, _)) = best {
                if (ring as f64 - 1.0) * self.cell_km > d.sqrt() {
                    break;
                }
            }
            let x_lo = cx.saturating_sub(ring);
            let x_hi = (cx + ring).min(self.nx - 1);
            let y_lo = cy.saturating_sub(ring);
            let y_hi = (cy + ring).min(self.ny - 1);
            for y in y_lo..=y_hi {
                for x in x_lo..=x_hi {
                    // Only the ring boundary is new.
                    let on_boundary = ring == 0
                        || x == x_lo && cx >= ring
                        || x == x_hi && x == cx + ring
                        || y == y_lo && cy >= ring
                        || y == y_hi && y == cy + ring;
                    if !on_boundary {
                        continue;
                    }
                    for &i in &self.buckets[y * self.nx + x] {
                        let d = self.sites[i as usize].distance_sq(p);
                        match best {
                            Some((bd, bi)) if d > bd || (d == bd && i >= bi) => {}
                            _ => best = Some((d, i)),
                        }
                    }
                }
            }
        }
        best.expect("non-empty index always finds a site").1 as usize
    }

    /// Indices of all sites within `radius_km` of `p`.
    pub fn within(&self, p: &Point, radius_km: f64) -> Vec<usize> {
        let r2 = radius_km * radius_km;
        let (cx, cy) = self.cell_of(p);
        let ring = (radius_km / self.cell_km).ceil() as usize + 1;
        let x_lo = cx.saturating_sub(ring);
        let x_hi = (cx + ring).min(self.nx - 1);
        let y_lo = cy.saturating_sub(ring);
        let y_hi = (cy + ring).min(self.ny - 1);
        let mut out = Vec::new();
        for y in y_lo..=y_hi {
            for x in x_lo..=x_hi {
                for &i in &self.buckets[y * self.nx + x] {
                    if self.sites[i as usize].distance_sq(p) <= r2 {
                        out.push(i as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize, step: f64) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Point::new((i % side) as f64 * step, (i / side) as f64 * step))
            .collect()
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let sites = lattice(400, 3.7);
        let idx = SpatialIndex::build(&sites);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(10.1, 22.9),
            Point::new(-5.0, -5.0),
            Point::new(100.0, 100.0),
            Point::new(37.0, 0.5),
        ];
        for p in &probes {
            let got = idx.nearest(p);
            let want = sites
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.distance_sq(p).partial_cmp(&b.1.distance_sq(p)).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                sites[got].distance_sq(p),
                sites[want].distance_sq(p),
                "probe {p:?}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn within_returns_exactly_the_ball() {
        let sites = lattice(100, 2.0);
        let idx = SpatialIndex::build(&sites);
        let p = Point::new(9.0, 9.0);
        let r = 4.5;
        let got = idx.within(&p, r);
        let want: Vec<usize> = sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.distance(&p) <= r)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn single_site_is_always_nearest() {
        let idx = SpatialIndex::build(&[Point::new(5.0, 5.0)]);
        assert_eq!(idx.nearest(&Point::new(-100.0, 40.0)), 0);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    #[test]
    fn within_zero_radius_hits_exact_site_only() {
        let sites = lattice(16, 1.0);
        let idx = SpatialIndex::build(&sites);
        let hits = idx.within(&sites[5], 0.0);
        assert_eq!(hits, vec![5]);
    }

    #[test]
    #[should_panic(expected = "zero sites")]
    fn empty_index_is_rejected() {
        SpatialIndex::build(&[]);
    }
}
