//! Workspace-internal stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of proptest's API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, the [`strategy::Strategy`] trait with range and
//! collection strategies, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberate for a test-only shim:
//! - No shrinking: a failing case reports its inputs but is not minimized.
//! - Case generation is deterministic per test (seeded from the test's
//!   module path), so failures always reproduce.
//! - Rejected cases (`prop_assume!`) count toward the case budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::ops::Range;

    /// A recipe for sampling random values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<T: SampleUniform + Clone> Strategy for Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy sampling uniformly over a type's whole domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform over `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Numeric whole-domain strategies (`prop::num`).
pub mod num {
    /// Strategies over `u64`.
    pub mod u64 {
        use crate::strategy::Any;

        /// Uniform over all of `u64`.
        pub const ANY: Any<u64> = Any(std::marker::PhantomData);
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::Any;

    /// Fair coin flip.
    pub const ANY: Any<::core::primitive::bool> = Any(std::marker::PhantomData);
}

/// Test execution: configuration, the per-test runner, and case errors.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's preconditions failed (`prop_assume!`); not a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Drives one property: holds the case budget and the deterministic
    /// source of sampled inputs.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        rng: StdRng,
    }

    impl TestRunner {
        /// Builds a runner seeded from the property's name, so each
        /// property sees its own reproducible stream.
        pub fn new(config: &ProptestConfig, name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner { cases: config.cases, rng: StdRng::seed_from_u64(h) }
        }

        /// The number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The runner's input stream.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Everything a property test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` that runs the body against many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strategy),
                        runner.rng(),
                    );
                )+
                let inputs = || {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", $arg));
                    )+
                    s
                };
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "property {} failed at case {}: {}\n  inputs: {}",
                        stringify!($name),
                        case,
                        msg,
                        inputs(),
                    ),
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(concat!("assertion failed: ", stringify!($cond), ": {}"),
                    format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!(stringify!($left), " != ", stringify!($right), " ({:?} vs {:?})"),
                    left, right,
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!(stringify!($left), " == ", stringify!($right), " ({:?})"),
                    left,
                ),
            ));
        }
    }};
}

/// Skips the current case when its preconditions do not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.5f64..1.5) {
            prop_assert!(x < 10);
            prop_assert!((-1.5..1.5).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_strategy_respects_length(
            v in prop::collection::vec(0.0f64..1.0, 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }

        #[test]
        fn any_strategies_sample(bit in prop::bool::ANY, word in prop::num::u64::ANY) {
            // Touch both values so the sampler runs; any outcome is valid.
            prop_assert!(bit || !bit);
            prop_assert!(word == word);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
