//! Generative mobile-service workload models.
//!
//! The CoNEXT 2017 study works from one week of real per-service traffic.
//! The reproduction replaces that proprietary input with a *generative
//! model of the demand structure the paper reports*, so that the analysis
//! stack (peak detection, clustering, spatial correlation, urbanization
//! regression) can be exercised end-to-end and validated against known
//! ground truth:
//!
//! * [`catalog`] — the 20 head services of Figure 3 with their categories,
//!   downlink/uplink volume shares, peak palettes over the seven *topical
//!   times*, and spatial affinities; plus a ~480-service Zipf tail
//!   reproducing the rank distribution of Figure 2.
//! * [`week`] — the measurement week calendar (starting Saturday, as the
//!   paper's week of 2016-09-24 does) and the seven topical times of
//!   Figure 6.
//! * [`profile`] — per-service weekly temporal profiles: a diurnal/weekly
//!   baseline modulated by Gaussian activity-peak bumps.
//! * [`spatial`] — per-service urbanization multipliers, 4G dependence and
//!   adoption floors (Netflix's rural absence, iCloud's uniformity).
//! * [`demand`] — the expected-value demand field combining all of the
//!   above over a generated [`mobilenet_geo::Country`].
//! * [`sessions`] — seeded sampling of discrete user sessions from the
//!   demand field, the input to the `mobilenet-netsim` collection pipeline.
//! * [`dataset`] — the commune/class/national aggregate tables every
//!   analysis consumes (the shape of the paper's dataset after §2's
//!   aggregation step).
//! * [`dist`] — the samplers (normal, log-normal, Poisson, categorical)
//!   implemented on top of `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod dataset;
pub mod demand;
pub mod dist;
pub mod events;
pub mod mobility;
pub mod profile;
pub mod sessions;
pub mod spatial;
pub mod week;

pub use catalog::{Category, ServiceCatalog, ServiceId, ServiceSpec};
pub use config::TrafficConfig;
pub use dataset::{DatasetError, Direction, TrafficDataset};
pub use demand::DemandModel;
pub use events::EventSpec;
pub use mobility::MobilityModel;
pub use sessions::{Session, SessionGenerator, Technology};
pub use week::{TopicalTime, HOURS_PER_DAY, HOURS_PER_WEEK};
