//! The mobile-service catalog.
//!
//! §3 of the paper selects 20 representative services covering >60% of the
//! network traffic, spanning video/audio streaming, social networks,
//! messaging, cloud, stores, news, adult content, gaming, mail and MMS
//! (Figure 3); around 500 services in total generate measurable traffic,
//! their volumes spanning ten orders of magnitude with the top half
//! following a Zipf law (Figure 2).
//!
//! This module encodes those 20 services — with per-user volumes, peak
//! palettes (Figures 6–7) and spatial affinities (Figures 9–11) acting as
//! the generator's **ground truth** — plus a synthetic Zipf-with-cutoff
//! tail for the rank analysis of Figure 2.

use crate::spatial::SpatialProfile;
use crate::week::TopicalTime;

/// Identifier of a service: index into [`ServiceCatalog::head`] for
/// `id < head_len`, tail rank otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u16);

impl ServiceId {
    /// The id as an index into per-service arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Service categories, following Figure 3's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Long-form video (YouTube, Netflix, iTunes video…).
    VideoStreaming,
    /// Music and audio streaming.
    AudioStreaming,
    /// Social networks (feeds, timelines).
    SocialNetwork,
    /// Instant messaging and photo-sharing chat.
    Messaging,
    /// Cloud storage and device sync.
    CloudStorage,
    /// Application stores.
    AppStore,
    /// News and generic web portals.
    NewsWeb,
    /// Adult content.
    Adult,
    /// Mobile gaming.
    Gaming,
    /// E-mail.
    Mail,
    /// Multimedia messaging (carrier MMS).
    Mms,
    /// Anything else (tail services).
    Other,
}

impl Category {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Category::VideoStreaming => "video streaming",
            Category::AudioStreaming => "audio streaming",
            Category::SocialNetwork => "social network",
            Category::Messaging => "messaging",
            Category::CloudStorage => "cloud storage",
            Category::AppStore => "app store",
            Category::NewsWeb => "news/web",
            Category::Adult => "adult",
            Category::Gaming => "gaming",
            Category::Mail => "mail",
            Category::Mms => "mms",
            Category::Other => "other",
        }
    }
}

/// An activity peak in a service's ground-truth palette: at which topical
/// time the service surges and by how much.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSpec {
    /// When the peak occurs.
    pub time: TopicalTime,
    /// Relative surge amplitude: 0.8 means the peak rises ≈ 80% above the
    /// surrounding baseline (the scale of Figure 7's peak-to-average
    /// ratios).
    pub intensity: f64,
}

/// Full specification of a head service.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Identifier (position in the head list).
    pub id: ServiceId,
    /// Display name.
    pub name: &'static str,
    /// Category (Figure 3 colors).
    pub category: Category,
    /// Average weekly downlink volume per **urban** subscriber, MB.
    pub weekly_dl_mb_per_user: f64,
    /// Uplink-to-downlink volume ratio.
    pub ul_ratio: f64,
    /// Mean downlink volume of a single session, MB (sets the session count
    /// via `weekly volume / session volume`).
    pub session_dl_mb: f64,
    /// Ground-truth activity peaks.
    pub peaks: Vec<PeakSpec>,
    /// Spatial affinity.
    pub spatial: SpatialProfile,
}

impl ServiceSpec {
    /// Average weekly uplink volume per urban subscriber, MB.
    pub fn weekly_ul_mb_per_user(&self) -> f64 {
        self.weekly_dl_mb_per_user * self.ul_ratio
    }

    /// Expected sessions per subscriber per week.
    pub fn sessions_per_user_week(&self) -> f64 {
        self.weekly_dl_mb_per_user / self.session_dl_mb
    }

    /// The ground-truth peak intensity at a topical time, if any.
    pub fn peak_at(&self, time: TopicalTime) -> Option<f64> {
        self.peaks.iter().find(|p| p.time == time).map(|p| p.intensity)
    }
}

/// The full catalog: 20 head services plus a Zipf tail.
#[derive(Debug, Clone)]
pub struct ServiceCatalog {
    head: Vec<ServiceSpec>,
    /// National weekly downlink volumes of tail services (rank order,
    /// starting right after the head), in MB.
    tail_dl_mb: Vec<f64>,
    /// Same for uplink.
    tail_ul_mb: Vec<f64>,
}

/// Shorthand used by the static table below.
fn peaks(list: &[(TopicalTime, f64)]) -> Vec<PeakSpec> {
    list.iter().map(|&(time, intensity)| PeakSpec { time, intensity }).collect()
}

impl ServiceCatalog {
    /// Number of head services (the paper's selection).
    pub const HEAD_LEN: usize = 20;

    /// Builds the standard catalog with `n_tail` tail services.
    ///
    /// Tail volumes continue the head's rank distribution with a Zipf law
    /// (`s ≈ 1.69` downlink / `1.55` uplink, Figure 2) for the top half of
    /// the full ranking and an exponential cutoff beyond — reproducing the
    /// ten-orders-of-magnitude span and the "only the top half is Zipf"
    /// observation.
    pub fn standard(n_tail: usize) -> Self {
        let head = head_services();
        assert_eq!(head.len(), Self::HEAD_LEN);

        // Continue from the last head service's national scale. Tail
        // volumes are *national weekly MB per urban-equivalent subscriber
        // base*; they only feed the rank plot, so the absolute unit matches
        // the head's per-user volumes for comparability.
        let v_last_dl = head.last().unwrap().weekly_dl_mb_per_user;
        let v_last_ul = head.last().unwrap().weekly_ul_mb_per_user();
        let tail_dl_mb = tail_volumes(n_tail, Self::HEAD_LEN, v_last_dl, 1.69);
        let tail_ul_mb = tail_volumes(n_tail, Self::HEAD_LEN, v_last_ul, 1.55);
        ServiceCatalog { head, tail_dl_mb, tail_ul_mb }
    }

    /// The head services, in catalog (≈ downlink-rank) order.
    pub fn head(&self) -> &[ServiceSpec] {
        &self.head
    }

    /// A head service by id.
    pub fn service(&self, id: ServiceId) -> &ServiceSpec {
        &self.head[id.index()]
    }

    /// Looks a head service up by display name.
    pub fn by_name(&self, name: &str) -> Option<&ServiceSpec> {
        self.head.iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Number of tail services.
    pub fn tail_len(&self) -> usize {
        self.tail_dl_mb.len()
    }

    /// Total number of services (head + tail).
    pub fn len(&self) -> usize {
        self.head.len() + self.tail_len()
    }

    /// Whether the catalog is empty (never for [`ServiceCatalog::standard`]).
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.tail_dl_mb.is_empty()
    }

    /// Tail weekly downlink volumes in rank order (MB).
    pub fn tail_dl_mb(&self) -> &[f64] {
        &self.tail_dl_mb
    }

    /// Tail weekly uplink volumes in rank order (MB).
    pub fn tail_ul_mb(&self) -> &[f64] {
        &self.tail_ul_mb
    }

    /// Sum of head per-user weekly downlink volumes (MB) — the urban
    /// subscriber's total head-service demand.
    pub fn head_weekly_dl_mb(&self) -> f64 {
        self.head.iter().map(|s| s.weekly_dl_mb_per_user).sum()
    }

    /// Sum of head per-user weekly uplink volumes (MB).
    pub fn head_weekly_ul_mb(&self) -> f64 {
        self.head.iter().map(|s| s.weekly_ul_mb_per_user()).sum()
    }
}

/// Zipf continuation with exponential cutoff for the bottom half.
fn tail_volumes(n_tail: usize, head_len: usize, v_anchor: f64, s: f64) -> Vec<f64> {
    // The anchor is the last head rank; tail rank r (1-based within tail)
    // has global rank head_len + r.
    let anchor_rank = head_len as f64;
    let scale = v_anchor * anchor_rank.powf(s);
    let full = head_len + n_tail;
    let zipf_half = full / 2; // only the top half of the full ranking is Zipf
    (0..n_tail)
        .map(|i| {
            let rank = (head_len + i + 1) as f64;
            let base = scale * rank.powf(-s);
            if (head_len + i + 1) <= zipf_half {
                base
            } else {
                // Exponential cutoff: drives the bottom half down to the
                // ~10-orders-of-magnitude floor seen in Figure 2.
                let over = (head_len + i + 1 - zipf_half) as f64;
                let width = (full as f64 - zipf_half as f64) / 14.0;
                base * (-over / width).exp()
            }
        })
        .collect()
}

/// The static head-service table.
///
/// Volumes approximate Figure 3's ranking (video ≈ 3/4 of head downlink;
/// SnapChat/Facebook/Instagram lead uplink); peak palettes follow
/// Figures 6–7 (every service has a weekday-midday peak, commute/evening
/// peaks vary, the "student" services add a morning-break peak); spatial
/// profiles follow Figures 9–11 (typical urbanization scaling everywhere,
/// Netflix high-end, iCloud uniform, Adult avoiding TGV).
/// One row of the head-service table: name, category, weekly DL volume,
/// uplink ratio, mean session size, peak palette, spatial profile.
type HeadRow = (&'static str, Category, f64, f64, f64, Vec<PeakSpec>, SpatialProfile);

fn head_services() -> Vec<ServiceSpec> {
    use Category::*;
    use TopicalTime::*;

    let t = SpatialProfile::typical;
    let table: Vec<HeadRow> = vec![
        (
            "YouTube",
            VideoStreaming,
            160.0,
            0.0048,
            24.0,
            peaks(&[(Midday, 0.65), (Evening, 0.75), (WeekendEvening, 0.30)]),
            t(),
        ),
        (
            "iTunes",
            VideoStreaming,
            68.0,
            0.003,
            30.0,
            peaks(&[(Midday, 1.45), (Evening, 0.55)]),
            t(),
        ),
        (
            "Facebook Video",
            VideoStreaming,
            40.0,
            0.03,
            8.0,
            peaks(&[(Midday, 0.80), (AfternoonCommute, 0.35), (WeekendMidday, 0.22)]),
            t(),
        ),
        (
            "Instagram Video",
            VideoStreaming,
            28.0,
            0.036,
            5.0,
            peaks(&[(Midday, 0.55), (MorningBreak, 0.30), (Evening, 0.45)]),
            t(),
        ),
        (
            "Netflix",
            VideoStreaming,
            22.0,
            0.0024,
            45.0,
            peaks(&[(Evening, 0.80), (WeekendEvening, 0.35), (Midday, 0.42)]),
            SpatialProfile::high_end_urban(),
        ),
        (
            "Audio",
            AudioStreaming,
            14.0,
            0.012,
            9.0,
            peaks(&[(MorningCommute, 0.95), (Midday, 0.50), (AfternoonCommute, 0.30)]),
            t(),
        ),
        (
            "Facebook",
            SocialNetwork,
            13.0,
            0.18,
            1.6,
            peaks(&[
                (Midday, 1.20),
                (MorningBreak, 0.45),
                (AfternoonCommute, 0.28),
                (WeekendMidday, 0.18),
            ]),
            t(),
        ),
        (
            "Twitter",
            SocialNetwork,
            11.0,
            0.108,
            1.2,
            peaks(&[
                (Midday, 0.90),
                (MorningBreak, 0.55),
                (Evening, 0.55),
            ]),
            t(),
        ),
        (
            "Google Services",
            NewsWeb,
            10.0,
            0.072,
            2.0,
            peaks(&[(Midday, 0.70), (MorningCommute, 0.60), (AfternoonCommute, 0.25)]),
            t(),
        ),
        (
            "Instagram",
            SocialNetwork,
            8.5,
            0.21,
            1.4,
            peaks(&[
                (Midday, 0.85),
                (MorningBreak, 0.45),
                (Evening, 0.60),
                (WeekendEvening, 0.25),
            ]),
            t(),
        ),
        (
            "News",
            NewsWeb,
            7.5,
            0.018,
            1.0,
            peaks(&[(MorningCommute, 1.15), (Midday, 0.55), (AfternoonCommute, 0.20)]),
            t(),
        ),
        (
            "Adult",
            Adult,
            7.0,
            0.009,
            4.5,
            peaks(&[(Evening, 0.70), (Midday, 0.40), (WeekendEvening, 0.18)]),
            SpatialProfile::new([1.0, 0.95, 0.52, 1.6], 0.3),
        ),
        (
            "Apple Store",
            AppStore,
            6.5,
            0.018,
            6.0,
            peaks(&[(Midday, 1.55), (WeekendMidday, 0.25)]),
            t(),
        ),
        (
            "Google Play",
            AppStore,
            6.0,
            0.018,
            6.0,
            peaks(&[(Midday, 1.05), (Evening, 0.35), (WeekendMidday, 0.15)]),
            t(),
        ),
        (
            "iCloud",
            CloudStorage,
            5.0,
            0.3,
            2.2,
            peaks(&[(Midday, 0.45), (MorningCommute, 0.50), (Evening, 0.25)]),
            SpatialProfile::uniform(),
        ),
        (
            "SnapChat",
            Messaging,
            4.5,
            0.78,
            0.8,
            peaks(&[
                (Midday, 1.00),
                (MorningBreak, 0.50),
                (AfternoonCommute, 0.42),
                (WeekendEvening, 0.32),
                (WeekendMidday, 0.20),
            ]),
            t(),
        ),
        (
            "WhatsApp",
            Messaging,
            3.5,
            0.48,
            0.35,
            peaks(&[
                (Midday, 0.75),
                (AfternoonCommute, 0.38),
                (Evening, 0.50),
                (WeekendMidday, 0.28),
            ]),
            t(),
        ),
        (
            "Mail",
            Mail,
            3.0,
            0.21,
            0.4,
            peaks(&[(MorningCommute, 0.85), (Midday, 0.60), (AfternoonCommute, 0.18)]),
            t(),
        ),
        (
            "MMS",
            Mms,
            1.5,
            0.48,
            0.12,
            peaks(&[(Midday, 0.50), (WeekendMidday, 0.42), (Evening, 0.22)]),
            SpatialProfile::new([1.0, 0.97, 0.6, 2.4], 0.1),
        ),
        (
            "Pokemon Go",
            Gaming,
            1.2,
            0.15,
            0.5,
            peaks(&[
                (AfternoonCommute, 0.45),
                (Evening, 0.40),
                (WeekendMidday, 0.28),
                (Midday, 0.42),
            ]),
            SpatialProfile::new([1.0, 1.0, 0.62, 2.6], 0.25),
        ),
    ];

    table
        .into_iter()
        .enumerate()
        .map(|(i, (name, category, dl, ul_ratio, session_dl_mb, peaks, spatial))| ServiceSpec {
            id: ServiceId(i as u16),
            name,
            category,
            weekly_dl_mb_per_user: dl,
            ul_ratio,
            session_dl_mb,
            peaks,
            spatial,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ServiceCatalog {
        ServiceCatalog::standard(480)
    }

    #[test]
    fn head_has_twenty_services_with_unique_names() {
        let c = catalog();
        assert_eq!(c.head().len(), 20);
        let mut names: Vec<&str> = c.head().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
        assert_eq!(c.len(), 500);
        assert!(!c.is_empty());
    }

    #[test]
    fn ids_match_positions() {
        let c = catalog();
        for (i, s) in c.head().iter().enumerate() {
            assert_eq!(s.id.index(), i);
            assert!(std::ptr::eq(c.service(s.id), s));
        }
    }

    #[test]
    fn video_dominates_downlink_as_in_figure_3() {
        let c = catalog();
        let video: f64 = c
            .head()
            .iter()
            .filter(|s| s.category == Category::VideoStreaming)
            .map(|s| s.weekly_dl_mb_per_user)
            .sum();
        let share = video / c.head_weekly_dl_mb();
        // Paper: video ≈ 46% of total ≈ 3/4 of the head selection.
        assert!(share > 0.6 && share < 0.85, "video share {share}");
        // YouTube is the dominant provider, iTunes follows at a distance.
        assert_eq!(c.head()[0].name, "YouTube");
        assert_eq!(c.head()[1].name, "iTunes");
        assert!(c.head()[0].weekly_dl_mb_per_user > 2.0 * c.head()[1].weekly_dl_mb_per_user);
    }

    #[test]
    fn social_and_messaging_lead_uplink_as_in_figure_3() {
        let c = catalog();
        let mut by_ul: Vec<&ServiceSpec> = c.head().iter().collect();
        by_ul.sort_by(|a, b| {
            b.weekly_ul_mb_per_user().partial_cmp(&a.weekly_ul_mb_per_user()).unwrap()
        });
        for s in &by_ul[..3] {
            assert!(
                matches!(s.category, Category::SocialNetwork | Category::Messaging),
                "uplink top-3 must be social/messaging, found {} ({:?})",
                s.name,
                s.category
            );
        }
    }

    #[test]
    fn uplink_is_a_small_fraction_of_the_load() {
        let c = catalog();
        let dl = c.head_weekly_dl_mb();
        let ul = c.head_weekly_ul_mb();
        // Paper (§3 footnote): uplink accounts for less than one twentieth
        // of the total network load.
        assert!(ul / (ul + dl) < 0.07, "uplink share {}", ul / (ul + dl));
    }

    #[test]
    fn every_service_peaks_at_weekday_midday() {
        // §4: "almost all services show increased usage on midday of
        // working days" — our ground truth makes that universal.
        for s in catalog().head() {
            assert!(
                s.peak_at(TopicalTime::Midday).is_some(),
                "{} lacks a midday peak",
                s.name
            );
        }
    }

    #[test]
    fn student_services_have_morning_break_peaks() {
        let c = catalog();
        for name in ["SnapChat", "Instagram", "Facebook", "Twitter"] {
            let s = c.by_name(name).unwrap();
            assert!(
                s.peak_at(TopicalTime::MorningBreak).is_some(),
                "{name} lacks a morning-break peak"
            );
        }
    }

    #[test]
    fn peak_palettes_are_pairwise_distinct() {
        // §4's key finding: no two services share temporal dynamics. Ensure
        // the ground-truth palettes (time sets) are not identical for any
        // pair within a category.
        let c = catalog();
        for a in c.head() {
            for b in c.head() {
                if a.id == b.id {
                    continue;
                }
                let pa: Vec<(TopicalTime, u32)> = a
                    .peaks
                    .iter()
                    .map(|p| (p.time, (p.intensity * 100.0) as u32))
                    .collect();
                let pb: Vec<(TopicalTime, u32)> = b
                    .peaks
                    .iter()
                    .map(|p| (p.time, (p.intensity * 100.0) as u32))
                    .collect();
                assert_ne!(pa, pb, "{} and {} share a palette", a.name, b.name);
            }
        }
    }

    #[test]
    fn tail_is_monotone_decreasing_with_deep_cutoff() {
        let c = catalog();
        let tail = c.tail_dl_mb();
        assert_eq!(tail.len(), 480);
        for w in tail.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Head-to-tail continuity: first tail service is below the last
        // head service.
        assert!(tail[0] <= c.head().last().unwrap().weekly_dl_mb_per_user);
        // Ten-orders-of-magnitude span across the full ranking (Figure 2).
        let span = c.head()[0].weekly_dl_mb_per_user / tail.last().unwrap();
        assert!(span > 1e8, "span {span:.3e}");
    }

    #[test]
    fn by_name_is_case_insensitive_and_total() {
        let c = catalog();
        assert!(c.by_name("netflix").is_some());
        assert!(c.by_name("NETFLIX").is_some());
        assert!(c.by_name("MySpace").is_none());
    }

    #[test]
    fn sessions_per_week_are_plausible() {
        for s in catalog().head() {
            let n = s.sessions_per_user_week();
            assert!(n > 0.3 && n < 30.0, "{}: {} sessions/week", s.name, n);
        }
    }
}
