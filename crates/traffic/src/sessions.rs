//! Discrete session sampling.
//!
//! The paper's probes observe individual IP sessions on the GTP user plane
//! (§2). This module samples synthetic sessions from the
//! [`DemandModel`]'s expectations: per
//! `(service, commune)` pair a Poisson number of sessions, each with a
//! start hour drawn from the applicable weekly profile, a log-normal
//! volume, a serving technology, and a true user position jittered inside
//! the commune. Sessions then flow through the `mobilenet-netsim`
//! collection pipeline, which re-aggregates them — with classification
//! loss and localization error — into a
//! [`TrafficDataset`](crate::dataset::TrafficDataset).
//!
//! Aggregates are unbiased with respect to the expected-value path: the
//! `volume_scale` thinning trades per-session granularity for speed
//! without moving the means.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobilenet_geo::{CommuneId, Point};

use crate::demand::DemandModel;
use crate::dist::{log_normal_with_mean, poisson, Categorical};
use crate::mobility::MobilityModel;
use crate::week::{is_weekend_hour, HOURS_PER_DAY};

/// Radio technology serving a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// 3G (UTRAN → GGSN, Gn interface).
    G3,
    /// 4G (EUTRAN → P-GW, S5/S8 interface).
    G4,
}

/// One synthetic user session, as seen before the collection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Head-service index that truly generated the session.
    pub service: u16,
    /// The commune whose base station serves the session.
    pub commune: CommuneId,
    /// Hour-of-week of the session (0–167).
    pub start_hour: u16,
    /// Downlink volume, MB.
    pub dl_mb: f64,
    /// Uplink volume, MB.
    pub ul_mb: f64,
    /// Serving technology.
    pub tech: Technology,
    /// True position of the user when the session started.
    pub position: Point,
}

/// Seeded sampler of sessions from a demand model.
///
/// Generation is sharded **per service**: shard `s` covers service `s`
/// over every commune and draws from its own RNG stream, derived from the
/// master seed with [`mobilenet_par::seed_for`]. A shard's sessions are
/// therefore identical no matter which thread runs it or in what order —
/// the property the parallel collection pipeline builds on.
pub struct SessionGenerator<'a> {
    model: &'a DemandModel,
    seed: u64,
    /// Per-service hour samplers for the national profile.
    national_hours: Vec<Categorical>,
    /// Per-service hour samplers for the TGV-blend profile.
    tgv_hours: Vec<Categorical>,
    /// Gravity commuting flows (present when `commuter_share > 0`).
    mobility: Option<MobilityModel>,
}

impl<'a> SessionGenerator<'a> {
    /// Creates a generator; `seed` controls everything downstream.
    pub fn new(model: &'a DemandModel, seed: u64) -> Self {
        let n_services = model.catalog().head().len();
        let national_hours = (0..n_services)
            .map(|s| Categorical::new(model.national_profile(s).hourly()))
            .collect();
        // A TGV commune index, if any, to borrow its blended profile.
        let tgv_commune = model
            .country()
            .communes()
            .iter()
            .position(|c| c.usage_class() == mobilenet_geo::UsageClass::Tgv);
        let tgv_hours = (0..n_services)
            .map(|s| {
                let profile = match tgv_commune {
                    Some(ci) => model.profile_for(s, ci),
                    None => model.national_profile(s),
                };
                Categorical::new(profile.hourly())
            })
            .collect();
        let mobility = if model.config().commuter_share > 0.0 {
            Some(MobilityModel::gravity(
                model.country(),
                model.config().commute_radius_km,
                2.0,
            ))
        } else {
            None
        };
        SessionGenerator {
            model,
            seed: seed ^ 0x7365_7373_696f_6e73, // "sessions"
            national_hours,
            tgv_hours,
            mobility,
        }
    }

    /// Number of independent shards generation splits into (one per head
    /// service).
    pub fn shards(&self) -> usize {
        self.model.catalog().head().len()
    }

    /// Generates every session of the measurement week, invoking `sink` for
    /// each. Sessions are produced service-major, commune-minor — shard
    /// order — and each shard draws from its own seed-derived RNG stream,
    /// so the serial order here matches a per-shard parallel run exactly.
    ///
    /// Returns the number of sessions generated.
    pub fn generate(&self, mut sink: impl FnMut(&Session)) -> u64 {
        (0..self.shards()).map(|shard| self.generate_shard(shard, &mut sink)).sum()
    }

    /// Generates one shard — service `shard` over every commune — from the
    /// shard's own RNG stream. Safe to call from any thread, in any order;
    /// the shard's output depends only on `(model, seed, shard)`.
    ///
    /// Returns the number of sessions generated. When observability is
    /// enabled, the count also lands on the `traffic.sessions` counter —
    /// per-shard totals commute, so the counter is exact at any thread
    /// count.
    pub fn generate_shard(&self, shard: usize, mut sink: impl FnMut(&Session)) -> u64 {
        assert!(shard < self.shards(), "shard {shard} out of range");
        let mut rng =
            StdRng::seed_from_u64(mobilenet_par::seed_for(self.seed, shard as u64));
        let n_communes = self.model.country().communes().len();
        let mut count = 0u64;
        for ci in 0..n_communes {
            count += self.generate_pair(shard, ci, &mut rng, &mut sink);
        }
        mobilenet_obs::add("traffic.sessions", count);
        count
    }

    /// Generates the sessions of one `(service, commune)` pair.
    fn generate_pair(
        &self,
        service: usize,
        commune: usize,
        rng: &mut StdRng,
        sink: &mut impl FnMut(&Session),
    ) -> u64 {
        let Self { model, national_hours, tgv_hours, mobility, .. } = self;
        let model = *model;
        let cfg = model.config();
        let spec = &model.catalog().head()[service];
        let weekly_dl = model.weekly_dl_mb(service, commune);
        if weekly_dl <= 0.0 {
            return 0;
        }
        // Thinned session count: volumes are scaled up to compensate.
        let mean_session_dl = spec.session_dl_mb * cfg.volume_scale;
        let lambda = weekly_dl / mean_session_dl;
        let n = poisson(&mut *rng, lambda);
        if n == 0 {
            return 0;
        }

        let info = &model.country().communes()[commune];
        let is_tgv = info.usage_class() == mobilenet_geo::UsageClass::Tgv;
        // Event-affected pairs sample hours from their surged weights;
        // everyone else uses the precomputed per-service samplers.
        let event_hours = model
            .event_weights(service, commune)
            .map(Categorical::new);
        let hours = match &event_hours {
            Some(h) => h,
            None if is_tgv => &tgv_hours[service],
            None => &national_hours[service],
        };

        for _ in 0..n {
            let start_hour = hours.sample(&mut *rng) as u16;
            // Commuting extension: relocate a share of working-hours
            // sessions to the subscriber's work commune.
            let info = match mobility {
                Some(mob)
                    if is_working_hour(start_hour as usize)
                        && rng.gen::<f64>() < cfg.commuter_share =>
                {
                    let work = mob.sample_work(commune, &mut *rng) as usize;
                    &model.country().communes()[work]
                }
                _ => info,
            };
            let radius = (info.area_km2 / std::f64::consts::PI).sqrt();
            let dl_mb =
                log_normal_with_mean(&mut *rng, mean_session_dl, cfg.session_volume_sigma);
            let ul_mb = dl_mb * spec.ul_ratio;
            // Technology: the 4G-dependent demand share rides 4G where
            // available; without 4G everything falls back to 3G (the
            // 4G-only demand share was already removed by the spatial
            // gating in the demand model).
            let tech = if info.coverage.has_4g && rng.gen::<f64>() < tech_4g_share(spec) {
                Technology::G4
            } else {
                Technology::G3
            };
            // True position: uniform in a disc of the commune's area.
            let r = radius * rng.gen::<f64>().sqrt();
            let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            let position = Point::new(
                info.centroid.x + r * theta.cos(),
                info.centroid.y + r * theta.sin(),
            );
            sink(&Session {
                service: service as u16,
                commune: info.id,
                start_hour,
                dl_mb,
                ul_mb,
                tech,
                position,
            });
        }
        n
    }
}

/// Whether an hour-of-week falls in commuting-relevant working hours
/// (9 am–6 pm on a working day).
fn is_working_hour(hour_of_week: usize) -> bool {
    let hod = hour_of_week % HOURS_PER_DAY;
    !is_weekend_hour(hour_of_week) && (9..18).contains(&hod)
}

/// Probability that a session of this service is served over 4G when 4G is
/// available: the 4G-dependent share plus half of the indifferent share.
fn tech_4g_share(spec: &crate::catalog::ServiceSpec) -> f64 {
    let dep = spec.spatial.fourg_share;
    dep + (1.0 - dep) * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ServiceCatalog;
    use crate::config::TrafficConfig;
    use crate::dataset::Direction;
    use crate::week::HOURS_PER_WEEK;
    use mobilenet_geo::{Country, CountryConfig};
    use std::sync::Arc;

    fn model() -> DemandModel {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(10));
        DemandModel::new(country, catalog, TrafficConfig::fast(), 11)
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let collect = |seed: u64| {
            let mut out = Vec::new();
            SessionGenerator::new(&m, seed).generate(|s| out.push(s.clone()));
            out
        };
        let a = collect(1);
        let b = collect(1);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
        let c = collect(2);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn sampled_totals_converge_to_expectation() {
        let m = model();
        let expected = m.expected_dataset();
        let mut dl_by_service = [0.0f64; 20];
        SessionGenerator::new(&m, 7).generate(|s| {
            dl_by_service[s.service as usize] += s.dl_mb;
        });
        // Compare the largest services (enough sessions for a tight CLT
        // bound even with fast-config thinning).
        for (s, &got) in dl_by_service.iter().enumerate().take(3) {
            let want = expected.national_weekly(Direction::Down, s);
            let err = (got - want).abs() / want;
            assert!(err < 0.15, "service {s}: got {got}, want {want} (err {err:.3})");
        }
    }

    #[test]
    fn session_fields_are_within_domain() {
        let m = model();
        let mut n = 0u64;
        SessionGenerator::new(&m, 3).generate(|s| {
            n += 1;
            assert!((s.start_hour as usize) < HOURS_PER_WEEK);
            assert!(s.dl_mb > 0.0);
            assert!(s.ul_mb >= 0.0);
            assert!((s.service as usize) < 20);
            assert!((s.commune.index()) < m.country().communes().len());
            // Position within ~the commune's disc of its centroid.
            let c = &m.country().communes()[s.commune.index()];
            let max_r = (c.area_km2 / std::f64::consts::PI).sqrt() + 1e-9;
            assert!(s.position.distance(&c.centroid) <= max_r);
        });
        assert!(n > 1_000, "only {n} sessions generated");
    }

    #[test]
    fn ul_tracks_service_ratio() {
        let m = model();
        SessionGenerator::new(&m, 9).generate(|s| {
            let ratio = m.catalog().head()[s.service as usize].ul_ratio;
            assert!((s.ul_mb - s.dl_mb * ratio).abs() < 1e-9);
        });
    }

    #[test]
    fn netflix_sessions_prefer_4g() {
        let m = model();
        let netflix =
            m.catalog().head().iter().position(|s| s.name == "Netflix").unwrap() as u16;
        let mms = m.catalog().head().iter().position(|s| s.name == "MMS").unwrap() as u16;
        let mut netflix_4g = (0u64, 0u64);
        let mut mms_4g = (0u64, 0u64);
        SessionGenerator::new(&m, 5).generate(|s| {
            let covered = m.country().communes()[s.commune.index()].coverage.has_4g;
            if !covered {
                return;
            }
            if s.service == netflix {
                netflix_4g.1 += 1;
                if s.tech == Technology::G4 {
                    netflix_4g.0 += 1;
                }
            } else if s.service == mms {
                mms_4g.1 += 1;
                if s.tech == Technology::G4 {
                    mms_4g.0 += 1;
                }
            }
        });
        let nf = netflix_4g.0 as f64 / netflix_4g.1.max(1) as f64;
        let mm = mms_4g.0 as f64 / mms_4g.1.max(1) as f64;
        assert!(nf > mm, "netflix 4G share {nf} must exceed MMS {mm}");
    }

    #[test]
    fn commuting_relocates_working_hours_sessions_to_cities() {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(10));
        let mut cfg = TrafficConfig::fast();
        cfg.commuter_share = 0.6;
        let with = DemandModel::new(country.clone(), catalog.clone(), cfg, 11);
        let without = DemandModel::new(country, catalog, TrafficConfig::fast(), 11);

        let urban_daytime = |m: &DemandModel| -> f64 {
            let mut urban = 0.0;
            let mut total = 0.0;
            SessionGenerator::new(m, 5).generate(|s| {
                let hod = s.start_hour as usize % 24;
                let weekday = s.start_hour >= 48;
                if weekday && (9..18).contains(&hod) {
                    total += s.dl_mb;
                    let class =
                        m.country().communes()[s.commune.index()].usage_class();
                    if class == mobilenet_geo::UsageClass::Urban {
                        urban += s.dl_mb;
                    }
                }
            });
            urban / total
        };
        let share_with = urban_daytime(&with);
        let share_without = urban_daytime(&without);
        assert!(
            share_with > share_without + 0.02,
            "commuting should concentrate daytime traffic in cities: {share_with} vs {share_without}"
        );
    }

    #[test]
    fn hours_follow_the_profile() {
        let m = model();
        // Aggregate hours of service 0 over non-TGV communes and check the
        // empirical distribution correlates with the profile.
        let mut counts = vec![0.0f64; HOURS_PER_WEEK];
        SessionGenerator::new(&m, 13).generate(|s| {
            if s.service == 0 {
                counts[s.start_hour as usize] += 1.0;
            }
        });
        let profile = m.national_profile(0).hourly().to_vec();
        let r = mobilenet_timeseries::stats::pearson_r(&counts, &profile);
        assert!(r > 0.9, "hour histogram does not follow the profile: r = {r}");
    }
}
