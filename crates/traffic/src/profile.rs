//! Weekly temporal profiles of mobile services.
//!
//! §4 of the paper shows each service's nationwide time series combines a
//! classic baseline (diurnal cycle, weekday/weekend dichotomy) with a
//! *service-specific arrangement of activity peaks* at the seven topical
//! times — so distinctive that k-shape finds no consistent grouping. The
//! profile builder reproduces exactly that decomposition: a common
//! baseline, per-service Gaussian peak bumps from the catalog's palette,
//! and a mild service-specific shape perturbation.
//!
//! TGV corridors get their own profile (Figure 11 bottom: "subscribers on
//! TGVs have quite different temporal patterns"), driven by train schedules
//! rather than resident rhythms.

use crate::catalog::ServiceSpec;
use crate::week::{split_hour, HOURS_PER_DAY, HOURS_PER_WEEK};

/// Baseline weekday hourly weights (hour-of-day 0–23).
///
/// The shape is engineered around the paper's smoothed z-score detector
/// (lag 2, threshold 3), for which a sample flags exactly when the slope
/// *accelerates*: `Δnow > Δprev` on a rise, or a rise faster than twice
/// the preceding dip step. The baseline therefore (i) enters its morning
/// ramp from an exactly-flat trough pair (zero window variance → no
/// flag), (ii) keeps every rise concave, and (iii) separates the topical
/// regions with shallow dips (late morning, mid-afternoon, pre-evening)
/// whose exit rises stay under the 2× rule. The result: the *baseline* is
/// peak-free, and activity peaks come exclusively from the per-service
/// topical-time bumps — the paper's own decomposition of traffic into
/// "classic patterns" plus service-specific peaks.
const WEEKDAY_BASE: [f64; HOURS_PER_DAY] = [
    0.254, 0.212, 0.171, 0.131, 0.092, 0.178, 0.235, 0.30, 0.355, 0.395, 0.42, 0.396, 0.415,
    0.429, 0.408, 0.391, 0.377, 0.388, 0.394, 0.379, 0.385, 0.388, 0.341, 0.297,
];

/// Morning-ramp override for commute-peaked services: their day starts
/// abruptly at 6 am (the surge IS the commute), placing the detector's
/// rising front within snap distance of the 8 am commute. Other services
/// ramp smoothly from ~5 am and produce no morning front at all.
const COMMUTE_RAMP: [(usize, f64); 3] = [(5, 0.105), (6, 0.1175), (7, 0.27)];

/// Morning-ramp override for morning-break-peaked services (the paper's
/// "student" services): near-silence until classes start, then an abrupt
/// surge at 9–10 am whose front snaps to the morning break.
const BREAK_RAMP: [(usize, f64); 5] =
    [(5, 0.10), (6, 0.085), (7, 0.071), (8, 0.058), (9, 0.23)];

/// Baseline weekend hourly weights (hour-of-day 0–23); same construction,
/// with a later morning and flatter day.
const WEEKEND_BASE: [f64; HOURS_PER_DAY] = [
    0.262, 0.224, 0.187, 0.151, 0.116, 0.18, 0.242, 0.30, 0.35, 0.388, 0.412, 0.39, 0.407,
    0.419, 0.40, 0.384, 0.371, 0.381, 0.387, 0.373, 0.379, 0.382, 0.34, 0.30,
];

/// Width (hours) of a peak bump.
const PEAK_SIGMA: f64 = 0.7;

/// Bump influence is truncated beyond this distance (hours) so peaks stay
/// local hills and the baseline's engineered flats/dips survive.
const PEAK_REACH: f64 = 2.0;

/// A normalized weekly demand profile: 168 hourly weights summing to one.
#[derive(Debug, Clone, PartialEq)]
pub struct WeekProfile {
    hourly: Vec<f64>,
}

impl WeekProfile {
    /// Builds the nationwide profile of a head service from its peak
    /// palette and a deterministic per-service shape perturbation.
    pub fn for_service(spec: &ServiceSpec) -> Self {
        // Deterministic per-service perturbations derived from the id:
        // a baseline exponent (day-shape contrast) and a weekend factor.
        let h = fxhash(spec.id.0 as u64);
        let gamma = 0.85 + 0.30 * unit(h); // in [0.85, 1.15]
        let weekend_scale = 0.75 + 0.50 * unit(fxhash(h)); // in [0.75, 1.25]

        let commute_service =
            spec.peak_at(crate::week::TopicalTime::MorningCommute).is_some();
        let break_service =
            spec.peak_at(crate::week::TopicalTime::MorningBreak).is_some();
        let mut hourly = Vec::with_capacity(HOURS_PER_WEEK);
        for how in 0..HOURS_PER_WEEK {
            let (day, hod) = split_hour(how);
            let base = if day.is_weekend() {
                WEEKEND_BASE[hod].powf(gamma) * weekend_scale
            } else {
                let mut b = WEEKDAY_BASE[hod];
                if commute_service {
                    for (h, v) in COMMUTE_RAMP {
                        if hod == h {
                            b = v;
                        }
                    }
                } else if break_service {
                    for (h, v) in BREAK_RAMP {
                        if hod == h {
                            b = v;
                        }
                    }
                }
                b.powf(gamma)
            };
            let mut v = base;
            for peak in &spec.peaks {
                if peak.time.is_weekend() != day.is_weekend() {
                    continue;
                }
                let d = hod as f64 - peak.time.hour_of_day() as f64;
                if d.abs() > PEAK_REACH {
                    continue;
                }
                v *= 1.0 + peak.intensity * (-d * d / (2.0 * PEAK_SIGMA * PEAK_SIGMA)).exp();
            }
            hourly.push(v);
        }
        Self::normalized(hourly)
    }

    /// The TGV-corridor profile: demand follows train schedules — strong
    /// morning and late-afternoon travel waves on working days, Saturday
    /// morning departures, a pronounced Sunday-evening return wave, and
    /// near silence at night when no trains run.
    ///
    /// The per-day curves share the baseline's flat trough pairs and dip
    /// hours so the *national mixture* (≈ 90% service profile + ≈ 10%
    /// corridor demand) stays quiet under the peak detector; only the
    /// per-service topical bumps flag.
    pub fn tgv() -> Self {
        /// Working-day train wave (commute-heavy, midday-light).
        const WD: [f64; HOURS_PER_DAY] = [
            0.10, 0.085, 0.072, 0.062, 0.05, 0.115, 0.19, 0.27, 0.34, 0.38, 0.35, 0.30,
            0.31, 0.315, 0.295, 0.27, 0.25, 0.30, 0.35, 0.32, 0.33, 0.335, 0.22, 0.15,
        ];
        /// Saturday: morning departures dominate.
        const SAT: [f64; HOURS_PER_DAY] = [
            0.11, 0.095, 0.08, 0.068, 0.055, 0.12, 0.20, 0.29, 0.36, 0.40, 0.37, 0.32,
            0.33, 0.335, 0.315, 0.29, 0.27, 0.29, 0.31, 0.29, 0.30, 0.305, 0.21, 0.15,
        ];
        /// Sunday: the evening return wave dominates.
        const SUN: [f64; HOURS_PER_DAY] = [
            0.11, 0.095, 0.08, 0.068, 0.055, 0.10, 0.15, 0.21, 0.26, 0.29, 0.27, 0.24,
            0.25, 0.255, 0.245, 0.235, 0.23, 0.32, 0.42, 0.40, 0.43, 0.445, 0.30, 0.18,
        ];
        let mut hourly = Vec::with_capacity(HOURS_PER_WEEK);
        for how in 0..HOURS_PER_WEEK {
            let (day, hod) = split_hour(how);
            let curve = match day.0 {
                0 => &SAT,
                1 => &SUN,
                _ => &WD,
            };
            hourly.push(curve[hod]);
        }
        Self::normalized(hourly)
    }

    /// Builds a profile directly from raw non-negative hourly weights.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`HOURS_PER_WEEK`] non-negative weights with a
    /// positive sum are supplied.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), HOURS_PER_WEEK, "need one weight per hour of the week");
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        Self::normalized(weights)
    }

    fn normalized(mut hourly: Vec<f64>) -> Self {
        let total: f64 = hourly.iter().sum();
        assert!(total > 0.0, "profile weights must not all be zero");
        for v in &mut hourly {
            *v /= total;
        }
        WeekProfile { hourly }
    }

    /// The hourly weights (length [`HOURS_PER_WEEK`], summing to one).
    pub fn hourly(&self) -> &[f64] {
        &self.hourly
    }

    /// The weight of a single hour-of-week.
    #[inline]
    pub fn value(&self, hour_of_week: usize) -> f64 {
        self.hourly[hour_of_week]
    }

    /// Blends two profiles: `alpha` of `self` plus `1 − alpha` of `other`.
    pub fn blend(&self, other: &WeekProfile, alpha: f64) -> WeekProfile {
        assert!((0.0..=1.0).contains(&alpha));
        let hourly = self
            .hourly
            .iter()
            .zip(other.hourly.iter())
            .map(|(a, b)| alpha * a + (1.0 - alpha) * b)
            .collect();
        Self::normalized(hourly)
    }
}

/// A small deterministic integer hash (SplitMix64 finalizer).
fn fxhash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ServiceCatalog;

    fn catalog() -> ServiceCatalog {
        ServiceCatalog::standard(0)
    }

    #[test]
    fn profiles_are_normalized() {
        let c = catalog();
        for s in c.head() {
            let p = WeekProfile::for_service(s);
            let sum: f64 = p.hourly().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}", s.name);
            assert_eq!(p.hourly().len(), HOURS_PER_WEEK);
            assert!(p.hourly().iter().all(|v| *v >= 0.0));
        }
        let t = WeekProfile::tgv();
        assert!((t.hourly().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn night_hours_are_quiet() {
        let c = catalog();
        let p = WeekProfile::for_service(&c.head()[0]);
        // 4 am Monday vs 1 pm Monday.
        let night = p.value(2 * HOURS_PER_DAY + 4);
        let midday = p.value(2 * HOURS_PER_DAY + 13);
        assert!(midday > 3.0 * night, "midday {midday} vs night {night}");
    }

    #[test]
    fn peaks_raise_their_topical_hour() {
        let c = catalog();
        // iTunes has a strong (1.45) weekday-midday peak.
        let itunes = c.by_name("iTunes").unwrap();
        let p = WeekProfile::for_service(itunes);
        let midday = p.value(2 * HOURS_PER_DAY + 13);
        let other = p.value(2 * HOURS_PER_DAY + 16); // mid-afternoon lull
        assert!(midday > 1.6 * other, "midday {midday} vs afternoon {other}");
    }

    #[test]
    fn weekend_peaks_do_not_leak_into_weekdays() {
        let c = catalog();
        // MMS has a weekend-midday peak but only a moderate weekday one.
        let mms = c.by_name("MMS").unwrap();
        let p = WeekProfile::for_service(mms);
        let sat_midday = p.value(13);
        let sat_next = p.value(16);
        assert!(sat_midday > sat_next, "weekend midday bump missing");
    }

    #[test]
    fn service_profiles_are_distinct() {
        let c = catalog();
        let profiles: Vec<WeekProfile> =
            c.head().iter().map(WeekProfile::for_service).collect();
        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                let max_diff = profiles[i]
                    .hourly()
                    .iter()
                    .zip(profiles[j].hourly().iter())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_diff > 1e-4,
                    "{} and {} have identical profiles",
                    c.head()[i].name,
                    c.head()[j].name
                );
            }
        }
    }

    #[test]
    fn tgv_profile_differs_from_every_service_profile() {
        let c = catalog();
        let tgv = WeekProfile::tgv();
        for s in c.head() {
            let p = WeekProfile::for_service(s);
            let corr = mobilenet_timeseries::stats::pearson_r(tgv.hourly(), p.hourly());
            assert!(corr < 0.9, "TGV profile too close to {}: r = {corr}", s.name);
        }
    }

    #[test]
    fn tgv_has_sunday_return_wave() {
        let t = WeekProfile::tgv();
        // Sunday evening (return wave) outweighs the same hour on Tuesday
        // and on Saturday.
        let sun_evening = t.value(HOURS_PER_DAY + 20);
        let tue_evening = t.value(3 * HOURS_PER_DAY + 20);
        let sat_evening = t.value(20);
        assert!(sun_evening > tue_evening, "{sun_evening} vs tue {tue_evening}");
        assert!(sun_evening > sat_evening, "{sun_evening} vs sat {sat_evening}");
        // And Saturday morning departures outweigh Sunday morning.
        assert!(t.value(8) > t.value(HOURS_PER_DAY + 8));
    }

    #[test]
    fn blend_interpolates() {
        let c = catalog();
        let a = WeekProfile::for_service(&c.head()[0]);
        let b = WeekProfile::tgv();
        let m = a.blend(&b, 0.5);
        let sum: f64 = m.hourly().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for (x, y) in a.blend(&b, 1.0).hourly().iter().zip(a.hourly().iter()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in a.blend(&b, 0.0).hourly().iter().zip(b.hourly().iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn from_weights_validates() {
        let ok = WeekProfile::from_weights(vec![1.0; HOURS_PER_WEEK]);
        assert!((ok.value(0) - 1.0 / HOURS_PER_WEEK as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per hour")]
    fn from_weights_rejects_wrong_length() {
        WeekProfile::from_weights(vec![1.0; 10]);
    }
}
