//! Configuration of the workload generator.

use crate::events::EventSpec;

/// Parameters of demand generation, independent of the country geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Operator market share: the fraction of residents that are
    /// subscribers (Orange held ≈ 45% of France's 65 M inhabitants: a 30 M
    /// subscriber base, §2).
    pub subscriber_share: f64,
    /// Number of tail services beyond the 20-head selection (the paper
    /// observes "over 500 mobile services", §3).
    pub n_tail_services: usize,
    /// σ of the log-normal *commune activity* factor shared by all
    /// services in a commune. This common component is what makes
    /// per-user maps of different services correlate (Figure 10).
    pub commune_taste_sigma: f64,
    /// σ of the log-normal *service-specific* taste factor per
    /// (commune, service) pair. The larger it is relative to
    /// [`TrafficConfig::commune_taste_sigma`], the lower the pairwise
    /// spatial correlation.
    pub service_taste_sigma: f64,
    /// Fraction of a TGV commune's demand that follows the train-schedule
    /// profile instead of the service's own profile (the remainder comes
    /// from the few residents).
    pub tgv_profile_weight: f64,
    /// σ of the log-normal volume jitter of individual sessions.
    pub session_volume_sigma: f64,
    /// σ of the multiplicative log-normal fluctuation applied to each
    /// (service, hour) of the weekly demand profile. Real aggregate demand
    /// is not a smooth curve — hour-to-hour fluctuations of a few percent
    /// are what keeps the smoothed z-score detector's trailing window
    /// honest (noise-free curves put it in pathological regimes no real
    /// dataset exhibits).
    pub hourly_noise_sigma: f64,
    /// Session thinning factor: sessions are generated at `1/volume_scale`
    /// of the natural rate, each carrying `volume_scale` times the volume.
    /// Aggregates are unbiased; only per-session granularity is coarsened.
    pub volume_scale: f64,
    /// Fraction of traffic volume the DPI stage can classify (the paper's
    /// proprietary classifier reaches 88%, §2).
    pub classified_fraction: f64,
    /// Extension: fraction of working-hours (9 am–6 pm, weekdays) sessions
    /// that happen at the subscriber's *work* commune, drawn from a gravity
    /// commuting model. 0 (the default) reproduces the paper's residential
    /// calibration; the ablation harness sweeps it.
    pub commuter_share: f64,
    /// Extension: gravity-model commute radius, km.
    pub commute_radius_km: f64,
    /// Extension: exceptional events injected into the week (empty by
    /// default — the paper deliberately picked an event-free week).
    pub events: Vec<EventSpec>,
}

impl TrafficConfig {
    /// Defaults matching the paper's reported magnitudes.
    pub fn standard() -> Self {
        TrafficConfig {
            subscriber_share: 0.45,
            n_tail_services: 480,
            commune_taste_sigma: 0.45,
            service_taste_sigma: 0.25,
            tgv_profile_weight: 0.85,
            session_volume_sigma: 0.8,
            hourly_noise_sigma: 0.005,
            volume_scale: 40.0,
            classified_fraction: 0.88,
            commuter_share: 0.0,
            commute_radius_km: 35.0,
            events: Vec::new(),
        }
    }

    /// A lighter configuration for unit tests: fewer tail services and
    /// stronger thinning.
    pub fn fast() -> Self {
        TrafficConfig { n_tail_services: 80, volume_scale: 200.0, ..Self::standard() }
    }

    /// The national measurement tier: [`TrafficConfig::standard`] with
    /// session thinning relaxed to `volume_scale = 10`, so a France-scale
    /// geography (30 M residents, 45% subscriber share) emits sessions at
    /// the paper's order of magnitude — ~10⁸ over the week — instead of
    /// the figure-generation tier's ~10⁶–10⁷.
    pub fn national() -> Self {
        TrafficConfig { volume_scale: 10.0, ..Self::standard() }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.subscriber_share) {
            return Err("subscriber_share must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.tgv_profile_weight) {
            return Err("tgv_profile_weight must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.classified_fraction) {
            return Err("classified_fraction must be in [0,1]".into());
        }
        if self.volume_scale < 1.0 {
            return Err("volume_scale must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.commuter_share) {
            return Err("commuter_share must be in [0,1]".into());
        }
        if self.commute_radius_km <= 0.0 {
            return Err("commute_radius_km must be positive".into());
        }
        for event in &self.events {
            event.validate().map_err(|e| format!("event {:?}: {e}", event.name))?;
        }
        for (name, sigma) in [
            ("commune_taste_sigma", self.commune_taste_sigma),
            ("service_taste_sigma", self.service_taste_sigma),
            ("session_volume_sigma", self.session_volume_sigma),
            ("hourly_noise_sigma", self.hourly_noise_sigma),
        ] {
            if !(0.0..=3.0).contains(&sigma) {
                return Err(format!("{name} must be in [0,3]"));
            }
        }
        Ok(())
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TrafficConfig::standard().validate().unwrap();
        TrafficConfig::fast().validate().unwrap();
        TrafficConfig::national().validate().unwrap();
    }

    #[test]
    fn national_relaxes_thinning_only() {
        let national = TrafficConfig::national();
        let standard = TrafficConfig::standard();
        assert!(national.volume_scale < standard.volume_scale / 3.0);
        assert_eq!(national.n_tail_services, standard.n_tail_services);
        assert_eq!(national.subscriber_share, standard.subscriber_share);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut c = TrafficConfig::standard();
        c.subscriber_share = 1.2;
        assert!(c.validate().is_err());

        let mut c = TrafficConfig::standard();
        c.volume_scale = 0.5;
        assert!(c.validate().is_err());

        let mut c = TrafficConfig::standard();
        c.commune_taste_sigma = 5.0;
        assert!(c.validate().is_err());

        let mut c = TrafficConfig::standard();
        c.classified_fraction = -0.1;
        assert!(c.validate().is_err());

        let mut c = TrafficConfig::standard();
        c.tgv_profile_weight = 2.0;
        assert!(c.validate().is_err());

        let mut c = TrafficConfig::standard();
        c.commuter_share = -0.1;
        assert!(c.validate().is_err());

        let mut c = TrafficConfig::standard();
        c.commute_radius_km = 0.0;
        assert!(c.validate().is_err());
    }
}
