//! Random samplers built on `rand`'s uniform source.
//!
//! The workspace deliberately avoids distribution crates: the handful of
//! samplers the workload generator needs (normal, log-normal, Poisson,
//! categorical) are implemented here from first principles and tested
//! against their analytical moments.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples a log-normal with **unit mean** and shape `sigma` (the σ of the
/// underlying normal). Useful as a multiplicative jitter that leaves
/// expectations unchanged: `E[X] = 1` for any σ.
pub fn unit_mean_log_normal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    let mu = -sigma * sigma / 2.0;
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples a log-normal with the given **linear-scale mean** and shape
/// `sigma`.
pub fn log_normal_with_mean<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(mean > 0.0, "log-normal mean must be positive");
    mean * unit_mean_log_normal(rng, sigma)
}

/// Samples a Poisson variate with rate `lambda`.
///
/// Uses Knuth's product-of-uniforms method for small rates and a normal
/// approximation (continuity-corrected, clamped at zero) for large ones —
/// accurate to well under a percent for the rates the generator uses.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "Poisson rate must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let x = normal(rng, lambda, lambda.sqrt()) + 0.5;
        if x < 0.0 {
            0
        } else {
            x.floor() as u64
        }
    }
}

/// A categorical sampler over fixed weights, using precomputed cumulative
/// sums and binary search — `O(log n)` per draw.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds the sampler from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Categorical { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn unit_mean_log_normal_really_has_unit_mean() {
        let mut r = rng();
        for sigma in [0.1, 0.5, 1.0] {
            let n = 200_000;
            let mean: f64 =
                (0..n).map(|_| unit_mean_log_normal(&mut r, sigma)).sum::<f64>() / n as f64;
            assert!((mean - 1.0).abs() < 0.03, "sigma {sigma}: mean {mean}");
        }
    }

    #[test]
    fn log_normal_with_mean_scales() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|_| log_normal_with_mean(&mut r, 250.0, 0.7)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() / 250.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_matches_rate_small_and_large() {
        let mut r = rng();
        for lambda in [0.5, 3.0, 12.0, 80.0, 400.0] {
            let n = 50_000;
            let samples: Vec<f64> = (0..n).map(|_| poisson(&mut r, lambda) as f64).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var =
                samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            assert!((mean - lambda).abs() / lambda < 0.05, "λ {lambda}: mean {mean}");
            assert!((var - lambda).abs() / lambda < 0.10, "λ {lambda}: var {var}");
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let cat = Categorical::new(&[1.0, 0.0, 3.0]);
        let n = 100_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[cat.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - 0.25).abs() < 0.01, "p0 {p0}");
        assert_eq!(cat.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
            assert_eq!(poisson(&mut a, 5.0), poisson(&mut b, 5.0));
        }
    }
}
