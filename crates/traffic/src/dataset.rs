//! The aggregated traffic dataset — the shape of the paper's data after
//! §2's commune-level aggregation.
//!
//! The analyses never need the full `service × commune × hour` cube; they
//! consume three marginal tables, which is also what keeps a
//! 36,000-commune country tractable:
//!
//! * **national hourly** series per service (Figures 4–7),
//! * **commune weekly** totals per service (Figures 8–10),
//! * **usage-class hourly** series per service (Figure 11),
//!
//! plus the weekly national totals of the ~480 tail services (Figure 2)
//! and the per-commune subscriber counts used for per-user normalization.

use mobilenet_geo::{CommuneId, Country, UsageClass};

use crate::week::HOURS_PER_WEEK;

/// Traffic direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Network → user.
    Down,
    /// User → network.
    Up,
}

impl Direction {
    /// Both directions, downlink first.
    pub const BOTH: [Direction; 2] = [Direction::Down, Direction::Up];

    /// Index into per-direction arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::Down => 0,
            Direction::Up => 1,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Down => "downlink",
            Direction::Up => "uplink",
        }
    }
}

/// Aggregated measurement tables for one week of traffic.
///
/// All volumes are in MB. `service` indices refer to the head catalog;
/// tail services only appear in the national weekly ranking table.
#[derive(Debug, Clone)]
pub struct TrafficDataset {
    n_services: usize,
    n_communes: usize,
    /// `[dir][service][hour]`, flattened.
    national_hourly: Vec<f64>,
    /// `[dir][service][commune]`, flattened.
    commune_weekly: Vec<f64>,
    /// `[dir][service][class][hour]`, flattened.
    class_hourly: Vec<f64>,
    /// `[dir][tail rank]`, flattened: weekly national volumes of tail
    /// services.
    tail_weekly: Vec<f64>,
    /// Unclassified volume per direction (the DPI residue).
    unclassified: [f64; 2],
    /// Average subscribers per commune.
    commune_users: Vec<f64>,
    /// Usage class of each commune, by [`UsageClass::index`].
    commune_class: Vec<u8>,
    /// Subscribers per usage class.
    class_users: [f64; 4],
}

impl TrafficDataset {
    /// Creates an empty dataset shaped for `country` with `n_services` head
    /// services, `n_tail` tail services, and the given subscriber share.
    pub fn new(country: &Country, n_services: usize, n_tail: usize, subscriber_share: f64) -> Self {
        let n_communes = country.communes().len();
        let commune_users: Vec<f64> = country
            .communes()
            .iter()
            .map(|c| c.population as f64 * subscriber_share)
            .collect();
        let commune_class: Vec<u8> =
            country.communes().iter().map(|c| c.usage_class().index() as u8).collect();
        let mut class_users = [0.0; 4];
        for (u, &cls) in commune_users.iter().zip(commune_class.iter()) {
            class_users[cls as usize] += u;
        }
        TrafficDataset {
            n_services,
            n_communes,
            national_hourly: vec![0.0; 2 * n_services * HOURS_PER_WEEK],
            commune_weekly: vec![0.0; 2 * n_services * n_communes],
            class_hourly: vec![0.0; 2 * n_services * 4 * HOURS_PER_WEEK],
            tail_weekly: vec![0.0; 2 * n_tail],
            unclassified: [0.0; 2],
            commune_users,
            commune_class,
            class_users,
        }
    }

    /// Number of head services.
    pub fn n_services(&self) -> usize {
        self.n_services
    }

    /// Number of communes.
    pub fn n_communes(&self) -> usize {
        self.n_communes
    }

    /// Number of tail services.
    pub fn n_tail(&self) -> usize {
        self.tail_weekly.len() / 2
    }

    #[inline]
    fn nh_index(&self, dir: usize, service: usize, hour: usize) -> usize {
        (dir * self.n_services + service) * HOURS_PER_WEEK + hour
    }

    #[inline]
    fn cw_index(&self, dir: usize, service: usize, commune: usize) -> usize {
        (dir * self.n_services + service) * self.n_communes + commune
    }

    #[inline]
    fn ch_index(&self, dir: usize, service: usize, class: usize, hour: usize) -> usize {
        ((dir * self.n_services + service) * 4 + class) * HOURS_PER_WEEK + hour
    }

    /// Records `mb` of classified traffic for `(service, commune, hour)`.
    pub fn add(
        &mut self,
        dir: Direction,
        service: usize,
        commune: CommuneId,
        hour: usize,
        mb: f64,
    ) {
        debug_assert!(service < self.n_services);
        debug_assert!(hour < HOURS_PER_WEEK);
        // Negative volume is a caller bug; NaN is tolerated (it can reach
        // here from degraded inputs) and handled by NaN-safe consumers.
        debug_assert!(mb.is_nan() || mb >= 0.0, "negative volume {mb}");
        let d = dir.index();
        let c = commune.index();
        let class = self.commune_class[c] as usize;
        let nh = self.nh_index(d, service, hour);
        let cw = self.cw_index(d, service, c);
        let ch = self.ch_index(d, service, class, hour);
        self.national_hourly[nh] += mb;
        self.commune_weekly[cw] += mb;
        self.class_hourly[ch] += mb;
    }

    /// Records `mb` of traffic the classifier could not attribute.
    pub fn add_unclassified(&mut self, dir: Direction, mb: f64) {
        debug_assert!(mb.is_nan() || mb >= 0.0, "negative volume {mb}");
        self.unclassified[dir.index()] += mb;
    }

    /// Records the weekly national volume of a tail service (by tail rank).
    pub fn add_tail(&mut self, dir: Direction, tail_rank: usize, mb: f64) {
        let n = self.n_tail();
        debug_assert!(tail_rank < n);
        self.tail_weekly[dir.index() * n + tail_rank] += mb;
    }

    /// Records one classified record's downlink and uplink volumes for
    /// `(service, commune, hour)` in a single call — the columnar fold's
    /// per-record accumulation step.
    ///
    /// Bit-identical to `add(Down, …, dl_mb)` followed by
    /// `add(Up, …, ul_mb)`: the six dense cells touched are pairwise
    /// distinct (downlink and uplink tables are disjoint halves), so
    /// fusing the two calls never regroups a floating-point sum. Taking
    /// the commune as a raw index skips the `CommuneId` wrapper the
    /// columnar batch does not store.
    #[inline]
    pub fn add_classified_both(
        &mut self,
        service: usize,
        commune: usize,
        hour: usize,
        dl_mb: f64,
        ul_mb: f64,
    ) {
        debug_assert!(service < self.n_services);
        debug_assert!(hour < HOURS_PER_WEEK);
        debug_assert!(dl_mb.is_nan() || dl_mb >= 0.0, "negative volume {dl_mb}");
        debug_assert!(ul_mb.is_nan() || ul_mb >= 0.0, "negative volume {ul_mb}");
        let class = self.commune_class[commune] as usize;
        let nh = self.nh_index(0, service, hour);
        let cw = self.cw_index(0, service, commune);
        let ch = self.ch_index(0, service, class, hour);
        self.national_hourly[nh] += dl_mb;
        self.commune_weekly[cw] += dl_mb;
        self.class_hourly[ch] += dl_mb;
        let nh = self.nh_index(1, service, hour);
        let cw = self.cw_index(1, service, commune);
        let ch = self.ch_index(1, service, class, hour);
        self.national_hourly[nh] += ul_mb;
        self.commune_weekly[cw] += ul_mb;
        self.class_hourly[ch] += ul_mb;
    }

    /// Records one tail record's volumes in both directions (see
    /// [`TrafficDataset::add_classified_both`]).
    #[inline]
    pub fn add_tail_both(&mut self, tail_rank: usize, dl_mb: f64, ul_mb: f64) {
        let n = self.n_tail();
        debug_assert!(tail_rank < n);
        self.tail_weekly[tail_rank] += dl_mb;
        self.tail_weekly[n + tail_rank] += ul_mb;
    }

    /// Records one unclassified record's volumes in both directions.
    #[inline]
    pub fn add_unclassified_both(&mut self, dl_mb: f64, ul_mb: f64) {
        self.unclassified[0] += dl_mb;
        self.unclassified[1] += ul_mb;
    }

    /// Bytes held by the dense accumulation tables (national-hourly,
    /// commune-weekly, class-hourly, tail, unclassified) — the footprint
    /// of one streaming-fold partial, reported through the
    /// `netsim.ingest.accumulator_bytes` gauge.
    pub fn dense_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
            * (self.national_hourly.len()
                + self.commune_weekly.len()
                + self.class_hourly.len()
                + self.tail_weekly.len()
                + self.unclassified.len())
    }

    /// The 168-hour national series of a head service.
    pub fn national_series(&self, dir: Direction, service: usize) -> &[f64] {
        let start = self.nh_index(dir.index(), service, 0);
        &self.national_hourly[start..start + HOURS_PER_WEEK]
    }

    /// Weekly national total of a head service.
    pub fn national_weekly(&self, dir: Direction, service: usize) -> f64 {
        self.national_series(dir, service).iter().sum()
    }

    /// A window `[start, end)` (hours of the week, clamped to
    /// `0..168`) of a head service's national series — the time-windowed
    /// accessor live queries use to answer over the watermarked prefix of
    /// a week still being ingested.
    pub fn national_series_window(
        &self,
        dir: Direction,
        service: usize,
        start: usize,
        end: usize,
    ) -> &[f64] {
        let series = self.national_series(dir, service);
        let end = end.min(HOURS_PER_WEEK);
        let start = start.min(end);
        &series[start..end]
    }

    /// Total volume of a head service over an hour window `[start, end)`
    /// (clamped): summed left-to-right over the window, so for
    /// `[0, 168)` it is bit-identical to [`national_weekly`]
    /// (same additions in the same order).
    ///
    /// [`national_weekly`]: TrafficDataset::national_weekly
    pub fn national_window_total(
        &self,
        dir: Direction,
        service: usize,
        start: usize,
        end: usize,
    ) -> f64 {
        self.national_series_window(dir, service, start, end).iter().sum()
    }

    /// The per-commune weekly totals of a head service.
    pub fn commune_vector(&self, dir: Direction, service: usize) -> &[f64] {
        let start = self.cw_index(dir.index(), service, 0);
        &self.commune_weekly[start..start + self.n_communes]
    }

    /// Weekly per-subscriber volume in every commune (0 where a commune has
    /// no subscribers) — the quantity mapped in Figure 9 and correlated in
    /// Figure 10.
    pub fn per_user_commune_vector(&self, dir: Direction, service: usize) -> Vec<f64> {
        self.commune_vector(dir, service)
            .iter()
            .zip(self.commune_users.iter())
            .map(|(v, u)| if *u > 0.0 { v / u } else { 0.0 })
            .collect()
    }

    /// The 168-hour series of a head service within one usage class.
    pub fn class_series(&self, dir: Direction, service: usize, class: UsageClass) -> &[f64] {
        let start = self.ch_index(dir.index(), service, class.index(), 0);
        &self.class_hourly[start..start + HOURS_PER_WEEK]
    }

    /// Per-subscriber hourly series of a head service within one usage
    /// class (Figure 11's unit).
    pub fn per_user_class_series(
        &self,
        dir: Direction,
        service: usize,
        class: UsageClass,
    ) -> Vec<f64> {
        let users = self.class_users[class.index()];
        self.class_series(dir, service, class)
            .iter()
            .map(|v| if users > 0.0 { v / users } else { 0.0 })
            .collect()
    }

    /// Weekly national volumes of the tail services, in tail-rank order.
    pub fn tail_weekly(&self, dir: Direction) -> &[f64] {
        let n = self.n_tail();
        &self.tail_weekly[dir.index() * n..(dir.index() + 1) * n]
    }

    /// The full service ranking: head weekly totals followed by tail
    /// volumes, sorted descending — the series of Figure 2.
    ///
    /// NaN-safe: a poisoned total cannot panic the sort
    /// ([`f64::total_cmp`] orders NaN ahead of every finite value in the
    /// descending ranking instead of aborting).
    pub fn full_ranking(&self, dir: Direction) -> Vec<f64> {
        let mut all: Vec<f64> =
            (0..self.n_services).map(|s| self.national_weekly(dir, s)).collect();
        all.extend_from_slice(self.tail_weekly(dir));
        all.sort_by(|a, b| b.total_cmp(a));
        all
    }

    /// Total classified volume in a direction (head + tail), MB.
    pub fn total_classified(&self, dir: Direction) -> f64 {
        let head: f64 = (0..self.n_services).map(|s| self.national_weekly(dir, s)).sum();
        let tail: f64 = self.tail_weekly(dir).iter().sum();
        head + tail
    }

    /// Unclassified volume in a direction, MB.
    pub fn unclassified(&self, dir: Direction) -> f64 {
        self.unclassified[dir.index()]
    }

    /// Total volume (classified + unclassified), MB.
    pub fn total(&self, dir: Direction) -> f64 {
        self.total_classified(dir) + self.unclassified(dir)
    }

    /// Average subscribers per commune.
    pub fn commune_users(&self) -> &[f64] {
        &self.commune_users
    }

    /// Subscribers per usage class, by [`UsageClass::index`].
    pub fn class_users(&self) -> [f64; 4] {
        self.class_users
    }

    /// Usage-class index of each commune.
    pub fn commune_classes(&self) -> &[u8] {
        &self.commune_class
    }

    /// Streams the dataset's sectioned CSV format to any writer, one
    /// logical row at a time — a dataset export never materializes the
    /// full text in memory.
    ///
    /// Format: a header line, then one line per logical row
    /// (`section,key...,values...`). Round-trips exactly through
    /// [`TrafficDataset::read_from`] / [`TrafficDataset::from_csv`]
    /// (floats are written with full precision).
    pub fn write_to<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(
            writer,
            "#mobilenet-dataset v1,{},{},{}",
            self.n_services,
            self.n_communes,
            self.n_tail()
        )?;
        writeln!(
            writer,
            "unclassified,{:e},{:e}",
            self.unclassified[0], self.unclassified[1]
        )?;
        let join = |xs: &[f64]| {
            xs.iter().map(|v| format!("{v:e}")).collect::<Vec<_>>().join(",")
        };
        writeln!(writer, "commune_users,{}", join(&self.commune_users))?;
        let classes: Vec<String> =
            self.commune_class.iter().map(|c| c.to_string()).collect();
        writeln!(writer, "commune_class,{}", classes.join(","))?;
        for d in 0..2 {
            for s in 0..self.n_services {
                let start = self.nh_index(d, s, 0);
                writeln!(
                    writer,
                    "national_hourly,{d},{s},{}",
                    join(&self.national_hourly[start..start + HOURS_PER_WEEK])
                )?;
                let cw = self.cw_index(d, s, 0);
                writeln!(
                    writer,
                    "commune_weekly,{d},{s},{}",
                    join(&self.commune_weekly[cw..cw + self.n_communes])
                )?;
                for class in 0..4 {
                    let ch = self.ch_index(d, s, class, 0);
                    writeln!(
                        writer,
                        "class_hourly,{d},{s},{class},{}",
                        join(&self.class_hourly[ch..ch + HOURS_PER_WEEK])
                    )?;
                }
            }
            let n = self.n_tail();
            writeln!(
                writer,
                "tail_weekly,{d},{}",
                join(&self.tail_weekly[d * n..(d + 1) * n])
            )?;
        }
        Ok(())
    }

    /// Serializes the dataset to its sectioned CSV text format —
    /// [`TrafficDataset::write_to`] into an in-memory buffer, kept for
    /// callers that want the text itself.
    pub fn to_csv(&self) -> String {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("writing a dataset to memory cannot fail");
        String::from_utf8(out).expect("dataset CSV is ASCII")
    }

    /// Reads a dataset incrementally from any reader — rows are parsed
    /// and applied one line at a time, so loading a multi-gigabyte export
    /// never holds more than one line of text.
    ///
    /// Errors carry the 1-based line number of the offending row (I/O
    /// failures report the line where reading stopped), so a caller (or a
    /// CLI user) can locate the problem in the file.
    pub fn read_from<R: std::io::BufRead>(mut reader: R) -> Result<TrafficDataset, DatasetError> {
        let mut line = String::new();
        let read_line = |reader: &mut R, line: &mut String, line_no: usize| {
            line.clear();
            let n = reader.read_line(line).map_err(|e| {
                DatasetError::at(line_no + 1, format!("i/o error: {e}"))
            })?;
            // Same semantics as `str::lines`: strip one `\n`, then at
            // most one `\r` before it.
            if line.ends_with('\n') {
                line.pop();
                if line.ends_with('\r') {
                    line.pop();
                }
            }
            Ok::<bool, DatasetError>(n > 0)
        };
        if !read_line(&mut reader, &mut line, 0)? {
            return Err(DatasetError::at(1, "empty input"));
        }
        let header = line
            .strip_prefix("#mobilenet-dataset v1,")
            .ok_or_else(|| DatasetError::at(1, "missing/unsupported header"))?;
        let dims: Vec<usize> = header
            .split(',')
            .map(|x| {
                x.parse().map_err(|e| DatasetError::at(1, format!("bad dimension: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if dims.len() != 3 {
            return Err(DatasetError::at(1, "header needs 3 dimensions"));
        }
        let (n_services, n_communes, n_tail) = (dims[0], dims[1], dims[2]);

        let mut ds = TrafficDataset {
            n_services,
            n_communes,
            national_hourly: vec![0.0; 2 * n_services * HOURS_PER_WEEK],
            commune_weekly: vec![0.0; 2 * n_services * n_communes],
            class_hourly: vec![0.0; 2 * n_services * 4 * HOURS_PER_WEEK],
            tail_weekly: vec![0.0; 2 * n_tail],
            unclassified: [0.0; 2],
            commune_users: vec![0.0; n_communes],
            commune_class: vec![0; n_communes],
            class_users: [0.0; 4],
        };

        let mut line_no = 1usize;
        while read_line(&mut reader, &mut line, line_no)? {
            line_no += 1;
            ds.apply_csv_line(&line, n_tail).map_err(|m| DatasetError::at(line_no, m))?;
        }

        // Recompute the derived class_users table.
        let mut class_users = [0.0; 4];
        for (u, &c) in ds.commune_users.iter().zip(ds.commune_class.iter()) {
            if c as usize >= 4 {
                return Err(DatasetError::at(0, "commune class out of range"));
            }
            class_users[c as usize] += u;
        }
        ds.class_users = class_users;
        Ok(ds)
    }

    /// Parses a dataset previously written by [`TrafficDataset::to_csv`]
    /// — [`TrafficDataset::read_from`] over an in-memory buffer.
    pub fn from_csv(text: &str) -> Result<TrafficDataset, DatasetError> {
        TrafficDataset::read_from(text.as_bytes())
    }

    /// Applies one body row of the CSV format to `self`.
    fn apply_csv_line(&mut self, line: &str, n_tail: usize) -> Result<(), String> {
        let (n_services, n_communes) = (self.n_services, self.n_communes);
        let parse_floats = |s: &str| -> Result<Vec<f64>, String> {
            s.split(',')
                .map(|x| x.parse::<f64>().map_err(|e| format!("bad float {x:?}: {e}")))
                .collect()
        };
        {
            let ds = self;
            let (section, rest) = line.split_once(',').ok_or("malformed line")?;
            match section {
                "unclassified" => {
                    let v = parse_floats(rest)?;
                    if v.len() != 2 {
                        return Err("unclassified needs 2 values".into());
                    }
                    ds.unclassified = [v[0], v[1]];
                }
                "commune_users" => {
                    let v = parse_floats(rest)?;
                    if v.len() != n_communes {
                        return Err("commune_users length mismatch".into());
                    }
                    ds.commune_users = v;
                }
                "commune_class" => {
                    let v: Vec<u8> = rest
                        .split(',')
                        .map(|x| x.parse().map_err(|e| format!("bad class: {e}")))
                        .collect::<Result<_, _>>()?;
                    if v.len() != n_communes {
                        return Err("commune_class length mismatch".into());
                    }
                    ds.commune_class = v;
                }
                "national_hourly" => {
                    let (d, rest) = rest.split_once(',').ok_or("missing dir")?;
                    let (s, values) = rest.split_once(',').ok_or("missing service")?;
                    let d: usize = d.parse().map_err(|_| "bad dir")?;
                    let s: usize = s.parse().map_err(|_| "bad service")?;
                    let v = parse_floats(values)?;
                    if d >= 2 || s >= n_services || v.len() != HOURS_PER_WEEK {
                        return Err("national_hourly row out of range".into());
                    }
                    let start = ds.nh_index(d, s, 0);
                    ds.national_hourly[start..start + HOURS_PER_WEEK].copy_from_slice(&v);
                }
                "commune_weekly" => {
                    let (d, rest) = rest.split_once(',').ok_or("missing dir")?;
                    let (s, values) = rest.split_once(',').ok_or("missing service")?;
                    let d: usize = d.parse().map_err(|_| "bad dir")?;
                    let s: usize = s.parse().map_err(|_| "bad service")?;
                    let v = parse_floats(values)?;
                    if d >= 2 || s >= n_services || v.len() != n_communes {
                        return Err("commune_weekly row out of range".into());
                    }
                    let start = ds.cw_index(d, s, 0);
                    ds.commune_weekly[start..start + n_communes].copy_from_slice(&v);
                }
                "class_hourly" => {
                    let (d, rest) = rest.split_once(',').ok_or("missing dir")?;
                    let (s, rest) = rest.split_once(',').ok_or("missing service")?;
                    let (class, values) = rest.split_once(',').ok_or("missing class")?;
                    let d: usize = d.parse().map_err(|_| "bad dir")?;
                    let s: usize = s.parse().map_err(|_| "bad service")?;
                    let class: usize = class.parse().map_err(|_| "bad class")?;
                    let v = parse_floats(values)?;
                    if d >= 2 || s >= n_services || class >= 4 || v.len() != HOURS_PER_WEEK {
                        return Err("class_hourly row out of range".into());
                    }
                    let start = ds.ch_index(d, s, class, 0);
                    ds.class_hourly[start..start + HOURS_PER_WEEK].copy_from_slice(&v);
                }
                "tail_weekly" => {
                    let (d, values) = rest.split_once(',').ok_or("missing dir")?;
                    let d: usize = d.parse().map_err(|_| "bad dir")?;
                    let v = parse_floats(values)?;
                    if d >= 2 || v.len() != n_tail {
                        return Err("tail_weekly row out of range".into());
                    }
                    ds.tail_weekly[d * n_tail..(d + 1) * n_tail].copy_from_slice(&v);
                }
                other => return Err(format!("unknown section {other:?}")),
            }
        }
        Ok(())
    }

    /// Merges another dataset (same shape) into this one. Used to combine
    /// partials generated in parallel and to fold datasets from
    /// independent exports.
    ///
    /// Validates shape compatibility first and returns a typed
    /// [`DatasetError`] on any mismatch (service count, commune count,
    /// tail length), leaving `self` untouched — two exports of different
    /// scales can no longer silently mis-merge or panic deep inside a
    /// pipeline.
    pub fn merge(&mut self, other: &TrafficDataset) -> Result<(), DatasetError> {
        if self.n_services != other.n_services {
            return Err(DatasetError::at(
                0,
                format!(
                    "cannot merge: {} head services vs {}",
                    self.n_services, other.n_services
                ),
            ));
        }
        if self.n_communes != other.n_communes {
            return Err(DatasetError::at(
                0,
                format!(
                    "cannot merge: {} communes vs {}",
                    self.n_communes, other.n_communes
                ),
            ));
        }
        if self.tail_weekly.len() != other.tail_weekly.len() {
            return Err(DatasetError::at(
                0,
                format!(
                    "cannot merge: {} tail services vs {}",
                    self.n_tail(),
                    other.n_tail()
                ),
            ));
        }
        for (a, b) in self.national_hourly.iter_mut().zip(&other.national_hourly) {
            *a += b;
        }
        for (a, b) in self.commune_weekly.iter_mut().zip(&other.commune_weekly) {
            *a += b;
        }
        for (a, b) in self.class_hourly.iter_mut().zip(&other.class_hourly) {
            *a += b;
        }
        for (a, b) in self.tail_weekly.iter_mut().zip(&other.tail_weekly) {
            *a += b;
        }
        self.unclassified[0] += other.unclassified[0];
        self.unclassified[1] += other.unclassified[1];
        Ok(())
    }
}

/// A parse failure in [`TrafficDataset::from_csv`], locating the
/// offending row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetError {
    /// 1-based line number of the offending row; 0 for whole-file
    /// problems that no single line causes.
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl DatasetError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        DatasetError { line, message: message.into() }
    }
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "dataset: {}", self.message)
        } else {
            write!(f, "dataset line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::CountryConfig;

    fn dataset() -> (Country, TrafficDataset) {
        let country = Country::generate(&CountryConfig::small(), 5);
        let ds = TrafficDataset::new(&country, 3, 10, 0.5);
        (country, ds)
    }

    #[test]
    fn fused_adds_match_per_direction_adds_bitwise() {
        let (country, mut a) = dataset();
        let (_, mut b) = dataset();
        // Irrational-ish volumes catch any regrouping of the f64 sums.
        for i in 0..500usize {
            let commune = country.communes()[i % country.communes().len()].id;
            let (s, h) = (i % 3, (i * 13) % 168);
            let (dl, ul) = (0.1 + (i as f64) * 0.37, 0.05 + (i as f64) * 0.11);
            a.add(Direction::Down, s, commune, h, dl);
            a.add(Direction::Up, s, commune, h, ul);
            a.add_tail(Direction::Down, i % 10, dl);
            a.add_tail(Direction::Up, i % 10, ul);
            a.add_unclassified(Direction::Down, dl);
            a.add_unclassified(Direction::Up, ul);
            b.add_classified_both(s, commune.index(), h, dl, ul);
            b.add_tail_both(i % 10, dl, ul);
            b.add_unclassified_both(dl, ul);
        }
        assert_eq!(a.to_csv(), b.to_csv(), "fused adds must be bit-identical");
        assert!(a.dense_bytes() > 0);
        assert_eq!(a.dense_bytes(), b.dense_bytes());
    }

    #[test]
    fn add_updates_all_three_marginals() {
        let (country, mut ds) = dataset();
        let commune = country.communes()[10].id;
        let class = country.communes()[10].usage_class();
        ds.add(Direction::Down, 1, commune, 42, 7.5);
        assert_eq!(ds.national_series(Direction::Down, 1)[42], 7.5);
        assert_eq!(ds.commune_vector(Direction::Down, 1)[10], 7.5);
        assert_eq!(ds.class_series(Direction::Down, 1, class)[42], 7.5);
        // Other direction untouched.
        assert_eq!(ds.national_series(Direction::Up, 1)[42], 0.0);
        assert_eq!(ds.national_weekly(Direction::Down, 1), 7.5);
    }

    #[test]
    fn window_accessors_clamp_and_match_the_weekly_total() {
        let (country, mut ds) = dataset();
        for (i, c) in country.communes().iter().enumerate().take(100) {
            ds.add(Direction::Down, 0, c.id, (i * 7) % HOURS_PER_WEEK, 0.3 + i as f64 * 0.17);
        }
        // The full window is the weekly total, bit for bit (same
        // left-to-right additions).
        assert_eq!(
            ds.national_window_total(Direction::Down, 0, 0, HOURS_PER_WEEK),
            ds.national_weekly(Direction::Down, 0)
        );
        // Disjoint windows partition the series.
        let a = ds.national_series_window(Direction::Down, 0, 0, 50);
        let b = ds.national_series_window(Direction::Down, 0, 50, HOURS_PER_WEEK);
        assert_eq!(a.len() + b.len(), HOURS_PER_WEEK);
        assert_eq!(a[49], ds.national_series(Direction::Down, 0)[49]);
        // Out-of-range bounds clamp instead of panicking.
        assert_eq!(ds.national_series_window(Direction::Down, 0, 0, 10_000).len(), 168);
        assert!(ds.national_series_window(Direction::Down, 0, 80, 20).is_empty());
        assert_eq!(ds.national_window_total(Direction::Down, 0, 168, 168), 0.0);
    }

    #[test]
    fn full_ranking_survives_nan_volumes() {
        // Regression: a NaN that slipped into an aggregate (corrupt trace,
        // faulty counter) used to panic `sort_by(partial_cmp().unwrap())`.
        let (country, mut ds) = dataset();
        let commune = country.communes()[0].id;
        ds.add(Direction::Down, 0, commune, 0, 5.0);
        ds.add(Direction::Down, 1, commune, 1, f64::NAN);
        ds.add(Direction::Down, 2, commune, 2, 1.0);
        let ranking = ds.full_ranking(Direction::Down);
        assert_eq!(ranking.len(), 3 + 10);
        assert_eq!(ranking.iter().filter(|v| v.is_nan()).count(), 1);
        // Finite entries keep their descending order.
        let finite: Vec<f64> = ranking.iter().copied().filter(|v| !v.is_nan()).collect();
        assert!(finite.windows(2).all(|w| w[0] >= w[1]), "{finite:?}");
    }

    #[test]
    fn class_series_sum_to_national() {
        let (country, mut ds) = dataset();
        for (i, c) in country.communes().iter().enumerate().take(50) {
            ds.add(Direction::Up, 0, c.id, i % HOURS_PER_WEEK, 1.0 + i as f64);
        }
        for hour in 0..HOURS_PER_WEEK {
            let national = ds.national_series(Direction::Up, 0)[hour];
            let class_sum: f64 = UsageClass::ALL
                .iter()
                .map(|&cls| ds.class_series(Direction::Up, 0, cls)[hour])
                .sum();
            assert!((national - class_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn per_user_normalization_divides_by_subscribers() {
        let (country, mut ds) = dataset();
        let c = &country.communes()[3];
        ds.add(Direction::Down, 0, c.id, 0, 100.0);
        let per_user = ds.per_user_commune_vector(Direction::Down, 0);
        let users = c.population as f64 * 0.5;
        assert!((per_user[3] - 100.0 / users).abs() < 1e-12);
    }

    #[test]
    fn full_ranking_is_sorted_and_complete() {
        let (country, mut ds) = dataset();
        let id = country.communes()[0].id;
        ds.add(Direction::Down, 0, id, 0, 5.0);
        ds.add(Direction::Down, 1, id, 0, 50.0);
        ds.add(Direction::Down, 2, id, 0, 0.5);
        for rank in 0..10 {
            ds.add_tail(Direction::Down, rank, 1.0 / (rank + 1) as f64);
        }
        let ranking = ds.full_ranking(Direction::Down);
        assert_eq!(ranking.len(), 13);
        assert_eq!(ranking[0], 50.0);
        for w in ranking.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let total: f64 = ranking.iter().sum();
        assert!((ds.total_classified(Direction::Down) - total).abs() < 1e-9);
    }

    #[test]
    fn unclassified_counts_into_total_only() {
        let (_, mut ds) = dataset();
        ds.add_unclassified(Direction::Down, 12.0);
        assert_eq!(ds.unclassified(Direction::Down), 12.0);
        assert_eq!(ds.total_classified(Direction::Down), 0.0);
        assert_eq!(ds.total(Direction::Down), 12.0);
    }

    #[test]
    fn merge_adds_tables() {
        let (country, mut a) = dataset();
        let mut b = TrafficDataset::new(&country, 3, 10, 0.5);
        let id = country.communes()[7].id;
        a.add(Direction::Down, 2, id, 5, 1.0);
        b.add(Direction::Down, 2, id, 5, 2.0);
        b.add_tail(Direction::Up, 3, 4.0);
        b.add_unclassified(Direction::Up, 1.0);
        a.merge(&b).expect("same shape");
        assert_eq!(a.national_series(Direction::Down, 2)[5], 3.0);
        assert_eq!(a.tail_weekly(Direction::Up)[3], 4.0);
        assert_eq!(a.unclassified(Direction::Up), 1.0);
    }

    #[test]
    fn merge_rejects_shape_mismatches_with_typed_errors() {
        let (country, mut a) = dataset();
        let before = a.to_csv();

        let more_services = TrafficDataset::new(&country, 4, 10, 0.5);
        let err = a.merge(&more_services).unwrap_err();
        assert!(err.message.contains("head services"), "{err}");

        let more_tail = TrafficDataset::new(&country, 3, 11, 0.5);
        let err = a.merge(&more_tail).unwrap_err();
        assert!(err.message.contains("tail services"), "{err}");

        let other_country = Country::generate(&CountryConfig::small(), 6);
        if other_country.communes().len() != country.communes().len() {
            let other = TrafficDataset::new(&other_country, 3, 10, 0.5);
            let err = a.merge(&other).unwrap_err();
            assert!(err.message.contains("communes"), "{err}");
        }

        // A failed merge leaves the target untouched.
        assert_eq!(a.to_csv(), before);
    }

    #[test]
    fn reader_and_writer_apis_match_the_string_forms() {
        let (country, mut ds) = dataset();
        for (i, c) in country.communes().iter().enumerate().take(25) {
            ds.add(Direction::Down, i % 3, c.id, i % HOURS_PER_WEEK, 1.0 + i as f64);
        }
        let mut buf = Vec::new();
        ds.write_to(&mut buf).expect("write to memory");
        let text = ds.to_csv();
        assert_eq!(String::from_utf8(buf).unwrap(), text);

        let via_reader = TrafficDataset::read_from(text.as_bytes()).expect("read");
        assert_eq!(via_reader.to_csv(), text);
        // \r\n line endings parse identically.
        let crlf = text.replace('\n', "\r\n");
        assert_eq!(TrafficDataset::read_from(crlf.as_bytes()).unwrap().to_csv(), text);
        // Errors still carry the 1-based line number.
        let mut broken = text.clone();
        broken.push_str("bogus,1,2\n");
        let err = TrafficDataset::read_from(broken.as_bytes()).unwrap_err();
        assert_eq!(err.line, text.lines().count() + 1);
    }

    #[test]
    fn class_users_sum_to_total_subscribers() {
        let (country, ds) = dataset();
        let total: f64 = ds.class_users().iter().sum();
        let want = country.total_population() as f64 * 0.5;
        assert!((total - want).abs() < 1.0);
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let (country, mut ds) = dataset();
        for (i, c) in country.communes().iter().enumerate().take(40) {
            ds.add(Direction::Down, i % 3, c.id, (i * 7) % HOURS_PER_WEEK, 0.1 + i as f64);
            ds.add(Direction::Up, (i + 1) % 3, c.id, (i * 5) % HOURS_PER_WEEK, 0.01 * i as f64);
        }
        ds.add_unclassified(Direction::Down, 3.25);
        for r in 0..10 {
            ds.add_tail(Direction::Up, r, (r as f64).exp());
        }
        let text = ds.to_csv();
        let back = TrafficDataset::from_csv(&text).expect("parse");
        assert_eq!(back.n_services(), ds.n_services());
        assert_eq!(back.n_communes(), ds.n_communes());
        for dir in Direction::BOTH {
            for s in 0..3 {
                assert_eq!(back.national_series(dir, s), ds.national_series(dir, s));
                assert_eq!(back.commune_vector(dir, s), ds.commune_vector(dir, s));
                for class in UsageClass::ALL {
                    assert_eq!(
                        back.class_series(dir, s, class),
                        ds.class_series(dir, s, class)
                    );
                }
            }
            assert_eq!(back.tail_weekly(dir), ds.tail_weekly(dir));
            assert_eq!(back.unclassified(dir), ds.unclassified(dir));
        }
        assert_eq!(back.class_users(), ds.class_users());
        assert_eq!(back.commune_users(), ds.commune_users());
    }

    #[test]
    fn csv_parser_rejects_malformed_input() {
        assert!(TrafficDataset::from_csv("").is_err());
        assert!(TrafficDataset::from_csv("not a dataset").is_err());
        assert!(TrafficDataset::from_csv("#mobilenet-dataset v1,2,3").is_err());
        assert!(
            TrafficDataset::from_csv("#mobilenet-dataset v1,1,1,1\nbogus,1,2").is_err()
        );
        assert!(TrafficDataset::from_csv(
            "#mobilenet-dataset v1,1,2,0\ncommune_users,1.0"
        )
        .is_err());
        assert!(TrafficDataset::from_csv(
            "#mobilenet-dataset v1,1,1,0\nunclassified,1.0,abc"
        )
        .is_err());
    }

    #[test]
    fn direction_indices_are_stable() {
        assert_eq!(Direction::Down.index(), 0);
        assert_eq!(Direction::Up.index(), 1);
        assert_eq!(Direction::Down.label(), "downlink");
        assert_eq!(Direction::Up.label(), "uplink");
    }
}
