//! Per-service spatial affinities.
//!
//! §5 of the paper establishes that per-subscriber demand scales with the
//! urbanization level — semi-urban ≈ urban, rural ≈ half of urban, TGV
//! corridors ≥ twice urban (Figure 11 top) — while most services share the
//! same geography (Figure 10). The two named outliers get their own
//! profiles: **Netflix** is "almost completely absent in rural areas" and
//! tracks 4G coverage; **iCloud** "pushes uplink data from all iPhones" and
//! is nearly uniform over the country.

use mobilenet_geo::{Commune, UsageClass};

/// Spatial affinity of a service: how much a subscriber of each usage class
/// consumes relative to an urban subscriber, plus technology gating.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialProfile {
    /// Per-subscriber multipliers indexed by [`UsageClass::index`]
    /// (`[urban, semi-urban, rural, tgv]`); urban is 1.0 by convention.
    pub class_mult: [f64; 4],
    /// Fraction of the service's demand that requires 4G coverage: in a
    /// commune without 4G only `1 − fourg_share` of the demand survives
    /// (Figure 9 right: Netflix usage follows the 4G footprint).
    pub fourg_share: f64,
}

impl SpatialProfile {
    /// The typical profile of Figure 11: semi-urban ≈ urban, rural ≈ half,
    /// TGV ≥ 2×, mild 4G dependence.
    pub fn typical() -> Self {
        SpatialProfile { class_mult: [1.0, 0.95, 0.5, 3.2], fourg_share: 0.30 }
    }

    /// Netflix-like: high-end service, nearly absent in rural France,
    /// strongly 4G-dependent.
    pub fn high_end_urban() -> Self {
        SpatialProfile { class_mult: [1.0, 0.75, 0.06, 3.4], fourg_share: 0.85 }
    }

    /// iCloud-like: background sync from every handset, nearly uniform.
    pub fn uniform() -> Self {
        SpatialProfile { class_mult: [1.0, 1.0, 0.92, 1.15], fourg_share: 0.15 }
    }

    /// A custom profile.
    pub fn new(class_mult: [f64; 4], fourg_share: f64) -> Self {
        assert!((0.0..=1.0).contains(&fourg_share), "fourg_share must be in [0,1]");
        assert!(
            class_mult.iter().all(|m| *m >= 0.0 && m.is_finite()),
            "class multipliers must be finite and non-negative"
        );
        SpatialProfile { class_mult, fourg_share }
    }

    /// Multiplier for a usage class.
    #[inline]
    pub fn multiplier(&self, class: UsageClass) -> f64 {
        self.class_mult[class.index()]
    }

    /// Effective per-subscriber demand factor in `commune`, combining the
    /// usage-class multiplier with coverage gating: no service without
    /// radio coverage, and the 4G-dependent fraction of the demand needs a
    /// 4G layer.
    pub fn commune_factor(&self, commune: &Commune) -> f64 {
        if !commune.coverage.any() {
            return 0.0;
        }
        let base = self.multiplier(commune.usage_class());
        let tech = if commune.coverage.has_4g { 1.0 } else { 1.0 - self.fourg_share };
        base * tech
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::{Commune, CommuneId, Coverage, Point, Urbanization};

    fn commune(urb: Urbanization, tgv: bool, coverage: Coverage) -> Commune {
        Commune {
            id: CommuneId(0),
            centroid: Point::new(0.0, 0.0),
            area_km2: 16.0,
            population: 500,
            urbanization: urb,
            on_tgv_corridor: tgv,
            coverage,
        }
    }

    #[test]
    fn typical_profile_matches_figure_11_shape() {
        let p = SpatialProfile::typical();
        assert_eq!(p.multiplier(UsageClass::Urban), 1.0);
        assert!((p.multiplier(UsageClass::SemiUrban) - 1.0).abs() < 0.2);
        assert!((p.multiplier(UsageClass::Rural) - 0.5).abs() < 0.1);
        assert!(p.multiplier(UsageClass::Tgv) >= 2.0);
    }

    #[test]
    fn netflix_profile_starves_rural() {
        let p = SpatialProfile::high_end_urban();
        assert!(p.multiplier(UsageClass::Rural) < 0.1);
        assert!(p.fourg_share > 0.5);
    }

    #[test]
    fn uniform_profile_is_flat() {
        let p = SpatialProfile::uniform();
        for class in UsageClass::ALL {
            assert!((p.multiplier(class) - 1.0).abs() < 0.2, "{class:?}");
        }
    }

    #[test]
    fn commune_factor_gates_on_coverage() {
        let p = SpatialProfile::new([1.0, 1.0, 1.0, 1.0], 0.8);
        let full = commune(Urbanization::Urban, false, Coverage::FULL);
        let g3 = commune(Urbanization::Urban, false, Coverage::G3_ONLY);
        let dead = commune(Urbanization::Urban, false, Coverage::NONE);
        assert!((p.commune_factor(&full) - 1.0).abs() < 1e-12);
        assert!((p.commune_factor(&g3) - 0.2).abs() < 1e-12);
        assert_eq!(p.commune_factor(&dead), 0.0);
    }

    #[test]
    fn commune_factor_uses_usage_class() {
        let p = SpatialProfile::typical();
        let rural = commune(Urbanization::Rural, false, Coverage::FULL);
        let tgv = commune(Urbanization::Rural, true, Coverage::FULL);
        assert!(p.commune_factor(&tgv) > 4.0 * p.commune_factor(&rural));
    }

    #[test]
    #[should_panic(expected = "fourg_share")]
    fn invalid_fourg_share_is_rejected() {
        SpatialProfile::new([1.0; 4], 1.5);
    }

    #[test]
    #[should_panic(expected = "multipliers")]
    fn negative_multiplier_is_rejected() {
        SpatialProfile::new([1.0, -0.5, 1.0, 1.0], 0.2);
    }
}
