//! Gravity-model commuting — an optional realism extension.
//!
//! The paper's maps (Figure 9) light up along transport arteries partly
//! because subscribers consume traffic *where they are*, not where they
//! live. This module adds classic gravity-model commuting: each commune's
//! workers distribute over nearby work communes with attraction
//! proportional to destination "employment mass" (population, boosted in
//! cities) and inversely to squared distance. When
//! [`TrafficConfig::commuter_share`](crate::config::TrafficConfig) is
//! positive, the session sampler relocates that share of working-hours
//! sessions to the user's work commune.
//!
//! The extension is off by default (`commuter_share = 0`): the paper's
//! figures are calibrated on the residential model, and the ablation
//! harness quantifies what commuting changes (daytime urban
//! concentration, spatial autocorrelation).

use mobilenet_geo::{Country, UsageClass};
use rand::rngs::StdRng;
use rand::Rng;

/// Maximum work destinations retained per home commune.
const TOP_K: usize = 24;
/// Minimum effective distance, km (prevents the self-flow from diverging).
const MIN_DISTANCE_KM: f64 = 2.0;

/// Per-commune commuting distributions.
#[derive(Debug, Clone)]
pub struct MobilityModel {
    /// For each home commune: `(work commune, cumulative probability)`,
    /// cumulative ascending to 1.0.
    flows: Vec<Vec<(u32, f64)>>,
}

impl MobilityModel {
    /// Builds gravity flows over `country`: candidates within `radius_km`,
    /// attraction `employment(j) / max(d, 2 km)^exponent`. Deterministic —
    /// no randomness enters the flow construction.
    ///
    /// # Panics
    ///
    /// Panics unless `radius_km > 0` and `exponent > 0`.
    pub fn gravity(country: &Country, radius_km: f64, exponent: f64) -> Self {
        assert!(radius_km > 0.0, "radius must be positive");
        assert!(exponent > 0.0, "exponent must be positive");
        let employment: Vec<f64> = country
            .communes()
            .iter()
            .map(|c| {
                let boost = match c.usage_class() {
                    UsageClass::Urban => 1.6,
                    UsageClass::SemiUrban => 1.2,
                    UsageClass::Rural | UsageClass::Tgv => 0.7,
                };
                c.population as f64 * boost
            })
            .collect();

        let flows = country
            .communes()
            .iter()
            .map(|home| {
                let mut candidates: Vec<(u32, f64)> = country
                    .communes_within(&home.centroid, radius_km)
                    .into_iter()
                    .map(|id| {
                        let j = id.index();
                        let d = country.communes()[j]
                            .centroid
                            .distance(&home.centroid)
                            .max(MIN_DISTANCE_KM);
                        (id.0, employment[j] / d.powf(exponent))
                    })
                    .filter(|(_, w)| *w > 0.0)
                    .collect();
                if candidates.is_empty() {
                    // Degenerate geography: everyone works at home.
                    candidates.push((home.id.0, 1.0));
                }
                candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                candidates.truncate(TOP_K);
                let total: f64 = candidates.iter().map(|(_, w)| w).sum();
                let mut acc = 0.0;
                candidates
                    .into_iter()
                    .map(|(id, w)| {
                        acc += w / total;
                        (id, acc)
                    })
                    .collect()
            })
            .collect();
        MobilityModel { flows }
    }

    /// Number of home communes covered.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when the model covers no communes.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The cumulative flow distribution of a home commune.
    pub fn flows_of(&self, home: usize) -> &[(u32, f64)] {
        &self.flows[home]
    }

    /// Samples a work commune for a resident of `home`.
    pub fn sample_work(&self, home: usize, rng: &mut StdRng) -> u32 {
        let flows = &self.flows[home];
        let u: f64 = rng.gen();
        match flows.binary_search_by(|(_, c)| c.partial_cmp(&u).unwrap()) {
            Ok(i) => flows[(i + 1).min(flows.len() - 1)].0,
            Err(i) => flows[i.min(flows.len() - 1)].0,
        }
    }

    /// Expected fraction of `home`'s workers who stay in their own commune.
    pub fn self_containment(&self, home: usize) -> f64 {
        let flows = &self.flows[home];
        let mut prev = 0.0;
        for &(id, cum) in flows {
            if id as usize == home {
                return cum - prev;
            }
            prev = cum;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::CountryConfig;
    use rand::SeedableRng;

    fn model() -> (Country, MobilityModel) {
        let country = Country::generate(&CountryConfig::small(), 5);
        let mobility = MobilityModel::gravity(&country, 35.0, 2.0);
        (country, mobility)
    }

    #[test]
    fn flows_are_cumulative_distributions() {
        let (country, m) = model();
        assert_eq!(m.len(), country.communes().len());
        for home in 0..m.len() {
            let flows = m.flows_of(home);
            assert!(!flows.is_empty());
            assert!(flows.len() <= TOP_K);
            let mut prev = 0.0;
            for &(_, cum) in flows {
                assert!(cum >= prev - 1e-12);
                prev = cum;
            }
            assert!((prev - 1.0).abs() < 1e-9, "home {home}: total {prev}");
        }
    }

    #[test]
    fn commuters_flow_toward_cities() {
        let (country, m) = model();
        // A rural commune near the capital sends a meaningful share of its
        // workers to urban/semi-urban communes.
        let capital = &country.cities()[0];
        let near_rural = country
            .communes()
            .iter()
            .find(|c| {
                c.usage_class() == UsageClass::Rural
                    && c.centroid.distance(&capital.center) < 25.0
            })
            .expect("rural commune near the capital");
        let mut rng = StdRng::seed_from_u64(3);
        let mut to_city = 0;
        let n = 2000;
        for _ in 0..n {
            let work = m.sample_work(near_rural.id.index(), &mut rng) as usize;
            if matches!(
                country.communes()[work].usage_class(),
                UsageClass::Urban | UsageClass::SemiUrban
            ) {
                to_city += 1;
            }
        }
        assert!(
            to_city as f64 / n as f64 > 0.2,
            "only {to_city}/{n} commute to cities"
        );
    }

    #[test]
    fn distance_decay_keeps_most_work_local() {
        let (_, m) = model();
        // Averaged over communes, the self-flow dominates any single
        // remote destination.
        let mean_self: f64 =
            (0..m.len()).map(|h| m.self_containment(h)).sum::<f64>() / m.len() as f64;
        assert!(mean_self > 0.15, "mean self-containment {mean_self}");
    }

    #[test]
    fn sampling_matches_the_distribution() {
        let (_, m) = model();
        let home = 100;
        let flows = m.flows_of(home);
        let first = flows[0].0;
        let p_first = flows[0].1;
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.sample_work(home, &mut rng) == first)
            .count();
        let p_hat = hits as f64 / n as f64;
        assert!(
            (p_hat - p_first).abs() < 0.02,
            "estimated {p_hat} vs designed {p_first}"
        );
    }

    #[test]
    fn gravity_is_deterministic() {
        let country = Country::generate(&CountryConfig::small(), 5);
        let a = MobilityModel::gravity(&country, 35.0, 2.0);
        let b = MobilityModel::gravity(&country, 35.0, 2.0);
        for h in (0..a.len()).step_by(97) {
            assert_eq!(a.flows_of(h), b.flows_of(h));
        }
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_is_rejected() {
        let country = Country::generate(&CountryConfig::small(), 5);
        MobilityModel::gravity(&country, 0.0, 2.0);
    }
}
