//! The demand field: expected traffic of every service everywhere.
//!
//! `DemandModel` combines the geography (`mobilenet-geo`), the service
//! catalog and the temporal profiles into the expected weekly demand of
//! each `(service, commune)` pair and its hourly decomposition. It is the
//! single source of truth that both generation paths share:
//!
//! * [`DemandModel::expected_dataset`] evaluates expectations directly —
//!   the fast, noise-free path used by tests and calibration;
//! * [`crate::sessions::SessionGenerator`] samples discrete sessions whose
//!   aggregate converges to the same expectations — the path that
//!   exercises the full `mobilenet-netsim` collection pipeline.
//!
//! Per-commune heterogeneity comes from two seeded log-normal factors: a
//! *commune activity* factor shared by all services (the common driver
//! behind Figure 10's strong spatial correlations) and a *service taste*
//! factor per (commune, service) pair (the residual that keeps r² below 1).

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mobilenet_geo::{Country, UsageClass};

use crate::catalog::ServiceCatalog;
use crate::config::TrafficConfig;
use crate::dataset::{Direction, TrafficDataset};
use crate::dist::unit_mean_log_normal;
use crate::profile::WeekProfile;
use crate::week::HOURS_PER_WEEK;

/// The expected demand field over a generated country.
#[derive(Debug, Clone)]
pub struct DemandModel {
    country: Arc<Country>,
    catalog: Arc<ServiceCatalog>,
    config: TrafficConfig,
    /// Per-service weekly profiles (national shape).
    profiles: Vec<WeekProfile>,
    /// Per-service profile applied in TGV communes (blend of the train
    /// schedule and the service's own shape).
    tgv_profiles: Vec<WeekProfile>,
    /// `[service][commune]` multiplicative taste factors (unit mean).
    taste: Vec<Vec<f64>>,
    /// Subscribers per commune.
    users: Vec<f64>,
    /// Event-adjusted hourly weights per affected `(service, commune)`:
    /// the stored weights sum to the weekly uplift factor (≥ 1).
    event_overrides: HashMap<(usize, usize), (Vec<f64>, f64)>,
}

impl DemandModel {
    /// Builds the demand field; `seed` controls the taste factors only.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(
        country: Arc<Country>,
        catalog: Arc<ServiceCatalog>,
        config: TrafficConfig,
        seed: u64,
    ) -> Self {
        config.validate().expect("invalid TrafficConfig");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7472_6166_6669_6373); // "traffics"
        let n_communes = country.communes().len();
        let n_services = catalog.head().len();

        // Commune activity factor, shared across services.
        let activity: Vec<f64> = (0..n_communes)
            .map(|_| unit_mean_log_normal(&mut rng, config.commune_taste_sigma))
            .collect();
        // Service-specific taste on top.
        let taste: Vec<Vec<f64>> = (0..n_services)
            .map(|_| {
                activity
                    .iter()
                    .map(|a| a * unit_mean_log_normal(&mut rng, config.service_taste_sigma))
                    .collect()
            })
            .collect();

        // Weekly profiles, with per-(service, hour) log-normal fluctuation
        // baked in: real aggregate demand is not a smooth curve, and the
        // smoothed z-score detector behaves pathologically on one (its
        // trailing window degenerates). The jitter has unit mean, so
        // expectations are unchanged.
        let jitter = |rng: &mut StdRng, profile: &WeekProfile| -> WeekProfile {
            let weights: Vec<f64> = profile
                .hourly()
                .iter()
                .map(|w| w * unit_mean_log_normal(rng, config.hourly_noise_sigma))
                .collect();
            WeekProfile::from_weights(weights)
        };
        let profiles: Vec<WeekProfile> = catalog
            .head()
            .iter()
            .map(|spec| jitter(&mut rng, &WeekProfile::for_service(spec)))
            .collect();
        let train = jitter(&mut rng, &WeekProfile::tgv());
        let tgv_profiles: Vec<WeekProfile> = profiles
            .iter()
            .map(|p| train.blend(p, config.tgv_profile_weight))
            .collect();

        let users: Vec<f64> = country
            .communes()
            .iter()
            .map(|c| c.population as f64 * config.subscriber_share)
            .collect();

        // Exceptional events: precompute surged hourly weights for every
        // affected (service, commune). The weights sum to the weekly
        // uplift (≥ 1) instead of 1, so event traffic is *additional*.
        let mut event_overrides: HashMap<(usize, usize), (Vec<f64>, f64)> = HashMap::new();
        for event in &config.events {
            for id in country.communes_within(&event.epicenter, event.radius_km) {
                let ci = id.index();
                let d = country.communes()[ci].centroid.distance(&event.epicenter);
                let surge = event.surge_at(d);
                if surge <= 1.0 {
                    continue;
                }
                for (s, spec) in catalog.head().iter().enumerate() {
                    if !event.affects(spec.category) {
                        continue;
                    }
                    let entry = event_overrides.entry((s, ci)).or_insert_with(|| {
                        let base = if country.communes()[ci].usage_class() == UsageClass::Tgv
                        {
                            tgv_profiles[s].hourly().to_vec()
                        } else {
                            profiles[s].hourly().to_vec()
                        };
                        (base, 1.0)
                    });
                    for h in event.hours() {
                        entry.0[h] *= surge;
                    }
                    entry.1 = entry.0.iter().sum();
                }
            }
        }

        DemandModel {
            country,
            catalog,
            config,
            profiles,
            tgv_profiles,
            taste,
            users,
            event_overrides,
        }
    }

    /// The underlying country.
    pub fn country(&self) -> &Country {
        &self.country
    }

    /// A shared handle to the country.
    pub fn country_arc(&self) -> Arc<Country> {
        self.country.clone()
    }

    /// The service catalog.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// A shared handle to the catalog.
    pub fn catalog_arc(&self) -> Arc<ServiceCatalog> {
        self.catalog.clone()
    }

    /// The generation configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Subscribers per commune.
    pub fn users(&self) -> &[f64] {
        &self.users
    }

    /// The weekly profile a `(service, commune)` pair follows: TGV
    /// communes ride the train-schedule blend, everyone else the service's
    /// national shape (§5: urbanization does not change *when* people use
    /// services — only TGV does).
    pub fn profile_for(&self, service: usize, commune: usize) -> &WeekProfile {
        if self.country.communes()[commune].usage_class() == UsageClass::Tgv {
            &self.tgv_profiles[service]
        } else {
            &self.profiles[service]
        }
    }

    /// The national (non-TGV) profile of a service.
    pub fn national_profile(&self, service: usize) -> &WeekProfile {
        &self.profiles[service]
    }

    /// Hourly demand weight of `(service, commune)` at `hour`: the
    /// applicable weekly profile, adjusted for any exceptional event. The
    /// weights sum to [`DemandModel::weekly_uplift`] over the week.
    pub fn hourly_weight(&self, service: usize, commune: usize, hour: usize) -> f64 {
        match self.event_overrides.get(&(service, commune)) {
            Some((weights, _)) => weights[hour],
            None => self.profile_for(service, commune).value(hour),
        }
    }

    /// The event-adjusted hourly weights of an affected pair, if any.
    pub fn event_weights(&self, service: usize, commune: usize) -> Option<&[f64]> {
        self.event_overrides
            .get(&(service, commune))
            .map(|(w, _)| w.as_slice())
    }

    /// Weekly demand uplift from exceptional events (1.0 when unaffected).
    pub fn weekly_uplift(&self, service: usize, commune: usize) -> f64 {
        self.event_overrides
            .get(&(service, commune))
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    }

    /// Expected weekly downlink MB of `service` in `commune`, including
    /// any event uplift.
    pub fn weekly_dl_mb(&self, service: usize, commune: usize) -> f64 {
        let spec = &self.catalog.head()[service];
        let c = &self.country.communes()[commune];
        self.users[commune]
            * spec.weekly_dl_mb_per_user
            * spec.spatial.commune_factor(c)
            * self.taste[service][commune]
            * self.weekly_uplift(service, commune)
    }

    /// Expected weekly uplink MB of `service` in `commune`.
    pub fn weekly_ul_mb(&self, service: usize, commune: usize) -> f64 {
        self.weekly_dl_mb(service, commune) * self.catalog.head()[service].ul_ratio
    }

    /// Evaluates the expectation of the whole dataset, without sampling
    /// noise and without the collection pipeline (no classification loss,
    /// no localization error).
    ///
    /// Evaluation is parallelized per service: each service fills its own
    /// partial dataset (the cells of different services are disjoint) and
    /// the partials are merged in service order, so the result is
    /// bit-identical at any thread count.
    pub fn expected_dataset(&self) -> TrafficDataset {
        let n_services = self.catalog.head().len();
        let n_tail = self.catalog.tail_len();
        let new_dataset = || {
            TrafficDataset::new(&self.country, n_services, n_tail, self.config.subscriber_share)
        };
        let partials = mobilenet_par::par_map_collect(n_services, |s| {
            let mut ds = new_dataset();
            for (ci, commune) in self.country.communes().iter().enumerate() {
                let dl = self.weekly_dl_mb(s, ci);
                if dl <= 0.0 {
                    continue;
                }
                let uplift = self.weekly_uplift(s, ci);
                let dl_base = dl / uplift;
                let ul_base = dl_base * self.catalog.head()[s].ul_ratio;
                for h in 0..HOURS_PER_WEEK {
                    let w = self.hourly_weight(s, ci, h);
                    if w <= 0.0 {
                        continue;
                    }
                    ds.add(Direction::Down, s, commune.id, h, dl_base * w);
                    ds.add(Direction::Up, s, commune.id, h, ul_base * w);
                }
            }
            ds
        });
        let mut ds = new_dataset();
        for partial in &partials {
            ds.merge(partial).expect("partials share one shape by construction");
        }
        self.fill_tail(&mut ds);
        ds
    }

    /// Writes the tail-service national weekly volumes into a dataset.
    /// Tail volumes are catalog constants scaled by the national subscriber
    /// base, so both generation paths share this step.
    pub fn fill_tail(&self, ds: &mut TrafficDataset) {
        let national_users: f64 = self.users.iter().sum();
        for (rank, &mb) in self.catalog.tail_dl_mb().iter().enumerate() {
            ds.add_tail(Direction::Down, rank, mb * national_users * tail_damp(rank));
        }
        for (rank, &mb) in self.catalog.tail_ul_mb().iter().enumerate() {
            ds.add_tail(Direction::Up, rank, mb * national_users * tail_damp(rank));
        }
    }
}

/// Mild deterministic jitter so the tail rank curve is not perfectly
/// smooth (real rankings wiggle); damping is in `[0.9, 1.1]`.
fn tail_damp(rank: usize) -> f64 {
    let x = (rank as f64 * 12.9898).sin() * 43_758.547;
    0.9 + 0.2 * (x - x.floor())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::CountryConfig;

    fn model() -> DemandModel {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(40));
        DemandModel::new(country, catalog, TrafficConfig::fast(), 11)
    }

    #[test]
    fn weekly_volumes_scale_with_users_and_class() {
        let m = model();
        let country = m.country();
        // Find an urban and a (plain) rural commune with users.
        let urban = country
            .communes()
            .iter()
            .find(|c| c.usage_class() == UsageClass::Urban)
            .unwrap();
        let service = 0; // YouTube, typical profile
        let dl = m.weekly_dl_mb(service, urban.id.index());
        assert!(dl > 0.0);
        // Per-user demand of an urban commune is near the catalog value
        // (up to the taste factor).
        let per_user = dl / m.users()[urban.id.index()];
        let want = m.catalog().head()[service].weekly_dl_mb_per_user;
        assert!(per_user > want * 0.2 && per_user < want * 5.0, "{per_user} vs {want}");
    }

    #[test]
    fn tgv_communes_use_the_train_profile() {
        let m = model();
        let country = m.country();
        let tgv = country
            .communes()
            .iter()
            .position(|c| c.usage_class() == UsageClass::Tgv)
            .expect("small country has TGV communes");
        let rural = country
            .communes()
            .iter()
            .position(|c| c.usage_class() == UsageClass::Rural)
            .unwrap();
        assert_ne!(m.profile_for(0, tgv).hourly(), m.profile_for(0, rural).hourly());
        assert_eq!(
            m.profile_for(0, rural).hourly(),
            m.national_profile(0).hourly()
        );
    }

    #[test]
    fn expected_dataset_preserves_weekly_totals() {
        let m = model();
        let ds = m.expected_dataset();
        for s in [0usize, 7, 19] {
            let want: f64 = (0..m.country().communes().len())
                .map(|c| m.weekly_dl_mb(s, c))
                .sum();
            let got = ds.national_weekly(Direction::Down, s);
            assert!((got - want).abs() / want < 1e-9, "service {s}: {got} vs {want}");
        }
    }

    #[test]
    fn expected_dataset_ul_ratio_holds() {
        let m = model();
        let ds = m.expected_dataset();
        for (s, spec) in m.catalog().head().iter().enumerate() {
            let dl = ds.national_weekly(Direction::Down, s);
            let ul = ds.national_weekly(Direction::Up, s);
            assert!((ul / dl - spec.ul_ratio).abs() < 1e-9, "{}", spec.name);
        }
    }

    #[test]
    fn netflix_demand_is_rural_starved() {
        let m = model();
        let ds = m.expected_dataset();
        let netflix = m
            .catalog()
            .head()
            .iter()
            .position(|s| s.name == "Netflix")
            .unwrap();
        let per_user = ds.per_user_commune_vector(Direction::Down, netflix);
        let country = m.country();
        let mean_of = |class: UsageClass| {
            let ids = country.communes_in_class(class);
            let total: f64 = ids.iter().map(|id| per_user[id.index()]).sum();
            total / ids.len() as f64
        };
        assert!(
            mean_of(UsageClass::Urban) > 5.0 * mean_of(UsageClass::Rural),
            "Netflix must collapse in rural areas"
        );
    }

    #[test]
    fn taste_factors_are_deterministic_in_seed() {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(10));
        let a = DemandModel::new(country.clone(), catalog.clone(), TrafficConfig::fast(), 5);
        let b = DemandModel::new(country.clone(), catalog.clone(), TrafficConfig::fast(), 5);
        let c = DemandModel::new(country, catalog, TrafficConfig::fast(), 6);
        assert_eq!(a.weekly_dl_mb(0, 100), b.weekly_dl_mb(0, 100));
        assert_ne!(a.weekly_dl_mb(0, 100), c.weekly_dl_mb(0, 100));
    }

    #[test]
    fn tail_fill_is_monotone_enough() {
        let m = model();
        let ds = m.expected_dataset();
        let tail = ds.tail_weekly(Direction::Down);
        assert_eq!(tail.len(), 40);
        assert!(tail[0] > 0.0);
        // Jitter is bounded, so rank 0 clearly exceeds rank 20.
        assert!(tail[0] > tail[20]);
    }

    #[test]
    fn events_add_localized_demand() {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(10));
        let capital = country.cities()[0].center;
        let mut cfg = TrafficConfig::fast();
        cfg.events.push(crate::events::EventSpec::stadium_match(capital));
        let with = DemandModel::new(country.clone(), catalog.clone(), cfg, 11);
        let without =
            DemandModel::new(country.clone(), catalog, TrafficConfig::fast(), 11);

        let host = country.commune_at(&capital).index();
        let facebook = with
            .catalog()
            .head()
            .iter()
            .position(|s| s.name == "Facebook")
            .unwrap();
        let mail = with.catalog().head().iter().position(|s| s.name == "Mail").unwrap();

        // Affected category at the epicenter: clear uplift.
        assert!(with.weekly_uplift(facebook, host) > 1.02);
        assert!(
            with.weekly_dl_mb(facebook, host) > 1.02 * without.weekly_dl_mb(facebook, host)
        );
        // Unaffected category: untouched.
        assert_eq!(with.weekly_uplift(mail, host), 1.0);
        assert_eq!(with.weekly_dl_mb(mail, host), without.weekly_dl_mb(mail, host));
        // Far away: untouched.
        let far = country
            .communes()
            .iter()
            .position(|c| c.centroid.distance(&capital) > 60.0)
            .unwrap();
        assert_eq!(with.weekly_uplift(facebook, far), 1.0);

        // The uplift is concentrated in the event hours.
        let event_hours: f64 =
            (19..22).map(|h| with.hourly_weight(facebook, host, h)).sum();
        let base_hours: f64 =
            (19..22).map(|h| without.hourly_weight(facebook, host, h)).sum();
        assert!(event_hours > 2.0 * base_hours, "{event_hours} vs {base_hours}");
        // Off-event hours identical.
        assert!(
            (with.hourly_weight(facebook, host, 100)
                - without.hourly_weight(facebook, host, 100))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn event_expected_dataset_is_consistent() {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(10));
        let capital = country.cities()[0].center;
        let mut cfg = TrafficConfig::fast();
        cfg.events.push(crate::events::EventSpec::stadium_match(capital));
        let m = DemandModel::new(country, catalog, cfg, 11);
        let ds = m.expected_dataset();
        // National weekly totals still equal the (uplifted) per-commune
        // sums, so event traffic flows through the whole pipeline
        // consistently.
        for s in [2usize, 6] {
            let want: f64 =
                (0..m.country().communes().len()).map(|c| m.weekly_dl_mb(s, c)).sum();
            let got = ds.national_weekly(Direction::Down, s);
            assert!((got - want).abs() / want < 1e-9, "service {s}");
        }
    }
}
