//! Exceptional-event modeling.
//!
//! §2 of the paper notes the measurement week "was carefully selected so
//! as to avoid major nationwide events like holidays or strikes". This
//! extension makes that choice testable: an [`EventSpec`] injects a
//! localized demand surge (a stadium concert, a derby match, a strike
//! rally) into the demand field, and the analyses can then quantify how
//! an event week distorts the paper's results — off-schedule activity
//! peaks, inflated local per-user demand, depressed spatial correlations.

use mobilenet_geo::Point;

use crate::catalog::Category;
use crate::week::HOURS_PER_WEEK;

/// One localized demand surge.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Display name (diagnostics only).
    pub name: String,
    /// Where the event happens.
    pub epicenter: Point,
    /// Radius of the affected area, km (the surge decays linearly to zero
    /// at this distance).
    pub radius_km: f64,
    /// First affected hour-of-week.
    pub start_hour: usize,
    /// Number of affected hours.
    pub duration_h: usize,
    /// Relative surge at the epicenter: 2.0 triples demand there during
    /// the event window.
    pub amplitude: f64,
    /// Service categories affected; empty means every service (a crowd
    /// uses everything).
    pub categories: Vec<Category>,
}

impl EventSpec {
    /// A football-match-shaped event: Saturday evening, three hours,
    /// social/video-heavy.
    pub fn stadium_match(epicenter: Point) -> Self {
        EventSpec {
            name: "stadium match".into(),
            epicenter,
            radius_km: 12.0,
            start_hour: 19, // Saturday 19:00–22:00
            duration_h: 3,
            amplitude: 2.5,
            categories: vec![
                Category::SocialNetwork,
                Category::Messaging,
                Category::VideoStreaming,
            ],
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.radius_km <= 0.0 {
            return Err("event radius must be positive".into());
        }
        if self.duration_h == 0 {
            return Err("event duration must be positive".into());
        }
        if self.start_hour + self.duration_h > HOURS_PER_WEEK {
            return Err("event must fit inside the measurement week".into());
        }
        if self.amplitude <= 0.0 || !self.amplitude.is_finite() {
            return Err("event amplitude must be positive".into());
        }
        Ok(())
    }

    /// Whether `category` is affected by this event.
    pub fn affects(&self, category: Category) -> bool {
        self.categories.is_empty() || self.categories.contains(&category)
    }

    /// Surge factor at distance `d_km` from the epicenter during the event
    /// window: `1 + amplitude · (1 − d/r)`, clamped at 1 outside.
    pub fn surge_at(&self, d_km: f64) -> f64 {
        if d_km >= self.radius_km {
            return 1.0;
        }
        1.0 + self.amplitude * (1.0 - d_km / self.radius_km)
    }

    /// The affected hour range.
    pub fn hours(&self) -> std::ops::Range<usize> {
        self.start_hour..self.start_hour + self.duration_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> EventSpec {
        EventSpec::stadium_match(Point::new(50.0, 50.0))
    }

    #[test]
    fn preset_validates() {
        event().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut e = event();
        e.radius_km = 0.0;
        assert!(e.validate().is_err());

        let mut e = event();
        e.duration_h = 0;
        assert!(e.validate().is_err());

        let mut e = event();
        e.start_hour = HOURS_PER_WEEK - 1;
        e.duration_h = 2;
        assert!(e.validate().is_err());

        let mut e = event();
        e.amplitude = -1.0;
        assert!(e.validate().is_err());
    }

    #[test]
    fn surge_decays_linearly_to_the_radius() {
        let e = event();
        assert!((e.surge_at(0.0) - 3.5).abs() < 1e-12);
        assert!((e.surge_at(6.0) - 2.25).abs() < 1e-12);
        assert_eq!(e.surge_at(12.0), 1.0);
        assert_eq!(e.surge_at(100.0), 1.0);
    }

    #[test]
    fn category_filter_works() {
        let e = event();
        assert!(e.affects(Category::SocialNetwork));
        assert!(!e.affects(Category::Mail));
        let mut all = event();
        all.categories.clear();
        assert!(all.affects(Category::Mail));
    }

    #[test]
    fn hours_cover_the_window() {
        let e = event();
        assert_eq!(e.hours(), 19..22);
    }
}
