//! The measurement-week calendar and the seven topical times.
//!
//! The paper's dataset covers one week starting **Saturday** September 24,
//! 2016, and all temporal figures use that axis (Sat, Sun, Mon … Fri).
//! Applying the smoothed z-score detector to every service, the authors
//! find that activity peaks only occur at **seven specific moments** of the
//! week (§4):
//!
//! * weekends — midday (≈ 1 pm) and evening (≈ 9 pm);
//! * working days — morning commute (≈ 8 am), morning break (≈ 10 am),
//!   midday (≈ 1 pm), afternoon commute (≈ 6 pm) and evening (≈ 9 pm).

/// Hours in a day.
pub const HOURS_PER_DAY: usize = 24;
/// Hours in the measurement week.
pub const HOURS_PER_WEEK: usize = 7 * HOURS_PER_DAY;

/// Day index within the measurement week (0 = Saturday … 6 = Friday).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Day(pub usize);

impl Day {
    /// Whether this day is part of the weekend (Saturday or Sunday).
    #[inline]
    pub fn is_weekend(self) -> bool {
        self.0 < 2
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        ["Sat", "Sun", "Mon", "Tue", "Wed", "Thu", "Fri"][self.0 % 7]
    }
}

/// Splits an hour-of-week into `(day, hour_of_day)`.
#[inline]
pub fn split_hour(hour_of_week: usize) -> (Day, usize) {
    debug_assert!(hour_of_week < HOURS_PER_WEEK);
    (Day(hour_of_week / HOURS_PER_DAY), hour_of_week % HOURS_PER_DAY)
}

/// Whether an hour-of-week falls on a weekend.
#[inline]
pub fn is_weekend_hour(hour_of_week: usize) -> bool {
    split_hour(hour_of_week).0.is_weekend()
}

/// The seven topical times of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TopicalTime {
    /// Weekend days around 1 pm.
    WeekendMidday,
    /// Weekend days around 9 pm.
    WeekendEvening,
    /// Working days around 8 am.
    MorningCommute,
    /// Working days around 10 am (the between-classes pause the paper
    /// associates with student-heavy services).
    MorningBreak,
    /// Working days around 1 pm.
    Midday,
    /// Working days around 6 pm.
    AfternoonCommute,
    /// Working days around 9 pm.
    Evening,
}

impl TopicalTime {
    /// All topical times in the ring order of Figure 6.
    pub const ALL: [TopicalTime; 7] = [
        TopicalTime::WeekendMidday,
        TopicalTime::WeekendEvening,
        TopicalTime::MorningCommute,
        TopicalTime::MorningBreak,
        TopicalTime::Midday,
        TopicalTime::AfternoonCommute,
        TopicalTime::Evening,
    ];

    /// Human-readable label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            TopicalTime::WeekendMidday => "weekend midday",
            TopicalTime::WeekendEvening => "weekend evening",
            TopicalTime::MorningCommute => "morning commuting",
            TopicalTime::MorningBreak => "morning break",
            TopicalTime::Midday => "midday",
            TopicalTime::AfternoonCommute => "afternoon commuting",
            TopicalTime::Evening => "evening",
        }
    }

    /// Index into fixed-size per-topical-time arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TopicalTime::WeekendMidday => 0,
            TopicalTime::WeekendEvening => 1,
            TopicalTime::MorningCommute => 2,
            TopicalTime::MorningBreak => 3,
            TopicalTime::Midday => 4,
            TopicalTime::AfternoonCommute => 5,
            TopicalTime::Evening => 6,
        }
    }

    /// The hour-of-day this topical time is centred on.
    pub fn hour_of_day(self) -> usize {
        match self {
            TopicalTime::WeekendMidday | TopicalTime::Midday => 13,
            TopicalTime::WeekendEvening | TopicalTime::Evening => 21,
            TopicalTime::MorningCommute => 8,
            TopicalTime::MorningBreak => 10,
            TopicalTime::AfternoonCommute => 18,
        }
    }

    /// Whether this topical time belongs to weekend days.
    pub fn is_weekend(self) -> bool {
        matches!(self, TopicalTime::WeekendMidday | TopicalTime::WeekendEvening)
    }

    /// All hour-of-week slots at which this topical time occurs.
    pub fn hours(self) -> Vec<usize> {
        let hod = self.hour_of_day();
        let days: &[usize] = if self.is_weekend() { &[0, 1] } else { &[2, 3, 4, 5, 6] };
        days.iter().map(|d| d * HOURS_PER_DAY + hod).collect()
    }

    /// Maps an hour-of-week to the topical time it belongs to, within a
    /// tolerance of `slack` hours around the topical hour. Returns `None`
    /// for off-peak hours.
    pub fn classify(hour_of_week: usize, slack: usize) -> Option<TopicalTime> {
        let (day, hod) = split_hour(hour_of_week);
        let mut best: Option<(usize, TopicalTime)> = None;
        for t in TopicalTime::ALL {
            if t.is_weekend() != day.is_weekend() {
                continue;
            }
            let d = hod.abs_diff(t.hour_of_day());
            if d <= slack {
                match best {
                    Some((bd, _)) if bd <= d => {}
                    _ => best = Some((d, t)),
                }
            }
        }
        best.map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_starts_saturday() {
        assert_eq!(Day(0).name(), "Sat");
        assert_eq!(Day(6).name(), "Fri");
        assert!(Day(0).is_weekend());
        assert!(Day(1).is_weekend());
        assert!(!Day(2).is_weekend());
    }

    #[test]
    fn split_hour_round_trips() {
        for h in 0..HOURS_PER_WEEK {
            let (d, hod) = split_hour(h);
            assert_eq!(d.0 * HOURS_PER_DAY + hod, h);
        }
    }

    #[test]
    fn topical_hours_land_on_expected_slots() {
        assert_eq!(TopicalTime::WeekendMidday.hours(), vec![13, 37]);
        assert_eq!(TopicalTime::MorningCommute.hours(), vec![56, 80, 104, 128, 152]);
        assert_eq!(TopicalTime::Evening.hours(), vec![69, 93, 117, 141, 165]);
    }

    #[test]
    fn every_topical_hour_is_within_the_week() {
        for t in TopicalTime::ALL {
            for h in t.hours() {
                assert!(h < HOURS_PER_WEEK);
                assert_eq!(is_weekend_hour(h), t.is_weekend());
            }
        }
    }

    #[test]
    fn classify_maps_topical_hours_to_themselves() {
        for t in TopicalTime::ALL {
            for h in t.hours() {
                assert_eq!(TopicalTime::classify(h, 1), Some(t), "hour {h}");
            }
        }
    }

    #[test]
    fn classify_rejects_off_peak_hours() {
        // 3 am Monday is nowhere near a topical time.
        assert_eq!(TopicalTime::classify(2 * HOURS_PER_DAY + 3, 1), None);
        // 1 pm Saturday is weekend midday, never weekday midday.
        assert_eq!(TopicalTime::classify(13, 1), Some(TopicalTime::WeekendMidday));
    }

    #[test]
    fn classify_with_slack_snaps_to_nearest() {
        // 9 am Monday sits between the 8 am commute and the 10 am break;
        // equidistant ties go to the earlier (commute) entry by order.
        let t = TopicalTime::classify(2 * HOURS_PER_DAY + 9, 1).unwrap();
        assert!(t == TopicalTime::MorningCommute || t == TopicalTime::MorningBreak);
        // 7 pm Monday snaps to the 6 pm commute with slack 1.
        assert_eq!(
            TopicalTime::classify(2 * HOURS_PER_DAY + 19, 1),
            Some(TopicalTime::AfternoonCommute)
        );
    }

    #[test]
    fn indices_are_a_permutation() {
        let mut seen = [false; 7];
        for t in TopicalTime::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
