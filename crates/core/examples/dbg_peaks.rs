use mobilenet_core::peaks::PeakConfig;
use mobilenet_core::topical::topical_profiles;
use mobilenet_core::Pipeline;
use mobilenet_traffic::{Direction, TopicalTime};
fn main() {
    for seed in [42u64, 99, 7, 1234, 555] {
        let s = Pipeline::builder().seed(seed).expected().run().unwrap().into_study();
        let profiles = topical_profiles(&s, Direction::Down, &PeakConfig::paper());
        let mut missed = 0; let mut total = 0; let mut false_cb = 0;
        for (spec, p) in s.catalog().head().iter().zip(profiles.iter()) {
            for pk in &spec.peaks { if pk.intensity >= 0.4 { total += 1; if !p.has_peak[pk.time.index()] { missed += 1; } } }
            for t in [TopicalTime::MorningCommute, TopicalTime::MorningBreak] {
                if p.has_peak[t.index()] && spec.peak_at(t).is_none() { false_cb += 1; }
            }
        }
        let breaks: Vec<&str> = profiles.iter().filter(|p| p.has_peak[TopicalTime::MorningBreak.index()]).map(|p| p.name).collect();
        println!("seed {seed}: missed {missed}/{total}, false commute/break {false_cb}, breaks={breaks:?}");
    }
}
