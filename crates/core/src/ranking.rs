//! Service rankings, Zipf fits, and category shares (§3, Figures 2–3).

use std::collections::BTreeMap;

use mobilenet_timeseries::zipf::{fit_zipf_ranked, ZipfFit};
use mobilenet_traffic::{Category, Direction, ServiceSpec, TrafficDataset};

use crate::study::Study;

/// Figure 2: normalized rank–volume curves with Zipf fits on the top half.
#[derive(Debug, Clone)]
pub struct ZipfRanking {
    /// Normalized downlink volumes in rank order (sum = 1).
    pub dl_normalized: Vec<f64>,
    /// Normalized uplink volumes in rank order.
    pub ul_normalized: Vec<f64>,
    /// Zipf fit over the top half of the downlink ranking.
    pub dl_fit: Option<ZipfFit>,
    /// Zipf fit over the top half of the uplink ranking.
    pub ul_fit: Option<ZipfFit>,
    /// Orders of magnitude spanned by the downlink ranking.
    pub dl_span_orders: f64,
}

/// Computes Figure 2 from a study.
pub fn zipf_ranking(study: &Study) -> ZipfRanking {
    let rank = |dir: Direction| -> Vec<f64> {
        let ranking = study.dataset().full_ranking(dir);
        let total: f64 = ranking.iter().sum();
        if total <= 0.0 {
            return ranking;
        }
        ranking.into_iter().map(|v| v / total).collect()
    };
    let dl = rank(Direction::Down);
    let ul = rank(Direction::Up);
    let dl_fit = fit_zipf_ranked(&dl[..dl.len() / 2]);
    let ul_fit = fit_zipf_ranked(&ul[..ul.len() / 2]);
    let positive_min = dl.iter().copied().filter(|v| *v > 0.0).fold(f64::INFINITY, f64::min);
    let dl_span_orders = if dl.is_empty() || positive_min <= 0.0 {
        0.0
    } else {
        (dl[0] / positive_min).log10()
    };
    ZipfRanking { dl_normalized: dl, ul_normalized: ul, dl_fit, ul_fit, dl_span_orders }
}

/// One row of Figure 3: a head service's share of traffic.
#[derive(Debug, Clone)]
pub struct ServiceShare {
    /// Catalog index.
    pub service: usize,
    /// Display name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Share of the total (classified + unclassified) volume.
    pub share_of_total: f64,
}

/// Figure 3 for one direction: head services ranked by share, plus the
/// aggregate per-category shares and summary statistics.
#[derive(Debug, Clone)]
pub struct ServiceRanking {
    /// Direction the ranking refers to.
    pub direction: Direction,
    /// Head services sorted by decreasing share.
    pub services: Vec<ServiceShare>,
    /// Category → share of total volume, over head services.
    pub category_shares: BTreeMap<&'static str, f64>,
    /// Combined share of the 20 head services.
    pub head_share: f64,
    /// Share of volume the DPI stage could not classify.
    pub unclassified_share: f64,
}

/// Computes Figure 3 for one direction.
pub fn service_ranking(study: &Study, dir: Direction) -> ServiceRanking {
    service_ranking_of(study.dataset(), study.catalog().head(), dir)
}

/// [`service_ranking`] over a bare dataset — for consumers holding a
/// [`TrafficDataset`] without a [`Study`] (live snapshots, replayed
/// traces). `head` is the head of the service catalog the dataset was
/// aggregated under; answers are bit-identical to the study-based path.
pub fn service_ranking_of(
    ds: &TrafficDataset,
    head: &[ServiceSpec],
    dir: Direction,
) -> ServiceRanking {
    let total = ds.total(dir).max(f64::MIN_POSITIVE);
    let mut services: Vec<ServiceShare> = head
        .iter()
        .enumerate()
        .map(|(s, spec)| ServiceShare {
            service: s,
            name: spec.name,
            category: spec.category,
            share_of_total: ds.national_weekly(dir, s) / total,
        })
        .collect();
    services.sort_by(|a, b| b.share_of_total.partial_cmp(&a.share_of_total).unwrap());

    let mut category_shares: BTreeMap<&'static str, f64> = BTreeMap::new();
    for s in &services {
        *category_shares.entry(s.category.label()).or_insert(0.0) += s.share_of_total;
    }
    let head_share = services.iter().map(|s| s.share_of_total).sum();
    ServiceRanking {
        direction: dir,
        services,
        category_shares,
        head_share,
        unclassified_share: ds.unclassified(dir) / total,
    }
}

/// The top `k` head services by share, without ranking the whole head —
/// the streaming-query variant of [`service_ranking_of`].
///
/// Selection runs over a bounded binary heap (O(S·log k) instead of the
/// full O(S·log S) sort), but the returned prefix is **identical** — same
/// order, same shares — to `service_ranking_of(..).services[..k]`: ties
/// break exactly like the full sort's `partial_cmp` (stable over catalog
/// order) because candidates are pushed in catalog order and compared
/// with the same ordering.
pub fn top_k_services(
    ds: &TrafficDataset,
    head: &[ServiceSpec],
    dir: Direction,
    k: usize,
) -> Vec<ServiceShare> {
    let total = ds.total(dir).max(f64::MIN_POSITIVE);
    let k = k.min(head.len());
    if k == 0 {
        return Vec::new();
    }
    // Min-heap of the current top k, keyed by (share, Reverse(index)) so
    // the heap's minimum is the entry the full descending sort would
    // place last: lower share loses, and on exactly equal shares the
    // *higher* catalog index loses (a stable descending sort keeps
    // earlier indices first).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Key(f64, Reverse<usize>);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(k + 1);
    for (s, _spec) in head.iter().enumerate() {
        let share = ds.national_weekly(dir, s) / total;
        heap.push(Reverse(Key(share, Reverse(s))));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut top: Vec<Key> = heap.into_iter().map(|Reverse(key)| key).collect();
    top.sort_by(|a, b| b.cmp(a));
    top.into_iter()
        .map(|Key(share, Reverse(s))| ServiceShare {
            service: s,
            name: head[s].name,
            category: head[s].category,
            share_of_total: share,
        })
        .collect()
}

/// §3's headline aggregate: uplink volume as a fraction of the total
/// network load (the paper reports under one twentieth).
pub fn uplink_fraction(study: &Study) -> f64 {
    let dl = study.dataset().total(Direction::Down);
    let ul = study.dataset().total(Direction::Up);
    if dl + ul <= 0.0 {
        return 0.0;
    }
    ul / (dl + ul)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::measured_study()
    }

    #[test]
    fn ranking_is_normalized_and_sorted() {
        let s = study();
        let z = zipf_ranking(s);
        assert!((z.dl_normalized.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for w in z.dl_normalized.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(z.dl_normalized.len(), 20 + s.catalog().tail_len());
    }

    #[test]
    fn zipf_exponents_are_near_the_papers() {
        let s = study();
        let z = zipf_ranking(s);
        let dl = z.dl_fit.expect("downlink fit");
        let ul = z.ul_fit.expect("uplink fit");
        // Paper: −1.69 downlink, −1.55 uplink. The synthetic catalog
        // reproduces the neighbourhood, not the exact digits.
        assert!((dl.exponent - 1.69).abs() < 0.45, "dl exponent {}", dl.exponent);
        assert!((ul.exponent - 1.55).abs() < 0.45, "ul exponent {}", ul.exponent);
        // The span covers many orders of magnitude (paper: ~10).
        assert!(z.dl_span_orders > 6.0, "span {} orders", z.dl_span_orders);
    }

    #[test]
    fn video_dominates_downlink_shares() {
        let s = study();
        let r = service_ranking(s, Direction::Down);
        let video = r.category_shares.get("video streaming").copied().unwrap_or(0.0);
        // Paper: ≈ 46% of total downlink.
        assert!(video > 0.30 && video < 0.75, "video share {video}");
        assert_eq!(r.services[0].name, "YouTube");
    }

    #[test]
    fn social_or_messaging_tops_uplink() {
        let s = study();
        let r = service_ranking(s, Direction::Up);
        let top = &r.services[0];
        assert!(
            matches!(top.category, Category::SocialNetwork | Category::Messaging),
            "uplink leader {} ({:?})",
            top.name,
            top.category
        );
    }

    #[test]
    fn head_share_is_large_and_unclassified_near_twelve_percent() {
        let s = study();
        let r = service_ranking(s, Direction::Down);
        assert!(r.head_share > 0.6, "head share {}", r.head_share);
        assert!(
            (r.unclassified_share - 0.12).abs() < 0.03,
            "unclassified {}",
            r.unclassified_share
        );
    }

    #[test]
    fn uplink_is_a_small_fraction() {
        let s = study();
        let f = uplink_fraction(s);
        // Paper: less than one twentieth.
        assert!(f < 0.08, "uplink fraction {f}");
        assert!(f > 0.01, "uplink should not vanish: {f}");
    }

    #[test]
    fn top_k_is_the_exact_prefix_of_the_full_ranking() {
        let s = study();
        for dir in [Direction::Down, Direction::Up] {
            let full = service_ranking(s, dir);
            for k in [0usize, 1, 3, 5, 20, 25] {
                let top = top_k_services(s.dataset(), s.catalog().head(), dir, k);
                let want = k.min(full.services.len());
                assert_eq!(top.len(), want);
                for (a, b) in top.iter().zip(full.services.iter()) {
                    assert_eq!(a.service, b.service, "k={k}");
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.share_of_total, b.share_of_total, "bitwise share");
                }
            }
        }
    }

    #[test]
    fn dataset_level_ranking_matches_the_study_path() {
        let s = study();
        let via_study = service_ranking(s, Direction::Down);
        let via_dataset = service_ranking_of(s.dataset(), s.catalog().head(), Direction::Down);
        assert_eq!(via_study.head_share, via_dataset.head_share);
        assert_eq!(via_study.services.len(), via_dataset.services.len());
        for (a, b) in via_study.services.iter().zip(via_dataset.services.iter()) {
            assert_eq!(a.service, b.service);
            assert_eq!(a.share_of_total, b.share_of_total);
        }
    }

    #[test]
    fn shares_sum_close_to_classified_share() {
        let s = study();
        let r = service_ranking(s, Direction::Down);
        let sum: f64 = r.services.iter().map(|x| x.share_of_total).sum();
        assert!((sum - r.head_share).abs() < 1e-12);
        let cat_sum: f64 = r.category_shares.values().sum();
        assert!((cat_sum - r.head_share).abs() < 1e-9);
    }
}
