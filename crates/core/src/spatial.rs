//! Spatial analysis of service usage (§5, Figures 8 and 10).
//!
//! Three results:
//!
//! * **concentration** — the top 1% / 10% of communes carry >50% / >90% of
//!   a service's traffic (Figure 8 left);
//! * **per-subscriber skew** — the CDF of weekly per-user volume across
//!   communes spans from ~KB to tens of MB (Figure 8 right);
//! * **cross-service correlation** — per-user maps of different services
//!   correlate strongly (mean r² ≈ 0.60 DL / 0.53 UL), with Netflix and
//!   iCloud as outliers (Figure 10).

use mobilenet_timeseries::stats::{concentration_curve, r_squared, share_of_top, Ecdf};
use mobilenet_traffic::{Direction, TrafficDataset};

use crate::study::Study;

/// Minimum r² pairs each parallel worker must receive before the
/// pairwise block fans out; smaller pair lists (the standard 20-service
/// catalog yields 190) run inline, where they are faster than any
/// spawn/steal schedule.
const R2_MIN_PAIRS_PER_WORKER: usize = 256;

/// Figure 8 for one service.
#[derive(Debug, Clone)]
pub struct ConcentrationReport {
    /// Service name.
    pub name: &'static str,
    /// Cumulative (commune share, traffic share) curve, downlink.
    pub dl_curve: Vec<(f64, f64)>,
    /// Cumulative curve, uplink.
    pub ul_curve: Vec<(f64, f64)>,
    /// Traffic share of the top 1% of communes (downlink).
    pub top1_share: f64,
    /// Traffic share of the top 10% of communes (downlink).
    pub top10_share: f64,
    /// ECDF of weekly per-subscriber downlink volume over communes, MB.
    pub per_user_cdf: Ecdf,
}

/// Computes Figure 8 for one head service.
pub fn concentration(study: &Study, service: usize) -> ConcentrationReport {
    let ds = study.dataset();
    let dl = ds.commune_vector(Direction::Down, service);
    let ul = ds.commune_vector(Direction::Up, service);
    let per_user: Vec<f64> = ds
        .per_user_commune_vector(Direction::Down, service)
        .into_iter()
        .filter(|v| v.is_finite())
        .collect();
    ConcentrationReport {
        name: study.catalog().head()[service].name,
        dl_curve: concentration_curve(dl),
        ul_curve: concentration_curve(ul),
        top1_share: share_of_top(dl, 0.01),
        top10_share: share_of_top(dl, 0.10),
        per_user_cdf: Ecdf::new(&per_user),
    }
}

/// Figure 10: the pairwise spatial-correlation structure.
#[derive(Debug, Clone)]
pub struct SpatialCorrelation {
    /// Direction analyzed.
    pub direction: Direction,
    /// Service names in matrix order.
    pub names: Vec<&'static str>,
    /// Pairwise r² between per-user commune vectors (symmetric, unit
    /// diagonal).
    pub matrix: Vec<Vec<f64>>,
    /// The upper-triangle r² values (the CDF of Figure 10 left).
    pub pair_values: Vec<f64>,
    /// Mean pairwise r².
    pub mean_r2: f64,
}

impl SpatialCorrelation {
    /// Mean r² of one service against all others — low values flag the
    /// outliers the paper names (Netflix, iCloud).
    pub fn service_mean_r2(&self, service: usize) -> f64 {
        let n = self.matrix.len();
        let sum: f64 = (0..n).filter(|&j| j != service).map(|j| self.matrix[service][j]).sum();
        sum / (n - 1) as f64
    }

    /// Services sorted by ascending mean correlation (outliers first).
    pub fn outlier_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.matrix.len()).collect();
        order.sort_by(|&a, &b| {
            self.service_mean_r2(a)
                .partial_cmp(&self.service_mean_r2(b))
                .unwrap()
        });
        order
    }
}

/// Computes Figure 10 for one direction.
///
/// Communes with no subscribers are excluded from every pair (they carry
/// no signal, only zeros that would inflate correlations).
pub fn spatial_correlation(study: &Study, dir: Direction) -> SpatialCorrelation {
    spatial_correlation_of(study.dataset(), study.service_names(), dir)
}

/// [`spatial_correlation`] over a bare dataset — the entry point for
/// consumers that hold a [`TrafficDataset`] without a [`Study`] around it
/// (live snapshots, replayed traces). `names` are the head-service names
/// in dataset order; answers are bit-identical to the study-based path on
/// the same dataset.
pub fn spatial_correlation_of(
    ds: &TrafficDataset,
    names: Vec<&'static str>,
    dir: Direction,
) -> SpatialCorrelation {
    let _span = mobilenet_obs::span("spatial_r2");
    let n = names.len();
    let users = ds.commune_users();
    let keep: Vec<usize> = (0..ds.n_communes()).filter(|&c| users[c] > 0.0).collect();
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            let v = ds.per_user_commune_vector(dir, s);
            keep.iter().map(|&c| v[c]).collect()
        })
        .collect();

    // The O(S²·C) pairwise block, parallelized over the upper-triangle
    // pair list; results come back in pair order, so matrix and CDF are
    // identical at any thread count. The 20-service catalog yields only
    // 190 pairs — far below the per-worker threshold — so the standard
    // run stays inline instead of paying spawn/steal overhead that made
    // `--threads 8` slower than serial.
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect();
    let pair_values = mobilenet_par::par_map_min(&pairs, R2_MIN_PAIRS_PER_WORKER, |&(i, j)| {
        r_squared(&vectors[i], &vectors[j])
    });
    mobilenet_obs::add("core.r2_pairs", pairs.len() as u64);
    let mut matrix = vec![vec![1.0; n]; n];
    for (&(i, j), &r2) in pairs.iter().zip(pair_values.iter()) {
        matrix[i][j] = r2;
        matrix[j][i] = r2;
    }
    let mean_r2 = pair_values.iter().sum::<f64>() / pair_values.len().max(1) as f64;
    SpatialCorrelation { direction: dir, names, matrix, pair_values, mean_r2 }
}

/// Mergeable sufficient statistics of one (x, y) pair — the incremental
/// building block behind streaming pairwise r².
///
/// Holds the five raw moments (`Σx`, `Σy`, `Σx²`, `Σy²`, `Σxy`) plus the
/// count, so partial accumulators over disjoint observation sets
/// [`merge`](PairAccumulator::merge) into the statistics of the union.
/// The derived [`r_squared`](PairAccumulator::r_squared) agrees with the
/// batch [`r_squared`](mobilenet_timeseries::stats::r_squared) up to
/// floating-point accumulation order (merging reorders the additions, so
/// equality is to ~1e-12, not bitwise).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct PairAccumulator {
    /// Observations folded in.
    pub n: u64,
    /// `Σx`.
    pub sx: f64,
    /// `Σy`.
    pub sy: f64,
    /// `Σx²`.
    pub sxx: f64,
    /// `Σy²`.
    pub syy: f64,
    /// `Σxy`.
    pub sxy: f64,
}

impl PairAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        PairAccumulator::default()
    }

    /// Folds one paired observation in.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
    }

    /// The accumulator of two paired slices (panics if lengths differ).
    pub fn from_slices(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "paired slices must have equal length");
        let mut acc = PairAccumulator::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            acc.push(x, y);
        }
        acc
    }

    /// Folds another accumulator (over a disjoint observation set) in.
    pub fn merge(&mut self, other: &PairAccumulator) {
        self.n += other.n;
        self.sx += other.sx;
        self.sy += other.sy;
        self.sxx += other.sxx;
        self.syy += other.syy;
        self.sxy += other.sxy;
    }

    /// The squared Pearson correlation of everything folded in so far;
    /// 0.0 when either marginal is constant (no signal to correlate).
    pub fn r_squared(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let cov = self.sxy - self.sx * self.sy / n;
        let vx = self.sxx - self.sx * self.sx / n;
        let vy = self.syy - self.sy * self.sy / n;
        if vx <= 0.0 || vy <= 0.0 {
            return 0.0;
        }
        let r = cov / (vx * vy).sqrt();
        r * r
    }
}

/// Moran's I spatial autocorrelation of a per-commune field, with
/// row-normalized k-nearest-neighbour weights.
///
/// The maps of Figure 9 show demand clustering around cities and
/// corridors; Moran's I turns that visual statement into a statistic:
/// values near +1 mean neighbouring communes carry similar per-user
/// demand, ≈ 0 means spatial randomness. Used by the ablation harness to
/// quantify how localization error smooths (and thus *raises*) spatial
/// autocorrelation.
///
/// # Panics
///
/// Panics unless `values` has one entry per commune and `k >= 1`.
pub fn morans_i(country: &mobilenet_geo::Country, values: &[f64], k: usize) -> f64 {
    let n = country.communes().len();
    assert_eq!(values.len(), n, "one value per commune");
    assert!(k >= 1, "need at least one neighbour");
    let mean = values.iter().sum::<f64>() / n as f64;
    let dev: Vec<f64> = values.iter().map(|v| v - mean).collect();
    let denom: f64 = dev.iter().map(|d| d * d).sum();
    if denom <= 0.0 {
        return 0.0;
    }

    // k nearest neighbours via an expanding radius search around each
    // centroid (the commune lattice is near-uniform, so ~√k pitches
    // usually suffice).
    let pitch = country.config().mean_commune_area().sqrt();
    let mut num = 0.0;
    let mut weight_total = 0.0;
    for (i, commune) in country.communes().iter().enumerate() {
        let mut radius = pitch * ((k as f64).sqrt() + 1.0);
        let mut neighbours: Vec<usize>;
        loop {
            neighbours = country
                .communes_within(&commune.centroid, radius)
                .into_iter()
                .map(|id| id.index())
                .filter(|&j| j != i)
                .collect();
            if neighbours.len() >= k || radius > pitch * 50.0 {
                break;
            }
            radius *= 1.6;
        }
        neighbours.sort_by(|&a, &b| {
            let da = country.communes()[a].centroid.distance_sq(&commune.centroid);
            let db = country.communes()[b].centroid.distance_sq(&commune.centroid);
            da.partial_cmp(&db).unwrap()
        });
        neighbours.truncate(k);
        if neighbours.is_empty() {
            continue;
        }
        let w = 1.0 / neighbours.len() as f64; // row-normalized
        for &j in &neighbours {
            num += w * dev[i] * dev[j];
            weight_total += w;
        }
    }
    if weight_total <= 0.0 {
        return 0.0;
    }
    (n as f64 / weight_total) * (num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measured study: collection artefacts included.
    fn study() -> &'static Study {
        crate::testutil::measured_study()
    }

    /// Expected study: validates that the analysis recovers the designed
    /// spatial structure absent sampling noise.
    fn expected() -> &'static Study {
        crate::testutil::expected_study()
    }

    #[test]
    fn twitter_concentration_matches_figure_8_shape() {
        let s = study();
        let twitter = s
            .catalog()
            .head()
            .iter()
            .position(|x| x.name == "Twitter")
            .unwrap();
        let report = concentration(s, twitter);
        // Paper: top 1% > 50%, top 10% > 90%. The synthetic country is far
        // smaller than France, so require clear skew rather than exact
        // figures.
        assert!(report.top1_share > 0.10, "top1 {}", report.top1_share);
        assert!(report.top10_share > 0.45, "top10 {}", report.top10_share);
        assert!(report.top10_share > report.top1_share);
        // Per-user CDF spans orders of magnitude.
        let cdf = &report.per_user_cdf;
        assert!(cdf.len() > 500);
        let p10 = cdf.inverse(0.10).max(1e-9);
        let p90 = cdf.inverse(0.90);
        assert!(p90 / p10 > 3.0, "per-user spread {p10}..{p90}");
    }

    #[test]
    fn concentration_curves_are_monotone() {
        let s = study();
        let report = concentration(s, 0);
        for w in report.dl_curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((report.dl_curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn services_correlate_strongly_in_space() {
        let s = expected();
        let corr = spatial_correlation(s, Direction::Down);
        // Paper: mean ≈ 0.60 downlink.
        assert!(
            corr.mean_r2 > 0.35 && corr.mean_r2 < 0.85,
            "mean r² {}",
            corr.mean_r2
        );
        assert_eq!(corr.pair_values.len(), 20 * 19 / 2);
    }

    #[test]
    fn netflix_and_icloud_are_outliers() {
        let s = expected();
        let corr = spatial_correlation(s, Direction::Down);
        let order = corr.outlier_order();
        let lowest3: Vec<&str> = order[..3].iter().map(|&i| corr.names[i]).collect();
        assert!(
            lowest3.contains(&"Netflix"),
            "Netflix not among lowest correlations: {lowest3:?}"
        );
        assert!(
            lowest3.contains(&"iCloud"),
            "iCloud not among lowest correlations: {lowest3:?}"
        );
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let s = study();
        let corr = spatial_correlation(s, Direction::Up);
        let n = corr.matrix.len();
        for i in 0..n {
            assert_eq!(corr.matrix[i][i], 1.0);
            for j in 0..n {
                assert!((corr.matrix[i][j] - corr.matrix[j][i]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&corr.matrix[i][j]));
            }
        }
    }

    #[test]
    fn morans_i_detects_spatial_structure() {
        let s = expected();
        let country = s.country();
        // Per-user demand is spatially structured (cities, corridors).
        let per_user = s.dataset().per_user_commune_vector(Direction::Down, 0);
        let structured = morans_i(country, &per_user, 6);
        assert!(structured > 0.05, "Moran's I {structured}");

        // A deterministic pseudo-random field is not.
        // A fully scrambled hash (a bare multiply is a low-discrepancy
        // sequence, which is *negatively* autocorrelated on the lattice).
        let random: Vec<f64> = (0..country.communes().len())
            .map(|i| {
                let mut h = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                (h >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let unstructured = morans_i(country, &random, 6);
        assert!(unstructured.abs() < 0.1, "random field Moran's I {unstructured}");
        assert!(structured > unstructured + 0.05);

        // Constant fields are defined as zero.
        let constant = vec![3.0; country.communes().len()];
        assert_eq!(morans_i(country, &constant, 6), 0.0);
    }

    #[test]
    fn dataset_level_correlation_matches_the_study_path() {
        let s = study();
        let via_study = spatial_correlation(s, Direction::Down);
        let via_dataset =
            spatial_correlation_of(s.dataset(), s.service_names(), Direction::Down);
        assert_eq!(via_study.pair_values, via_dataset.pair_values);
        assert_eq!(via_study.names, via_dataset.names);
        assert_eq!(via_study.mean_r2, via_dataset.mean_r2);
    }

    #[test]
    fn pair_accumulator_agrees_with_batch_r_squared() {
        let s = expected();
        let ds = s.dataset();
        let xs = ds.per_user_commune_vector(Direction::Down, 0);
        let ys = ds.per_user_commune_vector(Direction::Down, 1);
        let keep: Vec<(f64, f64)> = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|(&x, &y)| (x, y))
            .collect();
        let (kx, ky): (Vec<f64>, Vec<f64>) = keep.into_iter().unzip();
        let batch = r_squared(&kx, &ky);
        let acc = PairAccumulator::from_slices(&kx, &ky);
        assert!(
            (acc.r_squared() - batch).abs() < 1e-9,
            "incremental {} vs batch {batch}",
            acc.r_squared()
        );
    }

    #[test]
    fn pair_accumulator_merge_is_the_statistics_of_the_union() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() + i as f64 / 50.0).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i as f64).cos() + i as f64 / 30.0).collect();
        let whole = PairAccumulator::from_slices(&xs, &ys);
        let mut merged = PairAccumulator::from_slices(&xs[..37], &ys[..37]);
        merged.merge(&PairAccumulator::from_slices(&xs[37..], &ys[37..]));
        assert_eq!(merged.n, whole.n);
        // Merging reorders the floating-point additions, so agreement is
        // to tolerance, not bitwise.
        assert!((merged.r_squared() - whole.r_squared()).abs() < 1e-12);
        assert!((merged.sxy - whole.sxy).abs() < 1e-9 * whole.sxy.abs().max(1.0));
    }

    #[test]
    fn pair_accumulator_degenerate_inputs_are_zero() {
        assert_eq!(PairAccumulator::new().r_squared(), 0.0);
        let mut one = PairAccumulator::new();
        one.push(1.0, 2.0);
        assert_eq!(one.r_squared(), 0.0);
        let constant = PairAccumulator::from_slices(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(constant.r_squared(), 0.0, "constant marginal has no signal");
    }

    #[test]
    fn uplink_correlations_are_similar_or_lower() {
        let s = expected();
        let dl = spatial_correlation(s, Direction::Down);
        let ul = spatial_correlation(s, Direction::Up);
        // Paper: 0.60 vs 0.53 — uplink slightly lower; allow equality-ish.
        assert!(ul.mean_r2 < dl.mean_r2 + 0.1);
    }
}
