//! Demand forecasting — the orchestration use-case the paper motivates.
//!
//! The introduction argues that knowing *when* each service is consumed
//! lets future networks "dynamically tailor resources to the actual
//! fluctuations of the subscribers' activity", and the related work it
//! builds on (reference 15, SIGMETRICS'11) reports that service traffic is highly
//! predictable. This module quantifies that predictability on the
//! synthetic dataset with two classical forecasters, trained on the first
//! part of the week and scored on the rest:
//!
//! * **seasonal-naïve** — tomorrow looks like the same hour yesterday
//!   (period 24) or last week (period 168);
//! * **Holt–Winters** — additive triple exponential smoothing (level,
//!   trend, seasonal), implemented from scratch.

use mobilenet_traffic::{Direction, HOURS_PER_DAY};

use crate::study::Study;

/// Forecast accuracy metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastScore {
    /// Mean absolute percentage error (on hours with positive actuals).
    pub mape: f64,
    /// Symmetric MAPE, robust to near-zero actuals.
    pub smape: f64,
}

/// Scores a forecast against actuals.
pub fn score(actual: &[f64], forecast: &[f64]) -> ForecastScore {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(!actual.is_empty(), "cannot score an empty horizon");
    let mut mape_sum = 0.0;
    let mut mape_n = 0usize;
    let mut smape_sum = 0.0;
    for (&a, &f) in actual.iter().zip(forecast.iter()) {
        if a > 0.0 {
            mape_sum += ((a - f) / a).abs();
            mape_n += 1;
        }
        let denom = (a.abs() + f.abs()) / 2.0;
        if denom > 0.0 {
            smape_sum += (a - f).abs() / denom;
        }
    }
    ForecastScore {
        mape: if mape_n > 0 { mape_sum / mape_n as f64 } else { 0.0 },
        smape: smape_sum / actual.len() as f64,
    }
}

/// Seasonal-naïve forecast: repeats the last observed period.
///
/// # Panics
///
/// Panics unless `history.len() >= period` and `horizon >= 1`.
pub fn seasonal_naive(history: &[f64], period: usize, horizon: usize) -> Vec<f64> {
    assert!(period >= 1 && history.len() >= period, "need one full period of history");
    assert!(horizon >= 1, "horizon must be positive");
    let last = &history[history.len() - period..];
    (0..horizon).map(|h| last[h % period]).collect()
}

/// Additive Holt–Winters smoothing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltWintersConfig {
    /// Level smoothing, in `(0, 1)`.
    pub alpha: f64,
    /// Trend smoothing, in `[0, 1)`.
    pub beta: f64,
    /// Seasonal smoothing, in `[0, 1)`.
    pub gamma: f64,
    /// Seasonal period (24 for daily structure, 168 for weekly).
    pub period: usize,
}

impl HoltWintersConfig {
    /// Defaults tuned for hourly mobile-traffic series with daily
    /// seasonality.
    pub fn hourly() -> Self {
        HoltWintersConfig { alpha: 0.35, beta: 0.02, gamma: 0.25, period: HOURS_PER_DAY }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.alpha) || self.alpha == 0.0 {
            return Err("alpha must be in (0,1)".into());
        }
        if !(0.0..1.0).contains(&self.beta) {
            return Err("beta must be in [0,1)".into());
        }
        if !(0.0..1.0).contains(&self.gamma) {
            return Err("gamma must be in [0,1)".into());
        }
        if self.period < 2 {
            return Err("period must be at least 2".into());
        }
        Ok(())
    }
}

/// Fits additive Holt–Winters on `history` and forecasts `horizon` steps.
///
/// Initialization follows the standard recipe: level = mean of the first
/// period, trend = average per-step change between the first two periods,
/// seasonal = first-period deviations from the initial level.
///
/// # Panics
///
/// Panics if the configuration is invalid or `history` is shorter than
/// two periods.
pub fn holt_winters(history: &[f64], config: &HoltWintersConfig, horizon: usize) -> Vec<f64> {
    config.validate().expect("invalid HoltWintersConfig");
    let m = config.period;
    assert!(history.len() >= 2 * m, "need two periods of history ({} < {})", history.len(), 2 * m);
    assert!(horizon >= 1, "horizon must be positive");

    // Initialization.
    let first: f64 = history[..m].iter().sum::<f64>() / m as f64;
    let second: f64 = history[m..2 * m].iter().sum::<f64>() / m as f64;
    let mut level = first;
    let mut trend = (second - first) / m as f64;
    let mut seasonal: Vec<f64> = history[..m].iter().map(|x| x - first).collect();

    // Smoothing pass.
    for (i, &x) in history.iter().enumerate() {
        let s = seasonal[i % m];
        let new_level = config.alpha * (x - s) + (1.0 - config.alpha) * (level + trend);
        let new_trend = config.beta * (new_level - level) + (1.0 - config.beta) * trend;
        seasonal[i % m] = config.gamma * (x - new_level) + (1.0 - config.gamma) * s;
        level = new_level;
        trend = new_trend;
    }

    // Forecast.
    let n = history.len();
    (1..=horizon)
        .map(|h| level + trend * h as f64 + seasonal[(n + h - 1) % m])
        .collect()
}

/// One service's predictability report.
#[derive(Debug, Clone)]
pub struct ServiceForecast {
    /// Catalog index.
    pub service: usize,
    /// Display name.
    pub name: &'static str,
    /// Seasonal-naïve (period 24) score over the held-out horizon.
    pub naive: ForecastScore,
    /// Holt–Winters score over the same horizon.
    pub holt_winters: ForecastScore,
}

/// Trains on the first `train_hours` of the week and scores both
/// forecasters on the remainder, for every head service.
///
/// # Panics
///
/// Panics unless `train_hours` leaves a non-empty horizon and covers two
/// days.
pub fn forecast_report(study: &Study, dir: Direction, train_hours: usize) -> Vec<ServiceForecast> {
    let total = mobilenet_traffic::HOURS_PER_WEEK;
    assert!(train_hours >= 2 * HOURS_PER_DAY && train_hours < total, "bad split");
    let horizon = total - train_hours;
    let cfg = HoltWintersConfig::hourly();
    study
        .catalog()
        .head()
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let series = study.dataset().national_series(dir, s);
            let (train, test) = series.split_at(train_hours);
            let naive = score(test, &seasonal_naive(train, HOURS_PER_DAY, horizon));
            let hw = score(test, &holt_winters(train, &cfg, horizon));
            ServiceForecast { service: s, name: spec.name, naive, holt_winters: hw }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 + 40.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn seasonal_naive_is_perfect_on_pure_seasonality() {
        let s = daily(96);
        let f = seasonal_naive(&s[..72], 24, 24);
        let sc = score(&s[72..], &f);
        assert!(sc.mape < 1e-12, "mape {}", sc.mape);
    }

    #[test]
    fn holt_winters_tracks_seasonality_with_trend() {
        let s: Vec<f64> = daily(240).iter().enumerate().map(|(i, v)| v + i as f64 * 0.5).collect();
        let f = holt_winters(&s[..192], &HoltWintersConfig::hourly(), 48);
        let sc = score(&s[192..], &f);
        assert!(sc.mape < 0.05, "mape {}", sc.mape);
        // Naïve ignores the trend, so Holt–Winters must win.
        let nf = seasonal_naive(&s[..192], 24, 48);
        let nsc = score(&s[192..], &nf);
        assert!(sc.mape < nsc.mape, "hw {} vs naive {}", sc.mape, nsc.mape);
    }

    #[test]
    fn score_handles_zeros() {
        let sc = score(&[0.0, 2.0], &[1.0, 2.0]);
        assert_eq!(sc.mape, 0.0); // zero actual excluded
        assert!(sc.smape > 0.0);
        let perfect = score(&[5.0, 5.0], &[5.0, 5.0]);
        assert_eq!(perfect.mape, 0.0);
        assert_eq!(perfect.smape, 0.0);
    }

    #[test]
    fn study_series_are_predictable() {
        // The paper-adjacent claim ([15]): mobile service traffic is highly
        // predictable. Train on 5 days, score the last 2.
        let study = crate::testutil::expected_study();
        let report = forecast_report(study, Direction::Down, 120);
        for f in &report {
            assert!(
                f.naive.smape < 0.9 && f.holt_winters.smape < 0.9,
                "{}: naive {:.2} hw {:.2}",
                f.name,
                f.naive.smape,
                f.holt_winters.smape
            );
        }
        // Median sMAPE across services is small.
        let mut smapes: Vec<f64> = report.iter().map(|f| f.naive.smape).collect();
        smapes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = smapes[smapes.len() / 2];
        assert!(median < 0.45, "median naive sMAPE {median}");
    }

    #[test]
    #[should_panic(expected = "two periods")]
    fn holt_winters_needs_history() {
        holt_winters(&[1.0; 30], &HoltWintersConfig::hourly(), 4);
    }

    #[test]
    fn config_validation_rejects_bad_parameters() {
        let ok = HoltWintersConfig::hourly();
        assert!(ok.validate().is_ok());
        assert!(HoltWintersConfig { alpha: 0.0, ..ok }.validate().is_err());
        assert!(HoltWintersConfig { beta: 1.0, ..ok }.validate().is_err());
        assert!(HoltWintersConfig { gamma: -0.1, ..ok }.validate().is_err());
        assert!(HoltWintersConfig { period: 1, ..ok }.validate().is_err());
    }
}
