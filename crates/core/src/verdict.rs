//! Programmatic paper-vs-reproduction verdicts.
//!
//! Every quantitative claim the paper makes is encoded here with an
//! acceptance band; [`evaluate`] measures each one on a study and reports
//! pass/fail. The `figures` binary prints the table (and writes
//! `verdict.txt`), and an integration test pins the whole reproduction to
//! these bands at figure scale — so a regression in any layer (generator,
//! pipeline, analysis) surfaces as a named, explained failure.
//!
//! Bands are deliberately wide: the substrate is a simulator, so the
//! *shape* of each result is what is being locked in, not the digits.

use mobilenet_geo::UsageClass;
use mobilenet_traffic::{Direction, TopicalTime};

use crate::peaks::PeakConfig;
use crate::ranking::{service_ranking, uplink_fraction, zipf_ranking};
use crate::spatial::{concentration, spatial_correlation};
use crate::study::Study;
use crate::temporal::{clustering_sweep, Algorithm};
use crate::topical::topical_profiles;
use crate::urbanization::{mean_temporal_r2, mean_volume_ratios, urbanization_profiles};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct PaperClaim {
    /// Short identifier (`fig2-dl-zipf`, …).
    pub id: &'static str,
    /// What the paper reports.
    pub paper: &'static str,
    /// The value measured on this study.
    pub measured: f64,
    /// Acceptance band (inclusive).
    pub band: (f64, f64),
}

impl PaperClaim {
    /// Whether the measured value falls inside the band.
    pub fn pass(&self) -> bool {
        self.measured.is_finite()
            && self.measured >= self.band.0
            && self.measured <= self.band.1
    }
}

/// Evaluates every encoded claim against `study`.
///
/// Designed for figure-scale studies (≥ `StudyConfig::medium`); the
/// smallest test configurations carry sampling noise some bands do not
/// budget for.
pub fn evaluate(study: &Study) -> Vec<PaperClaim> {
    let mut claims = Vec::new();

    // §3 / Figure 2.
    let fig2 = zipf_ranking(study);
    if let Some(fit) = &fig2.dl_fit {
        claims.push(PaperClaim {
            id: "fig2-dl-zipf-exponent",
            paper: "downlink Zipf exponent 1.69",
            measured: fit.exponent,
            band: (1.2, 2.2),
        });
    }
    if let Some(fit) = &fig2.ul_fit {
        claims.push(PaperClaim {
            id: "fig2-ul-zipf-exponent",
            paper: "uplink Zipf exponent 1.55",
            measured: fit.exponent,
            band: (1.1, 2.1),
        });
    }
    claims.push(PaperClaim {
        id: "fig2-span-orders",
        paper: "volumes span ~10 orders of magnitude",
        measured: fig2.dl_span_orders,
        band: (6.0, 14.0),
    });

    // §3 / Figure 3.
    let dl_ranking = service_ranking(study, Direction::Down);
    claims.push(PaperClaim {
        id: "fig3-video-share",
        paper: "video streaming > 46% of downlink",
        measured: dl_ranking
            .category_shares
            .get("video streaming")
            .copied()
            .unwrap_or(0.0),
        band: (0.40, 0.75),
    });
    claims.push(PaperClaim {
        id: "fig3-head-share",
        paper: "top-20 services > 60% of traffic",
        measured: dl_ranking.head_share,
        band: (0.60, 0.95),
    });
    claims.push(PaperClaim {
        id: "fig3-unclassified",
        paper: "DPI classifies 88% of traffic",
        measured: dl_ranking.unclassified_share,
        band: (0.08, 0.16),
    });
    claims.push(PaperClaim {
        id: "fig3-uplink-fraction",
        paper: "uplink < 1/20 of the load",
        measured: uplink_fraction(study),
        band: (0.01, 0.07),
    });
    let ul_ranking = service_ranking(study, Direction::Up);
    let ul_top3_social = ul_ranking.services[..3]
        .iter()
        .filter(|s| {
            matches!(
                s.category,
                mobilenet_traffic::Category::SocialNetwork
                    | mobilenet_traffic::Category::Messaging
            )
        })
        .count() as f64;
    claims.push(PaperClaim {
        id: "fig3-uplink-top3-social",
        paper: "social/messaging hold the top three uplink positions",
        measured: ul_top3_social,
        band: (2.0, 3.0),
    });

    // §4 / Figure 5. The paper's finding is that the indices are
    // *inconclusive*: no silhouette strong enough to call the clusters
    // clean, and the indices disagree about the best k.
    let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 3);
    let max_sil = sweep
        .points
        .iter()
        .map(|p| p.scores.silhouette)
        .fold(f64::NEG_INFINITY, f64::max);
    claims.push(PaperClaim {
        id: "fig5-no-clean-clustering",
        paper: "no k yields clean clusters",
        measured: max_sil,
        band: (-1.0, 0.7),
    });
    let disagreement =
        (sweep.best_k_by_db() as f64 - sweep.best_k_by_silhouette() as f64).abs();
    claims.push(PaperClaim {
        id: "fig5-indices-disagree",
        paper: "quality indices do not agree on a winner k",
        measured: disagreement,
        band: (2.0, 18.0),
    });

    // §4 / Figures 6–7.
    let profiles = topical_profiles(study, Direction::Down, &PeakConfig::paper());
    let midday = profiles
        .iter()
        .filter(|p| p.has_peak[TopicalTime::Midday.index()])
        .count() as f64;
    claims.push(PaperClaim {
        id: "fig6-midday-universal",
        paper: "almost all services peak at weekday midday",
        measured: midday,
        band: (16.0, 20.0),
    });
    let mut signatures: Vec<[bool; 7]> = profiles.iter().map(|p| p.has_peak).collect();
    signatures.sort_unstable();
    signatures.dedup();
    claims.push(PaperClaim {
        id: "fig6-heterogeneity",
        paper: "services show diverse peak patterns",
        measured: signatures.len() as f64,
        band: (8.0, 20.0),
    });

    // §5 / Figure 8.
    let twitter = study
        .catalog()
        .head()
        .iter()
        .position(|s| s.name == "Twitter")
        .expect("Twitter in catalog");
    let conc = concentration(study, twitter);
    claims.push(PaperClaim {
        id: "fig8-top10-concentration",
        paper: "top 10% of communes carry > 90% of Twitter traffic",
        measured: conc.top10_share,
        band: (0.55, 1.0),
    });

    // §5 / Figure 10.
    let corr = spatial_correlation(study, Direction::Down);
    claims.push(PaperClaim {
        id: "fig10-mean-r2",
        paper: "mean pairwise per-user r² ≈ 0.60 (downlink)",
        measured: corr.mean_r2,
        band: (0.30, 0.80),
    });
    let order = corr.outlier_order();
    let outliers: Vec<&str> = order[..4].iter().map(|&i| corr.names[i]).collect();
    let named = ["Netflix", "iCloud"]
        .iter()
        .filter(|n| outliers.contains(*n))
        .count() as f64;
    claims.push(PaperClaim {
        id: "fig10-outliers",
        paper: "Netflix and iCloud are the low-correlation outliers",
        measured: named,
        band: (2.0, 2.0),
    });

    // §5 / Figure 11.
    let urb = urbanization_profiles(study, Direction::Down);
    let ratios = mean_volume_ratios(&urb);
    claims.push(PaperClaim {
        id: "fig11-semi-urban-ratio",
        paper: "semi-urban per-user volume ≈ urban",
        measured: ratios[UsageClass::SemiUrban.index()],
        band: (0.70, 1.25),
    });
    claims.push(PaperClaim {
        id: "fig11-rural-ratio",
        paper: "rural per-user volume ≈ half of urban",
        measured: ratios[UsageClass::Rural.index()],
        band: (0.30, 0.75),
    });
    claims.push(PaperClaim {
        id: "fig11-tgv-ratio",
        paper: "TGV per-user volume ≥ 2× urban",
        measured: ratios[UsageClass::Tgv.index()],
        band: (1.5, 4.0),
    });
    let r2 = mean_temporal_r2(&urb);
    claims.push(PaperClaim {
        id: "fig11-tgv-timing-gap",
        paper: "urbanization does not change timing, except on TGV",
        measured: r2[UsageClass::Rural.index()] - r2[UsageClass::Tgv.index()],
        band: (0.05, 1.0),
    });

    claims
}

/// Renders the claims as an aligned text table.
pub fn verdict_table(claims: &[PaperClaim]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>9} {:>16}  {:<6} paper",
        "claim", "measured", "band", "status"
    );
    for c in claims {
        let _ = writeln!(
            out,
            "{:<26} {:>9.3} [{:>5.2}, {:>5.2}]  {:<6} {}",
            c.id,
            c.measured,
            c.band.0,
            c.band.1,
            if c.pass() { "PASS" } else { "FAIL" },
            c.paper
        );
    }
    let passed = claims.iter().filter(|c| c.pass()).count();
    let _ = writeln!(out, "{passed}/{} claims within band", claims.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_are_well_formed() {
        let study = crate::testutil::expected_study();
        let claims = evaluate(study);
        assert!(claims.len() >= 19, "only {} claims", claims.len());
        let mut ids: Vec<&str> = claims.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), claims.len(), "claim ids must be unique");
        for c in &claims {
            assert!(c.band.0 <= c.band.1, "{}: inverted band", c.id);
            assert!(c.measured.is_finite(), "{}: non-finite measurement", c.id);
        }
    }

    #[test]
    fn expected_study_passes_the_core_claims() {
        // The expected path at small scale should already satisfy the
        // temporal and urbanization claims (the spatial concentration ones
        // need figure scale).
        let study = crate::testutil::expected_study();
        let claims = evaluate(study);
        for c in &claims {
            // fig5's band is calibrated for figure scale: at 1,000
            // communes the expected path slightly exceeds it.
            if matches!(
                c.id,
                "fig6-midday-universal"
                    | "fig6-heterogeneity"
                    | "fig11-rural-ratio"
                    | "fig11-tgv-timing-gap"
                    | "fig3-video-share"
            ) {
                assert!(c.pass(), "{}: measured {} outside {:?}", c.id, c.measured, c.band);
            }
        }
    }

    #[test]
    fn table_renders_every_claim() {
        let study = crate::testutil::expected_study();
        let claims = evaluate(study);
        let table = verdict_table(&claims);
        for c in &claims {
            assert!(table.contains(c.id), "{} missing from table", c.id);
        }
        assert!(table.contains("claims within band"));
    }
}
