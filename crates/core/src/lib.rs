//! The spatiotemporal analyses of *Not All Apps Are Created Equal*
//! (CoNEXT 2017).
//!
//! This crate is the paper's primary contribution: the analysis pipeline
//! that turns a week of commune-aggregated per-service traffic into the
//! paper's findings. Each module maps to a section of the paper:
//!
//! * [`study`] — dataset assembly: geography generation → demand model →
//!   measurement pipeline → the [`Study`] every analysis consumes (§2).
//! * [`ranking`] — service rankings, Zipf fits and category shares
//!   (§3, Figures 2–3).
//! * [`peaks`] — the smoothed z-score activity-peak detector (§4,
//!   Figure 4).
//! * [`topical`] — mapping detected peaks to the seven topical times and
//!   measuring peak intensities (§4, Figures 6–7).
//! * [`temporal`] — the k-shape clustering experiment over all `k` and
//!   four quality indices (§4, Figure 5).
//! * [`spatial`] — traffic concentration across communes, per-subscriber
//!   CDFs and pairwise spatial correlation (§5, Figures 8 and 10).
//! * [`maps`] — rasterized per-subscriber activity and coverage maps
//!   (§5, Figure 9).
//! * [`urbanization`] — per-user volume ratios and temporal correlation
//!   across urbanization levels (§5, Figure 11).
//! * [`report`] — CSV/text serialization of every figure for the
//!   benchmark harness.
//! * [`verdict`] — every quantitative paper claim with an acceptance
//!   band, evaluated programmatically (the reproduction's regression
//!   gate).
//!
//! Extensions beyond the paper's evaluation:
//!
//! * [`forecast`] — seasonal-naïve and Holt–Winters demand forecasts
//!   (the predictability the paper's orchestration motivation assumes).
//! * [`slicing`] — network-slice dimensioning and pooling-gain analysis
//!   (the application of §1).
//!
//! Infrastructure shared by every consumer:
//!
//! * [`pipeline`] — the [`Pipeline`] builder, the single entry point that
//!   assembles a study (scale → config → seed → threads → observability).
//! * [`error`] — the unified [`Error`] every fallible assembly path
//!   returns.
//!
//! # Quickstart
//!
//! ```no_run
//! use mobilenet_core::{Pipeline, Scale};
//!
//! let run = Pipeline::builder().scale(Scale::Small).seed(42).run().unwrap();
//! let fig2 = mobilenet_core::ranking::zipf_ranking(run.study());
//! println!("downlink Zipf exponent: {:.2}", fig2.dl_fit.unwrap().exponent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod forecast;
pub mod maps;
#[cfg(test)]
pub(crate) mod testutil;
pub mod peaks;
pub mod pipeline;
pub mod ranking;
pub mod report;
pub mod slicing;
pub mod spatial;
pub mod study;
pub mod temporal;
pub mod topical;
pub mod urbanization;
pub mod verdict;

pub use error::Error;
pub use mobilenet_netsim::{
    CollectOptions, FaultPlan, FaultStats, FoldStrategy, IngestStats, OutageWindow,
    DEFAULT_CHUNK_SIZE,
};
pub use pipeline::{Pipeline, PipelineBuilder, Run, Scale, DEFAULT_SEED};
pub use ranking::{service_ranking_of, top_k_services};
pub use spatial::{spatial_correlation_of, PairAccumulator};
pub use study::{Study, StudyConfig};
pub use topical::{profile_service, topical_profiles_of};
