//! Shared test fixtures: studies are expensive to generate, so tests reuse
//! process-wide instances.

use std::sync::OnceLock;

use crate::study::{Study, StudyConfig};

/// A small measured study (sampling noise, collection artefacts).
pub(crate) fn measured_study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| Study::generate_inner(&StudyConfig::small(), 7))
}

/// A small expected-value study (no sampling noise, no collection
/// artefacts) — used by the statistical-recovery tests.
pub(crate) fn expected_study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| Study::generate_inner(&StudyConfig::small().expected(), 7))
}
