//! The unified entry point: `Pipeline::builder()…run()`.
//!
//! Every binary, example and benchmark assembles its study the same way —
//! pick a scale, maybe tweak the configuration, set a seed, pin threads,
//! toggle observability, run. This module packages that sequence as one
//! builder so the wiring lives in exactly one place:
//!
//! ```no_run
//! use mobilenet_core::{Pipeline, Scale};
//!
//! let run = Pipeline::builder()
//!     .scale(Scale::Small)
//!     .seed(42)
//!     .threads(4)
//!     .obs(true)
//!     .run()
//!     .expect("valid configuration");
//! println!("{} sessions collected", run.collection_stats().unwrap().sessions);
//! ```
//!
//! [`PipelineBuilder::run`] validates the configuration up front and
//! returns a typed [`Error`] instead of panicking; the resulting [`Run`]
//! exposes the study plus the observability snapshot of the build.

use std::path::Path;
use std::str::FromStr;

use mobilenet_geo::Country;
use mobilenet_netsim::{CollectionStats, FaultPlan, FoldStrategy, IngestStats, SessionRecord};
use mobilenet_traffic::{ServiceCatalog, TrafficDataset};

use crate::error::Error;
use crate::study::{Study, StudyConfig};

/// The default master seed — the measurement week's start date
/// (2016-09-24, the paper's campaign).
#[allow(clippy::inconsistent_digit_grouping)]
pub const DEFAULT_SEED: u64 = 2016_09_24;

/// A named study scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1,000 communes — the unit-test scale.
    Small,
    /// ~6,000 communes — the figure-generation scale.
    Medium,
    /// Full France scale: 36,000 communes, 30 M subscribers.
    France,
    /// The paper-scale measurement tier: France geography with ~10⁸
    /// sessions over the week, streamed in bounded memory.
    National,
}

impl Scale {
    /// The measured [`StudyConfig`] of this scale.
    pub fn config(self) -> StudyConfig {
        match self {
            Scale::Small => StudyConfig::small(),
            Scale::Medium => StudyConfig::medium(),
            Scale::France => StudyConfig::france_scale(),
            Scale::National => StudyConfig::national(),
        }
    }

    /// The scale's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::France => "france",
            Scale::National => "national",
        }
    }
}

impl FromStr for Scale {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        match s {
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            "france" | "france-scale" => Ok(Scale::France),
            "national" => Ok(Scale::National),
            other => Err(Error::UnknownScale(other.to_string())),
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The assembly pipeline; use [`Pipeline::builder`] to configure and run
/// it.
#[derive(Debug)]
pub struct Pipeline;

impl Pipeline {
    /// A builder starting from the small measured scale and
    /// [`DEFAULT_SEED`].
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }
}

/// Configures one end-to-end study assembly. See the [module
/// docs](self) for the typical call chain.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    config: StudyConfig,
    seed: u64,
    threads: Option<usize>,
    obs: Option<bool>,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        PipelineBuilder {
            config: StudyConfig::small(),
            seed: DEFAULT_SEED,
            threads: None,
            obs: None,
        }
    }
}

impl PipelineBuilder {
    /// Selects a named scale (resetting any prior configuration to that
    /// scale's measured defaults).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.config = scale.config();
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: StudyConfig) -> Self {
        self.config = config;
        self
    }

    /// Edits the configuration in place — the hook for per-study tweaks
    /// (event calendars, ablated pipeline parameters, …).
    pub fn configure(mut self, edit: impl FnOnce(&mut StudyConfig)) -> Self {
        edit(&mut self.config);
        self
    }

    /// Switches to the noise-free expected-value path (no measurement
    /// pipeline, no collection stats).
    pub fn expected(mut self) -> Self {
        self.config.measured = false;
        self
    }

    /// Installs a capture-path fault plan (probe outages, record loss,
    /// duplication, counter truncation, clock skew). The default
    /// [`FaultPlan::none`] reproduces the historical fault-free pipeline
    /// bit for bit.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Bounds the streaming ingestion chunk size, in records (default:
    /// [`mobilenet_netsim::DEFAULT_CHUNK_SIZE`]). Peak resident records
    /// during collection stay at or below `chunk_size × workers`; the
    /// aggregated output is bit-identical at every chunk size.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.config.chunk_size = chunk_size;
        self
    }

    /// Selects how the streaming engine folds record batches (default:
    /// [`FoldStrategy::Batched`], the columnar dense-accumulation path;
    /// [`FoldStrategy::RowAtATime`] is the bit-identical legacy reference
    /// kept for differential testing).
    pub fn fold_strategy(mut self, fold: FoldStrategy) -> Self {
        self.config.fold = fold;
        self
    }

    /// Sets the master seed (default: [`DEFAULT_SEED`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker count of every parallel stage. Process-global,
    /// like the `MOBILENET_THREADS` environment variable it overrides:
    /// the setting persists beyond this run.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Turns observability collection on or off for the process
    /// (equivalent to [`mobilenet_obs::set_enabled`], overriding the
    /// `MOBILENET_OBS` environment variable). Without this call the
    /// environment decides.
    pub fn obs(mut self, enabled: bool) -> Self {
        self.obs = Some(enabled);
        self
    }

    /// Validates the configuration and assembles the study.
    ///
    /// Output is deterministic in `(config, seed)` and bit-identical at
    /// any thread count, with or without observability.
    pub fn run(self) -> Result<Run, Error> {
        self.config.netsim.validate().map_err(Error::Config)?;
        self.config.collect_options().validate().map_err(Error::Config)?;
        if let Some(enabled) = self.obs {
            mobilenet_obs::set_enabled(Some(enabled));
        }
        if let Some(threads) = self.threads {
            mobilenet_par::set_thread_override(Some(threads));
        }
        let study = Study::generate_inner(&self.config, self.seed);
        Ok(Run { study })
    }
}

/// A completed pipeline run.
pub struct Run {
    study: Study,
}

impl Run {
    /// The assembled study.
    pub fn study(&self) -> &Study {
        &self.study
    }

    /// Consumes the run, yielding the study.
    pub fn into_study(self) -> Study {
        self.study
    }

    /// The generated country.
    pub fn country(&self) -> &Country {
        self.study.country()
    }

    /// The service catalog.
    pub fn catalog(&self) -> &ServiceCatalog {
        self.study.catalog()
    }

    /// The aggregated measurement tables.
    pub fn dataset(&self) -> &TrafficDataset {
        self.study.dataset()
    }

    /// Collection diagnostics (absent on the expected-value path).
    pub fn collection_stats(&self) -> Option<&CollectionStats> {
        self.study.collection_stats()
    }

    /// Streaming-ingestion diagnostics — chunk count, record count and
    /// peak resident records (absent on the expected-value path).
    pub fn ingest_stats(&self) -> Option<&IngestStats> {
        self.study.ingest_stats()
    }

    /// A snapshot of everything the observability layer recorded so far
    /// in this process (empty when collection is disabled).
    pub fn obs_snapshot(&self) -> mobilenet_obs::Snapshot {
        mobilenet_obs::snapshot()
    }

    /// Writes the current observability snapshot as JSON to `path`.
    pub fn write_obs_json(&self, path: &Path) -> Result<(), Error> {
        mobilenet_obs::write_json(path).map_err(Error::Io)
    }
}

/// Reads and parses a dataset CSV previously written by
/// [`TrafficDataset::to_csv`], streaming line by line instead of
/// materializing the file as one string.
pub fn load_dataset_csv(path: &Path) -> Result<TrafficDataset, Error> {
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(TrafficDataset::read_from(reader)?)
}

/// Reads and parses a probe trace previously written by
/// [`mobilenet_netsim::trace_to_csv`], streaming line by line instead
/// of materializing the file as one string.
pub fn load_trace_csv(path: &Path) -> Result<Vec<SessionRecord>, Error> {
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(mobilenet_netsim::read_trace_from(reader)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_traffic::Direction;

    #[test]
    fn scale_names_round_trip() {
        for scale in [Scale::Small, Scale::Medium, Scale::France, Scale::National] {
            assert_eq!(scale.name().parse::<Scale>().unwrap(), scale);
        }
        assert_eq!("france-scale".parse::<Scale>().unwrap(), Scale::France);
        assert!(matches!("big".parse::<Scale>(), Err(Error::UnknownScale(_))));
    }

    #[test]
    fn builder_matches_direct_generation() {
        let run = Pipeline::builder().seed(5).run().expect("small config is valid");
        let direct = Study::generate_inner(&StudyConfig::small(), 5);
        assert_eq!(
            run.dataset().national_weekly(Direction::Down, 0),
            direct.dataset().national_weekly(Direction::Down, 0)
        );
        assert!(run.collection_stats().is_some());
    }

    #[test]
    fn expected_path_and_configure_apply() {
        let run = Pipeline::builder()
            .seed(5)
            .expected()
            .configure(|c| c.traffic.n_tail_services = 7)
            .run()
            .unwrap();
        assert!(run.collection_stats().is_none());
        assert_eq!(run.dataset().tail_weekly(Direction::Down).len(), 7);
    }

    #[test]
    fn invalid_config_is_rejected_not_panicked() {
        let result = Pipeline::builder()
            .configure(|c| c.netsim.stations_per_10k_pop = -1.0)
            .run();
        assert!(matches!(result, Err(Error::Config(_))));
    }

    #[test]
    fn chunked_run_is_bit_identical_and_reports_ingest_stats() {
        let whole = Pipeline::builder().seed(9).run().unwrap();
        let chunked = Pipeline::builder().seed(9).chunk_size(17).run().unwrap();
        assert_eq!(whole.dataset().to_csv(), chunked.dataset().to_csv());
        let ingest = chunked.ingest_stats().expect("measured run has ingest stats");
        assert_eq!(ingest.chunk_size, 17);
        assert!(ingest.chunks >= 1);
        assert!(ingest.peak_resident_records <= ingest.resident_budget());
        assert!(whole.ingest_stats().is_some());
        let expected = Pipeline::builder().seed(9).expected().run().unwrap();
        assert!(expected.ingest_stats().is_none());
    }

    #[test]
    fn zero_chunk_size_is_rejected_not_panicked() {
        let result = Pipeline::builder().chunk_size(0).run();
        assert!(matches!(result, Err(Error::Config(_))));
    }

    #[test]
    fn invalid_fault_plan_is_rejected_not_panicked() {
        let result = Pipeline::builder()
            .faults(FaultPlan { loss_prob: 1.5, ..FaultPlan::none() })
            .run();
        assert!(matches!(result, Err(Error::Config(_))));
    }

    #[test]
    fn zero_fault_plan_matches_the_default_pipeline() {
        let plain = Pipeline::builder().seed(11).run().unwrap();
        let zeroed = Pipeline::builder().seed(11).faults(FaultPlan::none()).run().unwrap();
        assert_eq!(plain.dataset().to_csv(), zeroed.dataset().to_csv());
    }

    #[test]
    fn faulted_pipeline_degrades_and_reports_counters() {
        let run = Pipeline::builder().seed(11).faults(FaultPlan::degraded(3)).run().unwrap();
        let stats = run.collection_stats().expect("measured run has stats");
        assert!(stats.faults.any(), "degraded plan must register fault events");
        assert!(stats.faults.lost_total() > 0);
        assert!(run.dataset().total(Direction::Down) > 0.0, "degraded ≠ empty");
    }

    #[test]
    fn loaders_propagate_io_and_parse_errors() {
        let missing = Path::new("/nonexistent/mobilenet-test/ds.csv");
        assert!(matches!(load_dataset_csv(missing), Err(Error::Io(_))));
        let dir = std::env::temp_dir();
        let bad = dir.join("mobilenet_core_bad_dataset.csv");
        std::fs::write(&bad, "not a dataset\n").unwrap();
        assert!(matches!(load_dataset_csv(&bad), Err(Error::Dataset(_))));
        let bad_trace = dir.join("mobilenet_core_bad_trace.csv");
        std::fs::write(&bad_trace, "#mobilenet-trace v1\nbogus\n").unwrap();
        match load_trace_csv(&bad_trace) {
            Err(Error::Trace(e)) => assert_eq!(e.line, 2),
            other => panic!("expected trace error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&bad);
        let _ = std::fs::remove_file(&bad_trace);
    }
}
