//! The k-shape clustering experiment (§4, Figure 5).
//!
//! The paper exhaustively clusters the 20 services' weekly series with
//! k-shape for every `k ∈ [2, 19]` and ranks the outcomes with four
//! quality indices. No `k` wins: all indices indicate steadily decreasing
//! quality as `k` grows, which the paper reads as each service having
//! unique temporal dynamics. This module reproduces the full sweep.

use mobilenet_cluster::{
    davies_bouldin_from, davies_bouldin_star_from, dunn_from, kmeans, kshape, silhouette_from,
    Clustering,
};
use mobilenet_timeseries::norm::z_normalize;
use mobilenet_timeseries::sbd::{SbdEngine, SbdScratch, Spectrum};
use mobilenet_traffic::Direction;

use crate::study::Study;

/// Which clustering algorithm a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// k-Shape with shape-based distance (the paper's choice).
    KShape,
    /// Euclidean k-means on z-normalized series (ablation baseline).
    KMeans,
}

/// Quality indices of one clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexScores {
    /// Davies-Bouldin (minimum is best).
    pub davies_bouldin: f64,
    /// Modified Davies-Bouldin DB* (minimum is best).
    pub davies_bouldin_star: f64,
    /// Dunn (maximum is best).
    pub dunn: f64,
    /// Silhouette (maximum is best).
    pub silhouette: f64,
}

/// One row of Figure 5: the quality indices at a given `k`.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of clusters.
    pub k: usize,
    /// Index values.
    pub scores: IndexScores,
    /// The clustering itself (for inspection of the grouping).
    pub clustering: Clustering,
}

/// The full sweep for one direction.
#[derive(Debug, Clone)]
pub struct ClusteringSweep {
    /// Traffic direction clustered.
    pub direction: Direction,
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// One point per `k` in `2..=n-1`.
    pub points: Vec<SweepPoint>,
}

impl ClusteringSweep {
    /// `k` minimizing Davies-Bouldin.
    pub fn best_k_by_db(&self) -> usize {
        self.points
            .iter()
            .min_by(|a, b| {
                a.scores
                    .davies_bouldin
                    .partial_cmp(&b.scores.davies_bouldin)
                    .unwrap()
            })
            .map(|p| p.k)
            .unwrap_or(0)
    }

    /// `k` maximizing Silhouette.
    pub fn best_k_by_silhouette(&self) -> usize {
        self.points
            .iter()
            .max_by(|a, b| a.scores.silhouette.partial_cmp(&b.scores.silhouette).unwrap())
            .map(|p| p.k)
            .unwrap_or(0)
    }

    /// The paper's diagnosis: quality degrades as `k` grows — measured as
    /// the Spearman-like sign of the silhouette trend (fraction of
    /// adjacent `k` pairs where silhouette decreases).
    pub fn silhouette_decreasing_fraction(&self) -> f64 {
        let pairs = self.points.windows(2).count();
        if pairs == 0 {
            return 0.0;
        }
        let dec = self
            .points
            .windows(2)
            .filter(|w| w[1].scores.silhouette <= w[0].scores.silhouette)
            .count();
        dec as f64 / pairs as f64
    }
}

/// Runs the Figure 5 sweep on the national weekly series of all head
/// services.
///
/// `restarts` k-shape initializations are tried per `k`, keeping the run
/// with the best (lowest) within-cluster SBD inertia — mirroring the
/// paper's exhaustive search.
pub fn clustering_sweep(
    study: &Study,
    dir: Direction,
    algorithm: Algorithm,
    restarts: u64,
) -> ClusteringSweep {
    let series: Vec<Vec<f64>> = (0..study.catalog().head().len())
        .map(|s| study.dataset().national_series(dir, s).to_vec())
        .collect();
    sweep_series(&series, dir, algorithm, restarts)
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// The sweep over explicit series (also used by ablations and tests).
///
/// Parallelism is at the `(k, restart)` granularity: every restart of
/// every `k` is an independent job (its seed is the restart index, not a
/// shared stream), so `mobilenet-par` can fan all of them out and the
/// ordered result vector is reduced per `k` deterministically — the
/// earliest restart wins inertia ties, exactly as the old serial loop
/// did. Index scores are computed from distance tables filled once per
/// sweep (series-series) and once per `k` (centroid tables) through one
/// plan-cached [`SbdEngine`], so no distance is evaluated twice.
pub fn sweep_series(
    series: &[Vec<f64>],
    dir: Direction,
    algorithm: Algorithm,
    restarts: u64,
) -> ClusteringSweep {
    assert!(series.len() >= 3, "need at least 3 series to sweep k in 2..n");
    let z: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s)).collect();
    let n = z.len();
    let m = z[0].len();

    let _sweep_span = mobilenet_obs::span("kshape_sweep");
    let ks: Vec<usize> = (2..n).collect();
    mobilenet_obs::add("core.kshape_ks", ks.len() as u64);

    // One engine and one spectrum per series for the whole sweep; shared
    // read-only across restart workers.
    let engine = SbdEngine::new(m);
    let z_specs: Vec<Spectrum> = z.iter().map(|s| engine.spectrum(s)).collect();

    let r = restarts.max(1) as usize;
    let jobs: Vec<(usize, u64)> = ks
        .iter()
        .flat_map(|&k| (0..r as u64).map(move |restart| (k, restart)))
        .collect();
    let runs = mobilenet_par::par_map(&jobs, |&(k, restart)| {
        // Worker threads have a fresh span stack, so this records at the
        // root; its count equals ks × restarts at any thread count, but
        // the durations are per-worker wall clock.
        let _restart_span = mobilenet_obs::span("kshape_restart");
        let clustering = match algorithm {
            Algorithm::KShape => kshape(&z, k, restart),
            Algorithm::KMeans => kmeans(&z, k, restart),
        };
        let inertia = match algorithm {
            Algorithm::KShape => {
                // Within-cluster SBD inertia via the shared spectra: k
                // forward transforms for the centroids, then one inverse
                // per series.
                let mut scratch = SbdScratch::new();
                let cent_specs: Vec<Spectrum> =
                    clustering.centroids.iter().map(|c| engine.spectrum(c)).collect();
                let mut sum = 0.0;
                for (spec, &a) in z_specs.iter().zip(clustering.assignments.iter()) {
                    sum += engine.sbd(spec, &cent_specs[a], &mut scratch);
                }
                sum
            }
            Algorithm::KMeans => z
                .iter()
                .zip(clustering.assignments.iter())
                .map(|(s, &a)| euclid(s, &clustering.centroids[a]))
                .sum(),
        };
        (inertia, clustering)
    });

    // Series-series distances are clustering-independent: fill the ordered
    // table once and score every k from it.
    let mut scratch = SbdScratch::new();
    let mut pair_dist = vec![vec![0.0; n]; n];
    for (i, row) in pair_dist.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = match algorithm {
                    Algorithm::KShape => engine.sbd(&z_specs[i], &z_specs[j], &mut scratch),
                    Algorithm::KMeans => euclid(&z[i], &z[j]),
                };
            }
        }
    }

    // Deterministic ordered reduction: jobs (and thus `runs`) are in
    // (k, restart) order, so folding each k's slice in sequence replays
    // the old serial keep-unless-strictly-better rule bit for bit.
    let mut runs = runs.into_iter();
    let mut points = Vec::with_capacity(ks.len());
    for &k in &ks {
        let mut best = runs.next().expect("one run per (k, restart)");
        for _ in 1..r {
            let cand = runs.next().expect("one run per (k, restart)");
            // NOT equivalent to `best.0 > cand.0`: a NaN inertia in
            // `best` must be displaced by any candidate, exactly as the
            // historical serial fold behaved.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(best.0 <= cand.0) {
                best = cand;
            }
        }
        let clustering = best.1;

        let k_clusters = clustering.k();
        let mut own_dist = vec![0.0; n];
        let mut centroid_dist = vec![vec![0.0; k_clusters]; k_clusters];
        match algorithm {
            Algorithm::KShape => {
                let cent_specs: Vec<Spectrum> =
                    clustering.centroids.iter().map(|c| engine.spectrum(c)).collect();
                for (i, d) in own_dist.iter_mut().enumerate() {
                    *d = engine.sbd(
                        &z_specs[i],
                        &cent_specs[clustering.assignments[i]],
                        &mut scratch,
                    );
                }
                for (i, row) in centroid_dist.iter_mut().enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        if i != j {
                            *v = engine.sbd(&cent_specs[i], &cent_specs[j], &mut scratch);
                        }
                    }
                }
            }
            Algorithm::KMeans => {
                for (i, d) in own_dist.iter_mut().enumerate() {
                    *d = euclid(&z[i], &clustering.centroids[clustering.assignments[i]]);
                }
                for (i, row) in centroid_dist.iter_mut().enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        if i != j {
                            *v = euclid(&clustering.centroids[i], &clustering.centroids[j]);
                        }
                    }
                }
            }
        }
        let scores = IndexScores {
            davies_bouldin: davies_bouldin_from(&own_dist, &centroid_dist, &clustering),
            davies_bouldin_star: davies_bouldin_star_from(&own_dist, &centroid_dist, &clustering),
            dunn: dunn_from(&pair_dist, &clustering),
            silhouette: silhouette_from(&pair_dist, &clustering),
        };
        points.push(SweepPoint { k, scores, clustering });
    }
    ClusteringSweep { direction: dir, algorithm, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    #[test]
    fn sweep_covers_k_2_to_n_minus_1() {
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 2);
        let ks: Vec<usize> = sweep.points.iter().map(|p| p.k).collect();
        assert_eq!(ks, (2..20).collect::<Vec<_>>());
    }

    #[test]
    fn paper_finding_no_convincing_small_k() {
        // The study's service profiles are all distinct by construction;
        // the sweep should behave as in the paper: silhouette stays low
        // (weak structure) and mostly degrades with k.
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 3);
        let max_sil = sweep
            .points
            .iter()
            .map(|p| p.scores.silhouette)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_sil < 0.6,
            "silhouette {max_sil} suggests clean clusters — services should not group cleanly"
        );
    }

    #[test]
    fn synthetic_clusterable_data_is_recognized() {
        // Control: data that *does* cluster produces a clear silhouette
        // optimum at the true k, confirming the sweep can detect structure
        // when it exists.
        let mut series = Vec::new();
        for class in 0..3 {
            for i in 0..5 {
                let eps = i as f64 * 0.02;
                series.push(
                    (0..64)
                        .map(|t| {
                            let x = t as f64;
                            match class {
                                0 => (x * 0.2).sin() + eps,
                                1 => (x * 0.2).cos().powi(3) + eps,
                                _ => ((x - 30.0) / 8.0).tanh() + eps,
                            }
                        })
                        .collect::<Vec<f64>>(),
                );
            }
        }
        let sweep = sweep_series(&series, Direction::Down, Algorithm::KShape, 4);
        let best = sweep
            .points
            .iter()
            .max_by(|a, b| a.scores.silhouette.partial_cmp(&b.scores.silhouette).unwrap())
            .unwrap();
        assert_eq!(best.k, 3, "true k not found (silhouettes: {:?})",
            sweep.points.iter().map(|p| (p.k, p.scores.silhouette)).collect::<Vec<_>>());
        assert!(best.scores.silhouette > 0.6);
    }

    #[test]
    fn kmeans_sweep_also_runs() {
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Up, Algorithm::KMeans, 2);
        assert_eq!(sweep.algorithm, Algorithm::KMeans);
        assert_eq!(sweep.points.len(), 18);
        for p in &sweep.points {
            assert!(p.scores.davies_bouldin.is_finite() || p.k > 15);
        }
    }

    #[test]
    fn accessors_report_consistent_ks() {
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 2);
        let db_k = sweep.best_k_by_db();
        let sil_k = sweep.best_k_by_silhouette();
        assert!((2..20).contains(&db_k));
        assert!((2..20).contains(&sil_k));
        let frac = sweep.silhouette_decreasing_fraction();
        assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    #[should_panic(expected = "at least 3 series")]
    fn tiny_inputs_are_rejected() {
        sweep_series(&[vec![1.0, 2.0], vec![2.0, 1.0]], Direction::Down, Algorithm::KShape, 1);
    }
}
