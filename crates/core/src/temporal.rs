//! The k-shape clustering experiment (§4, Figure 5).
//!
//! The paper exhaustively clusters the 20 services' weekly series with
//! k-shape for every `k ∈ [2, 19]` and ranks the outcomes with four
//! quality indices. No `k` wins: all indices indicate steadily decreasing
//! quality as `k` grows, which the paper reads as each service having
//! unique temporal dynamics. This module reproduces the full sweep.

use mobilenet_cluster::{
    davies_bouldin, davies_bouldin_star, dunn, kmeans, kshape, silhouette, Clustering,
};
use mobilenet_timeseries::norm::z_normalize;
use mobilenet_timeseries::sbd::shape_based_distance;
use mobilenet_traffic::Direction;

use crate::study::Study;

/// Which clustering algorithm a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// k-Shape with shape-based distance (the paper's choice).
    KShape,
    /// Euclidean k-means on z-normalized series (ablation baseline).
    KMeans,
}

/// Quality indices of one clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexScores {
    /// Davies-Bouldin (minimum is best).
    pub davies_bouldin: f64,
    /// Modified Davies-Bouldin DB* (minimum is best).
    pub davies_bouldin_star: f64,
    /// Dunn (maximum is best).
    pub dunn: f64,
    /// Silhouette (maximum is best).
    pub silhouette: f64,
}

/// One row of Figure 5: the quality indices at a given `k`.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of clusters.
    pub k: usize,
    /// Index values.
    pub scores: IndexScores,
    /// The clustering itself (for inspection of the grouping).
    pub clustering: Clustering,
}

/// The full sweep for one direction.
#[derive(Debug, Clone)]
pub struct ClusteringSweep {
    /// Traffic direction clustered.
    pub direction: Direction,
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// One point per `k` in `2..=n-1`.
    pub points: Vec<SweepPoint>,
}

impl ClusteringSweep {
    /// `k` minimizing Davies-Bouldin.
    pub fn best_k_by_db(&self) -> usize {
        self.points
            .iter()
            .min_by(|a, b| {
                a.scores
                    .davies_bouldin
                    .partial_cmp(&b.scores.davies_bouldin)
                    .unwrap()
            })
            .map(|p| p.k)
            .unwrap_or(0)
    }

    /// `k` maximizing Silhouette.
    pub fn best_k_by_silhouette(&self) -> usize {
        self.points
            .iter()
            .max_by(|a, b| a.scores.silhouette.partial_cmp(&b.scores.silhouette).unwrap())
            .map(|p| p.k)
            .unwrap_or(0)
    }

    /// The paper's diagnosis: quality degrades as `k` grows — measured as
    /// the Spearman-like sign of the silhouette trend (fraction of
    /// adjacent `k` pairs where silhouette decreases).
    pub fn silhouette_decreasing_fraction(&self) -> f64 {
        let pairs = self.points.windows(2).count();
        if pairs == 0 {
            return 0.0;
        }
        let dec = self
            .points
            .windows(2)
            .filter(|w| w[1].scores.silhouette <= w[0].scores.silhouette)
            .count();
        dec as f64 / pairs as f64
    }
}

/// Runs the Figure 5 sweep on the national weekly series of all head
/// services.
///
/// `restarts` k-shape initializations are tried per `k`, keeping the run
/// with the best (lowest) within-cluster SBD inertia — mirroring the
/// paper's exhaustive search.
pub fn clustering_sweep(
    study: &Study,
    dir: Direction,
    algorithm: Algorithm,
    restarts: u64,
) -> ClusteringSweep {
    let series: Vec<Vec<f64>> = (0..study.catalog().head().len())
        .map(|s| study.dataset().national_series(dir, s).to_vec())
        .collect();
    sweep_series(&series, dir, algorithm, restarts)
}

/// The sweep over explicit series (also used by ablations and tests).
pub fn sweep_series(
    series: &[Vec<f64>],
    dir: Direction,
    algorithm: Algorithm,
    restarts: u64,
) -> ClusteringSweep {
    assert!(series.len() >= 3, "need at least 3 series to sweep k in 2..n");
    let z: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s)).collect();
    let sbd = |a: &[f64], b: &[f64]| shape_based_distance(a, b);
    let euclid = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };

    // Every k of the sweep is independent (restarts are seeded by restart
    // index, not by a shared stream), so the k axis parallelizes with no
    // effect on the output.
    let _sweep_span = mobilenet_obs::span("kshape_sweep");
    let ks: Vec<usize> = (2..series.len()).collect();
    mobilenet_obs::add("core.kshape_ks", ks.len() as u64);
    let points = mobilenet_par::par_map(&ks, |&k| {
        // Worker threads have a fresh span stack, so this records at the
        // root; its count equals the number of swept ks at any thread
        // count, but the durations are per-worker wall clock.
        let _k_span = mobilenet_obs::span("kshape_k");
        let mut best: Option<(f64, Clustering)> = None;
        for restart in 0..restarts.max(1) {
            let clustering = match algorithm {
                Algorithm::KShape => kshape(&z, k, restart),
                Algorithm::KMeans => kmeans(&z, k, restart),
            };
            let inertia: f64 = z
                .iter()
                .zip(clustering.assignments.iter())
                .map(|(s, &a)| match algorithm {
                    Algorithm::KShape => sbd(s, &clustering.centroids[a]),
                    Algorithm::KMeans => euclid(s, &clustering.centroids[a]),
                })
                .sum();
            match &best {
                Some((b, _)) if *b <= inertia => {}
                _ => best = Some((inertia, clustering)),
            }
        }
        let clustering = best.expect("at least one restart ran").1;
        let scores = match algorithm {
            Algorithm::KShape => IndexScores {
                davies_bouldin: davies_bouldin(&z, &clustering, sbd),
                davies_bouldin_star: davies_bouldin_star(&z, &clustering, sbd),
                dunn: dunn(&z, &clustering, sbd),
                silhouette: silhouette(&z, &clustering, sbd),
            },
            Algorithm::KMeans => IndexScores {
                davies_bouldin: davies_bouldin(&z, &clustering, euclid),
                davies_bouldin_star: davies_bouldin_star(&z, &clustering, euclid),
                dunn: dunn(&z, &clustering, euclid),
                silhouette: silhouette(&z, &clustering, euclid),
            },
        };
        SweepPoint { k, scores, clustering }
    });
    ClusteringSweep { direction: dir, algorithm, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    #[test]
    fn sweep_covers_k_2_to_n_minus_1() {
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 2);
        let ks: Vec<usize> = sweep.points.iter().map(|p| p.k).collect();
        assert_eq!(ks, (2..20).collect::<Vec<_>>());
    }

    #[test]
    fn paper_finding_no_convincing_small_k() {
        // The study's service profiles are all distinct by construction;
        // the sweep should behave as in the paper: silhouette stays low
        // (weak structure) and mostly degrades with k.
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 3);
        let max_sil = sweep
            .points
            .iter()
            .map(|p| p.scores.silhouette)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_sil < 0.6,
            "silhouette {max_sil} suggests clean clusters — services should not group cleanly"
        );
    }

    #[test]
    fn synthetic_clusterable_data_is_recognized() {
        // Control: data that *does* cluster produces a clear silhouette
        // optimum at the true k, confirming the sweep can detect structure
        // when it exists.
        let mut series = Vec::new();
        for class in 0..3 {
            for i in 0..5 {
                let eps = i as f64 * 0.02;
                series.push(
                    (0..64)
                        .map(|t| {
                            let x = t as f64;
                            match class {
                                0 => (x * 0.2).sin() + eps,
                                1 => (x * 0.2).cos().powi(3) + eps,
                                _ => ((x - 30.0) / 8.0).tanh() + eps,
                            }
                        })
                        .collect::<Vec<f64>>(),
                );
            }
        }
        let sweep = sweep_series(&series, Direction::Down, Algorithm::KShape, 4);
        let best = sweep
            .points
            .iter()
            .max_by(|a, b| a.scores.silhouette.partial_cmp(&b.scores.silhouette).unwrap())
            .unwrap();
        assert_eq!(best.k, 3, "true k not found (silhouettes: {:?})",
            sweep.points.iter().map(|p| (p.k, p.scores.silhouette)).collect::<Vec<_>>());
        assert!(best.scores.silhouette > 0.6);
    }

    #[test]
    fn kmeans_sweep_also_runs() {
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Up, Algorithm::KMeans, 2);
        assert_eq!(sweep.algorithm, Algorithm::KMeans);
        assert_eq!(sweep.points.len(), 18);
        for p in &sweep.points {
            assert!(p.scores.davies_bouldin.is_finite() || p.k > 15);
        }
    }

    #[test]
    fn accessors_report_consistent_ks() {
        let study = crate::testutil::measured_study();
        let sweep = clustering_sweep(study, Direction::Down, Algorithm::KShape, 2);
        let db_k = sweep.best_k_by_db();
        let sil_k = sweep.best_k_by_silhouette();
        assert!((2..20).contains(&db_k));
        assert!((2..20).contains(&sil_k));
        let frac = sweep.silhouette_decreasing_fraction();
        assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    #[should_panic(expected = "at least 3 series")]
    fn tiny_inputs_are_rejected() {
        sweep_series(&[vec![1.0, 2.0], vec![2.0, 1.0]], Direction::Down, Algorithm::KShape, 1);
    }
}
