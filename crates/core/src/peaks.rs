//! The smoothed z-score activity-peak detector (§4, Figure 4).
//!
//! The paper detects activity peaks by comparing each sample of the
//! original signal against a *smoothed* trailing window: a sample more
//! than `threshold` standard deviations above the trailing mean starts a
//! peak, and flagged samples enter the trailing window with reduced
//! `influence` so a peak does not inflate its own baseline. Parameters are
//! the paper's: **threshold = 3 z-scores, lag = 2 hours,
//! influence = 0.4** — "upon an extensive tuning process".

/// Parameters of the smoothed z-score algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakConfig {
    /// Trailing-window length, in samples (hours). The paper uses 2.
    pub lag: usize,
    /// Signal threshold in trailing-window standard deviations.
    pub threshold: f64,
    /// Weight of a flagged sample when it enters the trailing window.
    pub influence: f64,
}

impl PeakConfig {
    /// The paper's tuned parameters.
    pub fn paper() -> Self {
        PeakConfig { lag: 2, threshold: 3.0, influence: 0.4 }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.lag == 0 {
            return Err("lag must be at least 1".into());
        }
        if self.threshold <= 0.0 || !self.threshold.is_finite() {
            return Err("threshold must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.influence) {
            return Err("influence must be in [0,1]".into());
        }
        Ok(())
    }
}

impl Default for PeakConfig {
    fn default() -> Self {
        PeakConfig::paper()
    }
}

/// A contiguous run of flagged samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeakInterval {
    /// First flagged sample — the paper's "rising front" of the peak.
    pub start: usize,
    /// One past the last flagged sample.
    pub end: usize,
}

impl PeakInterval {
    /// Number of samples in the peak.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval is degenerate (never produced by detection).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Full detector output, including the intermediate series Figure 4
/// plots.
#[derive(Debug, Clone)]
pub struct PeakDetection {
    /// Per-sample signal: `+1` above threshold, `-1` below, `0` inside.
    pub signals: Vec<i8>,
    /// The trailing (smoothed) mean at each sample.
    pub smoothed_mean: Vec<f64>,
    /// The trailing standard deviation at each sample.
    pub smoothed_std: Vec<f64>,
    /// Positive peaks as contiguous intervals.
    pub peaks: Vec<PeakInterval>,
}

impl PeakDetection {
    /// Rising-front sample indices of all positive peaks.
    pub fn rising_fronts(&self) -> Vec<usize> {
        self.peaks.iter().map(|p| p.start).collect()
    }
}

/// Runs the smoothed z-score detector over `series`.
///
/// # Panics
///
/// Panics if the configuration is invalid or the series is shorter than
/// `lag + 1`.
pub fn detect_peaks(series: &[f64], config: &PeakConfig) -> PeakDetection {
    config.validate().expect("invalid PeakConfig");
    let n = series.len();
    assert!(n > config.lag, "series must be longer than the lag");

    let mut filtered = series[..config.lag].to_vec();
    let mut signals = vec![0i8; n];
    let mut smoothed_mean = vec![0.0; n];
    let mut smoothed_std = vec![0.0; n];

    // Seed the diagnostics for the warm-up samples.
    let (m0, s0) = mean_std(&filtered);
    for i in 0..config.lag {
        smoothed_mean[i] = m0;
        smoothed_std[i] = s0;
    }

    for i in config.lag..n {
        let window = &filtered[i - config.lag..i];
        let (mean, std) = mean_std(window);
        smoothed_mean[i] = mean;
        smoothed_std[i] = std;
        let deviation = series[i] - mean;
        if deviation.abs() > config.threshold * std && std > 0.0 {
            signals[i] = if deviation > 0.0 { 1 } else { -1 };
            let prev = filtered[i - 1];
            filtered.push(config.influence * series[i] + (1.0 - config.influence) * prev);
        } else {
            signals[i] = 0;
            filtered.push(series[i]);
        }
    }

    let peaks = intervals_of(&signals);
    PeakDetection { signals, smoothed_mean, smoothed_std, peaks }
}

/// Contiguous `+1` runs.
fn intervals_of(signals: &[i8]) -> Vec<PeakInterval> {
    let mut peaks = Vec::new();
    let mut start = None;
    for (i, &s) in signals.iter().enumerate() {
        match (s, start) {
            (1, None) => start = Some(i),
            (1, Some(_)) => {}
            (_, Some(st)) => {
                peaks.push(PeakInterval { start: st, end: i });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(st) = start {
        peaks.push(PeakInterval { start: st, end: signals.len() });
    }
    peaks
}

fn mean_std(window: &[f64]) -> (f64, f64) {
    let n = window.len() as f64;
    let mean = window.iter().sum::<f64>() / n;
    let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat baseline with alternating texture and one sharp bump. The
    /// alternating texture keeps the trailing window's std positive while
    /// never itself exceeding the threshold: each new sample deviates from
    /// the 2-sample window mean by exactly one window-std (ratio 1 < 3).
    fn bumpy(n: usize, bump_at: usize, bump: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let texture = if i % 2 == 0 { 0.025 } else { -0.025 };
                let b = if i >= bump_at && i < bump_at + 3 { bump } else { 0.0 };
                1.0 + texture + b
            })
            .collect()
    }

    #[test]
    fn detects_a_sharp_bump() {
        let series = bumpy(48, 24, 3.0);
        let det = detect_peaks(&series, &PeakConfig::paper());
        assert!(
            det.rising_fronts().contains(&24),
            "bump front not detected: {:?}",
            det.rising_fronts()
        );
        let main = det.peaks.iter().find(|p| p.start == 24).unwrap();
        assert!(main.len() >= 2);
    }

    #[test]
    fn flat_series_has_no_peaks() {
        let series = bumpy(48, 100, 0.0); // bump outside range
        let det = detect_peaks(&series, &PeakConfig::paper());
        assert!(det.peaks.is_empty(), "{:?}", det.peaks);
    }

    #[test]
    fn negative_dips_signal_minus_one_but_are_not_peaks() {
        let mut series = bumpy(48, 100, 0.0);
        series[30] = -2.0;
        let det = detect_peaks(&series, &PeakConfig::paper());
        assert_eq!(det.signals[30], -1);
        assert!(det.peaks.is_empty());
    }

    #[test]
    fn influence_limits_peak_self_masking() {
        // Two bumps in quick succession: with influence < 1 the first bump
        // does not fully absorb into the baseline, so the second still
        // registers relative to a sane baseline.
        let mut series = bumpy(60, 20, 3.0);
        for v in &mut series[30..33] {
            *v += 3.0;
        }
        let det = detect_peaks(&series, &PeakConfig::paper());
        let fronts = det.rising_fronts();
        assert!(fronts.contains(&20), "fronts {fronts:?}");
        assert!(fronts.contains(&30), "fronts {fronts:?}");
    }

    #[test]
    fn trailing_peak_is_closed_at_series_end() {
        let mut series = bumpy(30, 100, 0.0);
        series[28] += 2.0;
        series[29] += 2.0;
        let det = detect_peaks(&series, &PeakConfig::paper());
        assert_eq!(det.peaks.last().unwrap().end, 30);
    }

    #[test]
    fn diagnostics_have_input_length() {
        let series = bumpy(40, 15, 0.8);
        let det = detect_peaks(&series, &PeakConfig::paper());
        assert_eq!(det.signals.len(), 40);
        assert_eq!(det.smoothed_mean.len(), 40);
        assert_eq!(det.smoothed_std.len(), 40);
    }

    #[test]
    fn higher_threshold_detects_fewer_peaks() {
        let mut series = bumpy(100, 20, 0.4);
        for v in &mut series[60..63] {
            *v += 2.0;
        }
        let lax = detect_peaks(&series, &PeakConfig { threshold: 2.0, ..PeakConfig::paper() });
        let strict =
            detect_peaks(&series, &PeakConfig { threshold: 1e9, ..PeakConfig::paper() });
        assert!(lax.peaks.len() > strict.peaks.len());
        assert!(strict.peaks.is_empty());
        assert!(lax.rising_fronts().contains(&60));
    }

    #[test]
    fn interval_len_and_empty() {
        let p = PeakInterval { start: 3, end: 7 };
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "longer than the lag")]
    fn short_series_is_rejected() {
        detect_peaks(&[1.0, 2.0], &PeakConfig::paper());
    }

    #[test]
    fn config_validation() {
        assert!(PeakConfig { lag: 0, ..PeakConfig::paper() }.validate().is_err());
        assert!(PeakConfig { threshold: -1.0, ..PeakConfig::paper() }.validate().is_err());
        assert!(PeakConfig { influence: 1.5, ..PeakConfig::paper() }.validate().is_err());
        assert!(PeakConfig::paper().validate().is_ok());
    }
}
