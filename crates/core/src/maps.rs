//! Rasterized country maps (§5, Figure 9).
//!
//! Figure 9 shows per-subscriber activity maps for Twitter and Netflix and
//! the 3G/4G coverage footprint. Without a GIS stack, the reproduction
//! rasterizes commune values onto a regular grid and renders them as ASCII
//! heat maps (for the terminal) and PGM images (for files) — enough to see
//! cities and TGV corridors light up.

use mobilenet_geo::{Country, Point};
use mobilenet_traffic::Direction;

use crate::study::Study;

/// A rasterized scalar field over the country.
#[derive(Debug, Clone)]
pub struct MapGrid {
    /// Grid width in cells.
    pub width: usize,
    /// Grid height in cells.
    pub height: usize,
    /// Row-major cell values (row 0 = north/top).
    pub cells: Vec<f64>,
}

impl MapGrid {
    /// Rasterizes per-commune `values` over the country: each cell takes
    /// the value of the commune nearest to its centre.
    pub fn rasterize(country: &Country, values: &[f64], width: usize) -> Self {
        assert_eq!(values.len(), country.communes().len(), "one value per commune");
        assert!(width >= 2, "width must be at least 2");
        let w_km = country.config().width_km;
        let h_km = country.config().height_km;
        let height = ((width as f64) * h_km / w_km).round().max(2.0) as usize;
        let mut cells = Vec::with_capacity(width * height);
        for row in 0..height {
            for col in 0..width {
                let x = (col as f64 + 0.5) / width as f64 * w_km;
                // Row 0 at the top (north).
                let y = (1.0 - (row as f64 + 0.5) / height as f64) * h_km;
                let commune = country.commune_at(&Point::new(x, y));
                cells.push(values[commune.index()]);
            }
        }
        MapGrid { width, height, cells }
    }

    /// Cell accessor.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.cells[row * self.width + col]
    }

    /// Renders an ASCII heat map using a log-ish intensity ramp.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.cells.iter().cloned().fold(0.0f64, f64::max);
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for row in 0..self.height {
            for col in 0..self.width {
                let v = self.get(row, col);
                let idx = if max <= 0.0 || v <= 0.0 {
                    0
                } else {
                    // Log scale over 4 decades.
                    let rel = (v / max).log10().max(-4.0) / 4.0 + 1.0;
                    ((rel * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                };
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Serializes as a plain-text PGM (P2) image, 8-bit, log-scaled.
    pub fn to_pgm(&self) -> String {
        let max = self.cells.iter().cloned().fold(0.0f64, f64::max);
        let mut out = format!("P2\n{} {}\n255\n", self.width, self.height);
        for row in 0..self.height {
            let line: Vec<String> = (0..self.width)
                .map(|col| {
                    let v = self.get(row, col);
                    let g = if max <= 0.0 || v <= 0.0 {
                        0.0
                    } else {
                        ((v / max).log10().max(-4.0) / 4.0 + 1.0) * 255.0
                    };
                    format!("{}", g.round() as u8)
                })
                .collect();
            out.push_str(&line.join(" "));
            out.push('\n');
        }
        out
    }
}

/// Figure 9 left/middle: the per-subscriber weekly volume map of a
/// service.
pub fn per_user_map(study: &Study, dir: Direction, service: usize, width: usize) -> MapGrid {
    let values = study.dataset().per_user_commune_vector(dir, service);
    MapGrid::rasterize(study.country(), &values, width)
}

/// Figure 9 right: the coverage footprint; cell values 0 (none), 1 (3G
/// only), 2 (3G+4G).
pub fn coverage_map(country: &Country, width: usize) -> MapGrid {
    let values: Vec<f64> = country
        .communes()
        .iter()
        .map(|c| match (c.coverage.has_3g, c.coverage.has_4g) {
            (_, true) => 2.0,
            (true, false) => 1.0,
            (false, false) => 0.0,
        })
        .collect();
    MapGrid::rasterize(country, &values, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::UsageClass;

    fn study() -> &'static Study {
        crate::testutil::measured_study()
    }

    #[test]
    fn rasterization_has_expected_shape() {
        let s = study();
        let grid = per_user_map(s, Direction::Down, 0, 40);
        assert_eq!(grid.width, 40);
        assert!(grid.height >= 2);
        assert_eq!(grid.cells.len(), grid.width * grid.height);
    }

    #[test]
    fn cities_are_brighter_than_countryside() {
        // Localization error smooths the per-user field, so compare the
        // capital's *neighbourhood* (not its single cell) to the country.
        let s = study();
        let values = s.dataset().per_user_commune_vector(Direction::Down, 0);
        let capital = &s.country().cities()[0];
        let near = s.country().communes_within(&capital.center, 12.0);
        let near_mean: f64 =
            near.iter().map(|id| values[id.index()]).sum::<f64>() / near.len() as f64;
        let all_mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!(
            near_mean > all_mean,
            "capital neighbourhood {near_mean} vs country mean {all_mean}"
        );
    }

    #[test]
    fn ascii_rendering_is_rectangular() {
        let s = study();
        let grid = per_user_map(s, Direction::Down, 3, 30);
        let text = grid.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), grid.height);
        assert!(lines.iter().all(|l| l.len() == grid.width));
        // Some structure: not all characters identical.
        let first = lines[0].chars().next().unwrap();
        assert!(text.chars().any(|c| c != first && c != '\n'));
    }

    #[test]
    fn pgm_has_valid_header_and_size() {
        let s = study();
        let grid = per_user_map(s, Direction::Up, 1, 24);
        let pgm = grid.to_pgm();
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some(format!("{} {}", grid.width, grid.height).as_str()));
        assert_eq!(lines.next(), Some("255"));
        let pixels: usize = lines.map(|l| l.split_whitespace().count()).sum();
        assert_eq!(pixels, grid.width * grid.height);
    }

    #[test]
    fn coverage_map_shows_4g_in_cities() {
        let s = study();
        let grid = coverage_map(s.country(), 50);
        // All values in {0, 1, 2}.
        assert!(grid.cells.iter().all(|v| *v == 0.0 || *v == 1.0 || *v == 2.0));
        // 4G present somewhere, and 3G-only areas exist too.
        assert!(grid.cells.contains(&2.0));
        assert!(grid.cells.contains(&1.0));
    }

    #[test]
    fn netflix_map_is_darker_in_rural_cells_than_twitter() {
        let s = study();
        let netflix = s.catalog().head().iter().position(|x| x.name == "Netflix").unwrap();
        let twitter = s.catalog().head().iter().position(|x| x.name == "Twitter").unwrap();
        let nf = s.dataset().per_user_commune_vector(Direction::Down, netflix);
        let tw = s.dataset().per_user_commune_vector(Direction::Down, twitter);
        // Fraction of rural communes with near-zero demand.
        let rural = s.country().communes_in_class(UsageClass::Rural);
        let dark = |v: &[f64]| {
            rural
                .iter()
                .filter(|id| v[id.index()] < 1e-6)
                .count() as f64
                / rural.len() as f64
        };
        assert!(
            dark(&nf) > dark(&tw),
            "Netflix dark fraction {} should exceed Twitter {}",
            dark(&nf),
            dark(&tw)
        );
    }

    #[test]
    #[should_panic(expected = "one value per commune")]
    fn wrong_value_count_is_rejected() {
        let s = study();
        MapGrid::rasterize(s.country(), &[1.0, 2.0], 10);
    }
}
