//! Urbanization-level analysis (§5, Figure 11).
//!
//! Two questions: does the urbanization level change **how much** the
//! average subscriber consumes, and **when**?
//!
//! * Figure 11 top: for each service, the least-squares slope of the
//!   semi-urban / rural / TGV per-subscriber hourly series regressed on
//!   the urban one — semi-urban ≈ 1, rural ≈ 0.5, TGV ≥ 2.
//! * Figure 11 bottom: the mean r² between a service's per-subscriber
//!   series in one class and the other classes — high everywhere except
//!   TGV, whose train-schedule dynamics stand apart.

use mobilenet_geo::UsageClass;
use mobilenet_timeseries::stats::{r_squared, slope_through_origin};
use mobilenet_traffic::Direction;

use crate::study::Study;

/// Figure 11 rows for one service.
#[derive(Debug, Clone)]
pub struct UrbanizationProfile {
    /// Catalog index.
    pub service: usize,
    /// Display name.
    pub name: &'static str,
    /// Per-subscriber volume ratio vs urban, indexed by
    /// [`UsageClass::index`] (the urban slot is 1.0 by definition).
    pub volume_ratio: [f64; 4],
    /// Mean r² of this service's per-subscriber series in each class
    /// against the other classes.
    pub temporal_r2: [f64; 4],
}

/// Computes Figure 11 for every head service.
pub fn urbanization_profiles(study: &Study, dir: Direction) -> Vec<UrbanizationProfile> {
    let ds = study.dataset();
    study
        .catalog()
        .head()
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let series: Vec<Vec<f64>> = UsageClass::ALL
                .iter()
                .map(|&class| ds.per_user_class_series(dir, s, class))
                .collect();
            let urban = &series[UsageClass::Urban.index()];

            let mut volume_ratio = [0.0; 4];
            for class in UsageClass::ALL {
                let i = class.index();
                volume_ratio[i] = if class == UsageClass::Urban {
                    1.0
                } else {
                    slope_through_origin(urban, &series[i])
                };
            }

            let mut temporal_r2 = [0.0; 4];
            for class in UsageClass::ALL {
                let i = class.index();
                let others: Vec<f64> = UsageClass::ALL
                    .iter()
                    .filter(|&&other| other != class)
                    .map(|&other| r_squared(&series[i], &series[other.index()]))
                    .collect();
                temporal_r2[i] = others.iter().sum::<f64>() / others.len() as f64;
            }

            UrbanizationProfile { service: s, name: spec.name, volume_ratio, temporal_r2 }
        })
        .collect()
}

/// Mean volume ratios over services (the headline numbers of §5).
pub fn mean_volume_ratios(profiles: &[UrbanizationProfile]) -> [f64; 4] {
    let mut sums = [0.0; 4];
    for p in profiles {
        for (s, v) in sums.iter_mut().zip(p.volume_ratio.iter()) {
            *s += v;
        }
    }
    for s in sums.iter_mut() {
        *s /= profiles.len().max(1) as f64;
    }
    sums
}

/// Mean temporal r² per class over services.
pub fn mean_temporal_r2(profiles: &[UrbanizationProfile]) -> [f64; 4] {
    let mut sums = [0.0; 4];
    for p in profiles {
        for (s, v) in sums.iter_mut().zip(p.temporal_r2.iter()) {
            *s += v;
        }
    }
    for s in sums.iter_mut() {
        *s /= profiles.len().max(1) as f64;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiles on the noise-free expected dataset: these tests validate
    /// that the analysis recovers the designed urbanization structure.
    fn profiles() -> Vec<UrbanizationProfile> {
        urbanization_profiles(crate::testutil::expected_study(), Direction::Down)
    }

    #[test]
    fn semi_urban_matches_urban_consumption() {
        let means = mean_volume_ratios(&profiles());
        let semi = means[UsageClass::SemiUrban.index()];
        // Paper: "semi-urban and urban areas present similar levels".
        assert!((semi - 1.0).abs() < 0.25, "semi-urban ratio {semi}");
    }

    #[test]
    fn rural_consumes_about_half() {
        let means = mean_volume_ratios(&profiles());
        let rural = means[UsageClass::Rural.index()];
        // Paper: "around a half".
        assert!(rural > 0.25 && rural < 0.75, "rural ratio {rural}");
    }

    #[test]
    fn tgv_consumes_twice_or_more() {
        let means = mean_volume_ratios(&profiles());
        let tgv = means[UsageClass::Tgv.index()];
        // Paper: "twice or more the volume of urban users".
        assert!(tgv > 1.5, "tgv ratio {tgv}");
    }

    #[test]
    fn netflix_rural_ratio_collapses() {
        let ps = profiles();
        let netflix = ps.iter().find(|p| p.name == "Netflix").unwrap();
        assert!(
            netflix.volume_ratio[UsageClass::Rural.index()] < 0.2,
            "Netflix rural ratio {}",
            netflix.volume_ratio[UsageClass::Rural.index()]
        );
        // iCloud is the uniform outlier.
        let icloud = ps.iter().find(|p| p.name == "iCloud").unwrap();
        assert!(
            icloud.volume_ratio[UsageClass::Rural.index()] > 0.6,
            "iCloud rural ratio {}",
            icloud.volume_ratio[UsageClass::Rural.index()]
        );
    }

    #[test]
    fn urbanization_does_not_change_timing_except_tgv() {
        let means = mean_temporal_r2(&profiles());
        let urban = means[UsageClass::Urban.index()];
        let semi = means[UsageClass::SemiUrban.index()];
        let rural = means[UsageClass::Rural.index()];
        let tgv = means[UsageClass::Tgv.index()];
        // Paper: high correlations among urban/semi-urban/rural…
        assert!(semi > 0.5, "semi-urban temporal r² {semi}");
        assert!(urban > 0.5, "urban temporal r² {urban}");
        assert!(rural > 0.45, "rural temporal r² {rural}");
        // …while TGV stands clearly apart.
        assert!(tgv < rural - 0.1, "tgv {tgv} vs rural {rural}");
    }

    #[test]
    fn urban_slot_is_identity() {
        for p in profiles() {
            assert_eq!(p.volume_ratio[UsageClass::Urban.index()], 1.0);
        }
    }

    #[test]
    fn ratios_are_consistent_across_most_services() {
        // Paper: "all these results are fairly consistent across services".
        let ps = profiles();
        let rural_ratios: Vec<f64> = ps
            .iter()
            .filter(|p| p.name != "Netflix" && p.name != "iCloud")
            .map(|p| p.volume_ratio[UsageClass::Rural.index()])
            .collect();
        let mean: f64 = rural_ratios.iter().sum::<f64>() / rural_ratios.len() as f64;
        for (p, r) in ps
            .iter()
            .filter(|p| p.name != "Netflix" && p.name != "iCloud")
            .zip(rural_ratios.iter())
        {
            assert!(
                (r - mean).abs() < 0.35,
                "{}: rural ratio {r} far from mean {mean}",
                p.name
            );
        }
    }
}
