//! Topical-time profiling of services (§4, Figures 6–7).
//!
//! Applying the smoothed z-score detector to every service, the paper
//! finds that peaks only occur at **seven specific moments** of the week.
//! This module maps each detected peak's rising front to its topical time
//! (Figure 6's rings) and measures, per topical time, the peak intensity —
//! "the ratio between the maximum and minimum traffic volumes recorded
//! during the peak intervals" (Figure 7).

use mobilenet_traffic::{Direction, TopicalTime, HOURS_PER_WEEK};

use crate::peaks::{detect_peaks, PeakConfig, PeakInterval};
use crate::study::Study;

/// Serial-fallback threshold for the peaks stage: spawn a worker only for
/// every 32 services, so catalog-sized inputs (≈20) run inline instead of
/// paying thread spawn cost that dwarfs the per-service work.
const PEAKS_MIN_ITEMS_PER_WORKER: usize = 32;

/// Tolerance (hours) when snapping a rising front to a topical hour.
/// Peaks ramp up over adjacent hours, so a front can lead the topical
/// moment slightly.
const SNAP_SLACK: usize = 2;

/// Snap tolerance per topical time. The morning commute gets a tighter
/// window: every service's series leaves the night trough around 6 am, so
/// only fronts truly at 7–9 am qualify as commute peaks (calibrated on the
/// generator's ground truth).
fn slack_for(t: TopicalTime) -> usize {
    match t {
        TopicalTime::MorningCommute => 1,
        _ => SNAP_SLACK,
    }
}

/// Minimum number of distinct peak fronts a topical time must collect in
/// the week before it counts as one of the service's peak times. Topical
/// times recur (five weekdays, two weekend days), so a genuine peak leaves
/// multiple fronts; a single front is indistinguishable from sampling
/// noise.
const MIN_RECURRENCE: usize = 2;

/// One service's topical profile.
#[derive(Debug, Clone)]
pub struct ServiceTopicalProfile {
    /// Catalog index of the service.
    pub service: usize,
    /// Service display name.
    pub name: &'static str,
    /// Whether a *recurrent* peak (≥ 2 fronts in the week) was detected at
    /// each topical time, by [`TopicalTime::index`].
    pub has_peak: [bool; 7],
    /// Number of peak fronts snapped to each topical time.
    pub front_counts: [usize; 7],
    /// Peak intensity at each topical time (`max/min − 1` over the
    /// associated peak intervals), `None` where no peak was detected.
    pub intensity: [Option<f64>; 7],
    /// Rising fronts that did not snap to any topical time (the paper
    /// finds none; we count them as a fidelity check).
    pub off_topical_fronts: usize,
}

impl ServiceTopicalProfile {
    /// Topical times at which this service peaks, in ring order.
    pub fn peak_times(&self) -> Vec<TopicalTime> {
        TopicalTime::ALL
            .into_iter()
            .filter(|t| self.has_peak[t.index()])
            .collect()
    }
}

/// Computes the topical profile of one service's national series.
pub fn profile_service(
    series: &[f64],
    service: usize,
    name: &'static str,
    config: &PeakConfig,
) -> ServiceTopicalProfile {
    assert_eq!(series.len(), HOURS_PER_WEEK, "need one week of hourly samples");
    let detection = detect_peaks(series, config);

    let mut front_counts = [0usize; 7];
    let mut best: [Option<f64>; 7] = [None; 7];
    let mut off_topical = 0usize;

    for peak in &detection.peaks {
        let t = classify_front(series, peak);
        match t {
            None => off_topical += 1,
            Some(t) => {
                let idx = t.index();
                front_counts[idx] += 1;
                let intensity = interval_intensity(series, peak);
                best[idx] = Some(match best[idx] {
                    None => intensity,
                    Some(prev) => prev.max(intensity),
                });
            }
        }
    }

    let mut has_peak = [false; 7];
    let mut intensity: [Option<f64>; 7] = [None; 7];
    for i in 0..7 {
        if front_counts[i] >= MIN_RECURRENCE {
            has_peak[i] = true;
            intensity[i] = best[i];
        }
    }

    ServiceTopicalProfile { service, name, has_peak, front_counts, intensity, off_topical_fronts: off_topical }
}

/// Snaps a peak's **rising front** to a topical time — the paper's
/// semantics (the red vertical lines of Figure 4 mark fronts).
///
/// The front hour is taken as the *steepest rise* inside the flagged
/// interval (the detector can pre-trigger an hour early when the trailing
/// window is still distorted by the preceding night; the steepest rise is
/// where the surge actually is). When two topical times are equidistant
/// the one ahead wins: fronts precede apexes, so a front at 9 am belongs
/// to the 10 am morning break, not to the 8 am commute already past.
fn classify_front(series: &[f64], peak: &PeakInterval) -> Option<TopicalTime> {
    let lo = peak.start.max(1);
    let hi = peak.end.min(HOURS_PER_WEEK);
    let front = (lo..hi)
        .max_by(|&a, &b| {
            let da = series[a] - series[a - 1];
            let db = series[b] - series[b - 1];
            da.partial_cmp(&db).unwrap()
        })
        .unwrap_or(peak.start)
        .min(HOURS_PER_WEEK - 1);
    let (day, hod) = mobilenet_traffic::week::split_hour(front);
    let mut ahead: Option<(usize, TopicalTime)> = None;
    let mut behind: Option<(usize, TopicalTime)> = None;
    for t in TopicalTime::ALL {
        if t.is_weekend() != day.is_weekend() {
            continue;
        }
        let topical = t.hour_of_day();
        if topical >= hod {
            let d = topical - hod;
            if d <= slack_for(t) && ahead.is_none_or(|(bd, _)| d < bd) {
                ahead = Some((d, t));
            }
        } else {
            let d = hod - topical;
            if d <= slack_for(t) && behind.is_none_or(|(bd, _)| d < bd) {
                behind = Some((d, t));
            }
        }
    }
    ahead.or(behind).map(|(_, t)| t)
}

/// `max/min − 1` over a peak interval, padded by one hour on each side so
/// the pre-peak baseline participates (the paper's peak-to-minimum ratio
/// during the peak window).
fn interval_intensity(series: &[f64], peak: &PeakInterval) -> f64 {
    let lo = peak.start.saturating_sub(1);
    let hi = (peak.end + 1).min(series.len());
    let window = &series[lo..hi];
    let max = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = window.iter().cloned().fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        return 0.0;
    }
    max / min - 1.0
}

/// Figure 6 + 7 for a whole study: one topical profile per head service,
/// for the given direction.
pub fn topical_profiles(
    study: &Study,
    dir: Direction,
    config: &PeakConfig,
) -> Vec<ServiceTopicalProfile> {
    topical_profiles_of(study.dataset(), study.service_names(), dir, config)
}

/// [`topical_profiles`] over a bare dataset — for consumers holding a
/// [`TrafficDataset`](mobilenet_traffic::TrafficDataset) without a
/// [`Study`] (live snapshots, replayed traces). `names` are the
/// head-service names in dataset order; answers are bit-identical to the
/// study-based path on the same dataset.
pub fn topical_profiles_of(
    ds: &mobilenet_traffic::TrafficDataset,
    names: Vec<&'static str>,
    dir: Direction,
    config: &PeakConfig,
) -> Vec<ServiceTopicalProfile> {
    // Profiling is a pure function of each service's own series, so the
    // ~catalog-sized loop parallelizes service-by-service — but each item
    // is only a few window scans over one week of hours, so a worker must
    // have a meaningful batch to be worth spawning (the catalog's ~20
    // services were measured running 4× *slower* split across threads
    // than inline; `BENCH_baseline.json` peaks speedup 0.24×).
    let _span = mobilenet_obs::span("topical_peaks");
    mobilenet_obs::add("core.topical_services", names.len() as u64);
    mobilenet_par::par_map_collect_min(names.len(), PEAKS_MIN_ITEMS_PER_WORKER, |s| {
        let series = ds.national_series(dir, s);
        profile_service(series, s, names[s], config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_traffic::HOURS_PER_DAY;

    /// A week-long series with bumps at chosen hour-of-week slots. The
    /// alternating texture dominates the diurnal slope so the lag-2
    /// detector stays quiet away from the bumps (see `peaks::tests`).
    fn week_with_bumps(bumps: &[(usize, f64)]) -> Vec<f64> {
        let mut series: Vec<f64> = (0..HOURS_PER_WEEK)
            .map(|h| {
                let hod = h % HOURS_PER_DAY;
                let texture = if h % 2 == 0 { 0.1 } else { -0.1 };
                1.0 + 0.2 * ((hod as f64 - 4.0) / 24.0 * std::f64::consts::TAU).sin()
                    + texture
            })
            .collect();
        for &(at, amp) in bumps {
            for (d, w) in [(0usize, 1.0), (1, 0.55)] {
                if at + d < HOURS_PER_WEEK {
                    series[at + d] += amp * w;
                }
            }
        }
        series
    }

    #[test]
    fn bumps_at_topical_hours_are_recovered() {
        // Midday and evening on Monday and Tuesday (recurrence filter
        // requires two fronts per topical time).
        let series = week_with_bumps(&[(61, 2.0), (85, 2.0), (69, 1.5), (93, 1.5)]);
        let p = profile_service(&series, 0, "test", &PeakConfig::paper());
        assert!(p.has_peak[TopicalTime::Midday.index()], "{:?}", p.has_peak);
        assert!(p.has_peak[TopicalTime::Evening.index()], "{:?}", p.has_peak);
        assert!(!p.has_peak[TopicalTime::WeekendMidday.index()]);
    }

    #[test]
    fn weekend_bumps_map_to_weekend_slots() {
        // Midday on both weekend days, evening on both weekend days.
        let series = week_with_bumps(&[(13, 2.0), (37, 2.0), (21, 2.0), (45, 2.0)]);
        let p = profile_service(&series, 0, "test", &PeakConfig::paper());
        assert!(p.has_peak[TopicalTime::WeekendMidday.index()]);
        assert!(p.has_peak[TopicalTime::WeekendEvening.index()]);
        // Note: no assertion on weekday slots — the influence-damped
        // baseline after a peak can flag the next morning's ramp (a known
        // smoothed z-score artefact), which is fine for this test's scope.
    }

    #[test]
    fn intensity_reflects_bump_height() {
        let small = week_with_bumps(&[(61, 1.0), (85, 1.0)]);
        let large = week_with_bumps(&[(61, 3.0), (85, 3.0)]);
        let ps = profile_service(&small, 0, "s", &PeakConfig::paper());
        let pl = profile_service(&large, 0, "l", &PeakConfig::paper());
        let idx = TopicalTime::Midday.index();
        let is = ps.intensity[idx].expect("small bump detected");
        let il = pl.intensity[idx].expect("large bump detected");
        assert!(il > is * 1.5, "intensities {is} vs {il}");
    }

    #[test]
    fn off_topical_bumps_are_counted() {
        // 3 am on Wednesday and Thursday is near no topical time.
        let series = week_with_bumps(&[(99, 3.0), (123, 3.0)]);
        let p = profile_service(&series, 0, "test", &PeakConfig::paper());
        assert!(p.off_topical_fronts > 0);
    }

    #[test]
    fn peak_times_lists_ring_order() {
        let series = week_with_bumps(&[(69, 2.0), (93, 2.0), (61, 2.0), (85, 2.0)]);
        let p = profile_service(&series, 0, "test", &PeakConfig::paper());
        let times = p.peak_times();
        assert!(times.contains(&TopicalTime::Midday), "{times:?}");
        assert!(times.contains(&TopicalTime::Evening), "{times:?}");
        // Ring order: midday before evening.
        let midday_pos = times.iter().position(|t| *t == TopicalTime::Midday).unwrap();
        let evening_pos = times.iter().position(|t| *t == TopicalTime::Evening).unwrap();
        assert!(midday_pos < evening_pos);
    }

    #[test]
    fn study_profiles_cover_all_services() {
        let study = crate::testutil::measured_study();
        let profiles = topical_profiles(study, Direction::Down, &PeakConfig::paper());
        assert_eq!(profiles.len(), 20);
        // The paper's headline: every service shows distinctive peaks;
        // nearly all peak at weekday midday.
        let with_midday = profiles
            .iter()
            .filter(|p| p.has_peak[TopicalTime::Midday.index()])
            .count();
        assert!(with_midday >= 14, "only {with_midday}/20 midday peaks detected");
        // Every service has at least one peak somewhere.
        for p in &profiles {
            assert!(
                p.has_peak.iter().any(|&b| b),
                "{} has no detected peaks at all",
                p.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "one week")]
    fn wrong_length_is_rejected() {
        profile_service(&[1.0; 100], 0, "x", &PeakConfig::paper());
    }
}
