//! Dataset assembly: from nothing to an analyzable study.
//!
//! A [`Study`] bundles everything the analyses need: the generated
//! country, the service catalog, and the commune-aggregated
//! [`TrafficDataset`] — either collected through the full measurement
//! pipeline (sessions → probes → DPI → aggregation, §2 of the paper) or
//! evaluated as noise-free expectations for calibration work.

use std::sync::Arc;

use mobilenet_geo::{Country, CountryConfig};
use mobilenet_netsim::{
    collect_with_options, CollectOptions, CollectionStats, FaultPlan, FoldStrategy, IngestStats,
    NetsimConfig, DEFAULT_CHUNK_SIZE,
};
use mobilenet_traffic::{DemandModel, ServiceCatalog, TrafficConfig, TrafficDataset};

/// Complete configuration of a study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Geography parameters.
    pub country: CountryConfig,
    /// Workload parameters.
    pub traffic: TrafficConfig,
    /// Measurement-pipeline parameters.
    pub netsim: NetsimConfig,
    /// Capture-path fault plan (default: [`FaultPlan::none`], the benign
    /// apparatus every scale historically assumed).
    pub faults: FaultPlan,
    /// Records-per-chunk budget of the streaming ingestion engine; peak
    /// resident records are bounded by `chunk_size × workers`.
    pub chunk_size: usize,
    /// How the streaming engine folds record batches (default
    /// [`FoldStrategy::Batched`]; [`FoldStrategy::RowAtATime`] is the
    /// bit-identical legacy reference path).
    pub fold: FoldStrategy,
    /// Use the full session-level measurement pipeline (`true`) or the
    /// noise-free expected-value path (`false`).
    pub measured: bool,
}

impl StudyConfig {
    /// A ~1,000-commune measured study — the unit-test scale.
    pub fn small() -> Self {
        StudyConfig {
            country: CountryConfig::small(),
            traffic: TrafficConfig::fast(),
            netsim: NetsimConfig::standard(),
            faults: FaultPlan::none(),
            chunk_size: DEFAULT_CHUNK_SIZE,
            fold: FoldStrategy::Batched,
            measured: true,
        }
    }

    /// A ~6,000-commune measured study — the figure-generation scale.
    pub fn medium() -> Self {
        StudyConfig {
            country: CountryConfig::medium(),
            traffic: TrafficConfig::standard(),
            netsim: NetsimConfig::standard(),
            faults: FaultPlan::none(),
            chunk_size: DEFAULT_CHUNK_SIZE,
            fold: FoldStrategy::Batched,
            measured: true,
        }
    }

    /// Full France scale (36,000 communes, 30 M subscribers).
    pub fn france_scale() -> Self {
        StudyConfig {
            country: CountryConfig::france_scale(),
            traffic: TrafficConfig::standard(),
            netsim: NetsimConfig::standard(),
            faults: FaultPlan::none(),
            chunk_size: DEFAULT_CHUNK_SIZE,
            fold: FoldStrategy::Batched,
            measured: true,
        }
    }

    /// The national measurement tier: France-scale geography with session
    /// thinning relaxed so the week carries ~10⁸ sessions — the paper's
    /// order of magnitude (30 M subscribers, >36,000 communes, Table 1).
    ///
    /// Designed to stream: peak resident records stay bounded by
    /// `chunk_size × workers` through the [`RecordSource`] engine, and the
    /// aggregation state is the same ~12 MB of marginal tables per shard
    /// partial as any other scale — only the record *stream* is two orders
    /// of magnitude longer.
    ///
    /// [`RecordSource`]: mobilenet_netsim::RecordSource
    pub fn national() -> Self {
        StudyConfig {
            country: CountryConfig::national(),
            traffic: TrafficConfig::national(),
            netsim: NetsimConfig::standard(),
            faults: FaultPlan::none(),
            chunk_size: DEFAULT_CHUNK_SIZE,
            fold: FoldStrategy::Batched,
            measured: true,
        }
    }

    /// The same scale without measurement noise (expectations only).
    pub fn expected(mut self) -> Self {
        self.measured = false;
        self
    }

    /// The same scale with a capture-path fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The same scale with a records-per-chunk budget for the streaming
    /// ingestion engine.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// The same scale with an explicit batch-fold strategy.
    pub fn with_fold(mut self, fold: FoldStrategy) -> Self {
        self.fold = fold;
        self
    }

    /// The collection options this configuration describes.
    pub fn collect_options(&self) -> CollectOptions {
        CollectOptions::with_faults(self.faults.clone())
            .chunk_size(self.chunk_size)
            .fold_strategy(self.fold)
    }

    /// Builds the demand model this configuration describes — country,
    /// catalog and workload — without collecting anything. Deterministic
    /// in `(config, seed)` and identical to the model a full
    /// [`Pipeline`](crate::Pipeline) run constructs, so records streamed
    /// from it (e.g. by the live aggregation service) are bit-identical
    /// to what batch collection aggregates.
    pub fn demand_model(&self, seed: u64) -> DemandModel {
        let country = Arc::new(Country::generate(&self.country, seed));
        let catalog = Arc::new(ServiceCatalog::standard(self.traffic.n_tail_services));
        DemandModel::new(country, catalog, self.traffic.clone(), seed)
    }
}

/// An assembled study: geography + catalog + one week of aggregated
/// traffic.
pub struct Study {
    country: Arc<Country>,
    catalog: Arc<ServiceCatalog>,
    model: DemandModel,
    dataset: TrafficDataset,
    collection_stats: Option<CollectionStats>,
    ingest: Option<IngestStats>,
}

impl Study {
    /// The generation body behind the [`Pipeline`](crate::Pipeline)
    /// builder. Deterministic in
    /// `(config, seed)`; records the `generate/{country,demand_model,…}`
    /// span tree when observability is enabled.
    pub(crate) fn generate_inner(config: &StudyConfig, seed: u64) -> Self {
        let _generate_span = mobilenet_obs::span("generate");
        let country_span = mobilenet_obs::span("country");
        let country = Arc::new(Country::generate(&config.country, seed));
        drop(country_span);
        let model_span = mobilenet_obs::span("demand_model");
        let catalog = Arc::new(ServiceCatalog::standard(config.traffic.n_tail_services));
        let model =
            DemandModel::new(country.clone(), catalog.clone(), config.traffic.clone(), seed);
        drop(model_span);
        let (dataset, collection_stats, ingest) = if config.measured {
            let out = collect_with_options(&model, &config.netsim, &config.collect_options(), seed)
                .expect("configuration validated by the pipeline builder");
            (out.dataset, Some(out.stats), Some(out.ingest))
        } else {
            let _expected_span = mobilenet_obs::span("expected_dataset");
            (model.expected_dataset(), None, None)
        };
        Study { country, catalog, model, dataset, collection_stats, ingest }
    }

    /// Assembles a study from an existing demand model and a collection
    /// run over it — the hook ablation harnesses use to re-collect the
    /// same demand under varying pipeline parameters.
    pub fn from_parts(model: DemandModel, output: mobilenet_netsim::CollectionOutput) -> Self {
        Study {
            country: model.country_arc(),
            catalog: model.catalog_arc(),
            dataset: output.dataset,
            collection_stats: Some(output.stats),
            ingest: Some(output.ingest),
            model,
        }
    }

    /// The generated country.
    pub fn country(&self) -> &Country {
        &self.country
    }

    /// The service catalog (the generator's ground truth).
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// The demand model the dataset was generated from.
    pub fn model(&self) -> &DemandModel {
        &self.model
    }

    /// The aggregated measurement tables.
    pub fn dataset(&self) -> &TrafficDataset {
        &self.dataset
    }

    /// Collection diagnostics (absent on the expected-value path).
    pub fn collection_stats(&self) -> Option<&CollectionStats> {
        self.collection_stats.as_ref()
    }

    /// Streaming-engine accounting of the collection (absent on the
    /// expected-value path).
    pub fn ingest_stats(&self) -> Option<&IngestStats> {
        self.ingest.as_ref()
    }

    /// Names of the head services, in catalog order.
    pub fn service_names(&self) -> Vec<&'static str> {
        self.catalog.head().iter().map(|s| s.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_traffic::Direction;

    #[test]
    fn measured_study_reports_collection_stats() {
        let study = Study::generate_inner(&StudyConfig::small(), 1);
        let stats = study.collection_stats().expect("measured study has stats");
        let ingest = study.ingest_stats().expect("measured study has ingest stats");
        assert_eq!(ingest.chunk_size, DEFAULT_CHUNK_SIZE);
        assert!(ingest.records > 0);
        assert!(ingest.peak_resident_records <= ingest.resident_budget());
        assert!(stats.sessions > 1_000);
        assert!((stats.classification_rate() - 0.88).abs() < 0.03);
        assert!(study.dataset().total(Direction::Down) > 0.0);
    }

    #[test]
    fn expected_study_has_no_stats() {
        let study = Study::generate_inner(&StudyConfig::small().expected(), 1);
        assert!(study.collection_stats().is_none());
        assert!(study.ingest_stats().is_none());
        assert!(study.dataset().total(Direction::Down) > 0.0);
        assert_eq!(study.dataset().unclassified(Direction::Down), 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Study::generate_inner(&StudyConfig::small(), 5);
        let b = Study::generate_inner(&StudyConfig::small(), 5);
        assert_eq!(
            a.dataset().national_weekly(Direction::Down, 0),
            b.dataset().national_weekly(Direction::Down, 0)
        );
        assert_eq!(a.service_names(), b.service_names());
        assert_eq!(a.service_names().len(), 20);
    }

    #[test]
    fn measured_and_expected_totals_agree_up_to_classification() {
        let measured = Study::generate_inner(&StudyConfig::small(), 9);
        let expected = Study::generate_inner(&StudyConfig::small().expected(), 9);
        let rate = 0.88;
        let m = measured.dataset().national_weekly(Direction::Down, 0);
        let e = expected.dataset().national_weekly(Direction::Down, 0) * rate;
        assert!((m - e).abs() / e < 0.12, "measured {m} vs expected {e}");
    }
}
