//! The unified error type of the assembly pipeline.
//!
//! Everything fallible on the way to a [`Study`](crate::Study) — reading
//! files, parsing persisted datasets and probe traces, validating
//! configuration, resolving user-facing names — funnels into one
//! [`Error`], so binaries report failures instead of unwinding.

use mobilenet_netsim::{IngestError, TraceError};
use mobilenet_traffic::DatasetError;

/// Everything that can go wrong assembling or loading a study.
#[derive(Debug)]
pub enum Error {
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// A persisted dataset CSV failed to parse.
    Dataset(DatasetError),
    /// A probe trace failed to parse.
    Trace(TraceError),
    /// A configuration failed validation.
    Config(String),
    /// A scale name that is not `small`, `medium` or `france`.
    UnknownScale(String),
    /// A service name missing from the catalog.
    UnknownService(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Dataset(e) => write!(f, "{e}"),
            Error::Trace(e) => write!(f, "{e}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::UnknownScale(s) => {
                write!(f, "unknown scale {s:?}; use small|medium|france")
            }
            Error::UnknownService(s) => write!(f, "unknown service {s:?}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Dataset(e) => Some(e),
            Error::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<DatasetError> for Error {
    fn from(e: DatasetError) -> Self {
        Error::Dataset(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Io(e) => Error::Io(e),
            IngestError::Trace(e) => Error::Trace(e),
            IngestError::Config(msg) => Error::Config(msg),
            IngestError::Shape(e) => Error::Dataset(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = Error::from(DatasetError { line: 7, message: "bad float".into() });
        assert_eq!(e.to_string(), "dataset line 7: bad float");
        let e = Error::from(TraceError { line: 2, message: "bad hour".into() });
        assert!(e.to_string().contains("trace line 2"));
        assert!(Error::UnknownScale("big".into()).to_string().contains("small|medium|france"));
        assert!(Error::Config("negative radius".into()).to_string().contains("negative radius"));
    }

    #[test]
    fn ingest_errors_map_onto_existing_variants() {
        let e = Error::from(IngestError::Trace(TraceError { line: 4, message: "x".into() }));
        assert!(matches!(e, Error::Trace(_)));
        let e = Error::from(IngestError::Config("chunk_size must be at least 1 record".into()));
        assert!(matches!(e, Error::Config(_)));
        let e = Error::from(IngestError::Shape(DatasetError { line: 0, message: "y".into() }));
        assert!(matches!(e, Error::Dataset(_)));
        let e = Error::from(IngestError::Io(std::io::Error::other("z")));
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(Error::Config("x".into()).source().is_none());
    }
}
