//! Network-slice dimensioning — the orchestration application the paper's
//! introduction motivates.
//!
//! "An effective orchestration of network slices builds on the spatial
//! [and temporal] complementarity of the demands for the different
//! services" (§1, citing the 5G-NORMA slicing architecture). This module
//! quantifies that complementarity: if every service (or category) were a
//! statically-dimensioned slice, total provisioned capacity would be the
//! *sum of per-slice peaks*; a shared pool only needs the *peak of the
//! sum*. The ratio between the two — the **pooling gain** — is a direct
//! consequence of the temporal heterogeneity established in §4: services
//! peaking at different topical times share capacity efficiently.

use std::collections::BTreeMap;

use mobilenet_traffic::{Direction, HOURS_PER_WEEK};

use crate::study::Study;

/// Dimensioning of one slice.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// Slice label (service or category name).
    pub name: String,
    /// Peak hourly demand over the week, MB/h.
    pub peak: f64,
    /// Mean hourly demand, MB/h.
    pub mean: f64,
    /// Hour-of-week of the peak.
    pub peak_hour: usize,
}

impl SliceReport {
    /// Peak-to-mean ratio — the over-provisioning a static slice needs.
    pub fn peak_to_mean(&self) -> f64 {
        if self.mean <= 0.0 {
            return 0.0;
        }
        self.peak / self.mean
    }
}

/// The full dimensioning analysis.
#[derive(Debug, Clone)]
pub struct SlicingReport {
    /// Per-slice dimensioning, sorted by decreasing peak.
    pub slices: Vec<SliceReport>,
    /// Σ of per-slice peaks: the static-slicing capacity requirement.
    pub sum_of_peaks: f64,
    /// Peak of the summed demand: the shared-pool requirement.
    pub shared_peak: f64,
}

impl SlicingReport {
    /// `sum_of_peaks / shared_peak − 1`: how much extra capacity static
    /// per-slice dimensioning needs over a shared pool. Zero means every
    /// slice peaks simultaneously; larger values mean more temporal
    /// complementarity to exploit.
    pub fn pooling_gain(&self) -> f64 {
        if self.shared_peak <= 0.0 {
            return 0.0;
        }
        self.sum_of_peaks / self.shared_peak - 1.0
    }

    /// Number of distinct peak hours among slices — another measure of
    /// temporal spread.
    pub fn distinct_peak_hours(&self) -> usize {
        let mut hours: Vec<usize> = self.slices.iter().map(|s| s.peak_hour).collect();
        hours.sort_unstable();
        hours.dedup();
        hours.len()
    }
}

fn analyze(groups: Vec<(String, Vec<f64>)>) -> SlicingReport {
    let mut total = vec![0.0; HOURS_PER_WEEK];
    let mut slices: Vec<SliceReport> = groups
        .into_iter()
        .map(|(name, series)| {
            assert_eq!(series.len(), HOURS_PER_WEEK, "{name}: need one week of hours");
            for (acc, v) in total.iter_mut().zip(series.iter()) {
                *acc += v;
            }
            let (peak_hour, peak) = series
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(h, &v)| (h, v))
                .unwrap_or((0, 0.0));
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            SliceReport { name, peak, mean, peak_hour }
        })
        .collect();
    slices.sort_by(|a, b| b.peak.partial_cmp(&a.peak).unwrap());
    let sum_of_peaks = slices.iter().map(|s| s.peak).sum();
    let shared_peak = total.iter().cloned().fold(0.0f64, f64::max);
    SlicingReport { slices, sum_of_peaks, shared_peak }
}

/// One slice per head **service**.
pub fn per_service_slicing(study: &Study, dir: Direction) -> SlicingReport {
    let groups = study
        .catalog()
        .head()
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            (spec.name.to_string(), study.dataset().national_series(dir, s).to_vec())
        })
        .collect();
    analyze(groups)
}

/// One slice per service **category** (the granularity 5G slicing
/// proposals typically assume).
pub fn per_category_slicing(study: &Study, dir: Direction) -> SlicingReport {
    let mut by_category: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for (s, spec) in study.catalog().head().iter().enumerate() {
        let entry = by_category
            .entry(spec.category.label())
            .or_insert_with(|| vec![0.0; HOURS_PER_WEEK]);
        for (acc, v) in entry
            .iter_mut()
            .zip(study.dataset().national_series(dir, s).iter())
        {
            *acc += v;
        }
    }
    analyze(
        by_category
            .into_iter()
            .map(|(name, series)| (name.to_string(), series))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::expected_study()
    }

    #[test]
    fn pooling_gain_is_positive() {
        // §4's heterogeneity must translate into capacity savings. The
        // gain is modest in absolute terms because one service (YouTube)
        // carries a third of the volume and so pins the shape of the
        // total.
        for dir in Direction::BOTH {
            let report = per_service_slicing(study(), dir);
            assert!(
                report.pooling_gain() > 0.003,
                "{}: pooling gain {}",
                dir.label(),
                report.pooling_gain()
            );
            assert!(report.sum_of_peaks >= report.shared_peak);
        }
    }

    #[test]
    fn finer_slices_waste_more_capacity() {
        // Per-service slicing cannot pool less than per-category slicing.
        let per_service = per_service_slicing(study(), Direction::Down);
        let per_category = per_category_slicing(study(), Direction::Down);
        assert!(
            per_service.pooling_gain() >= per_category.pooling_gain() - 1e-9,
            "service {} vs category {}",
            per_service.pooling_gain(),
            per_category.pooling_gain()
        );
        assert!(per_category.slices.len() < per_service.slices.len());
    }

    #[test]
    fn slices_are_sorted_and_consistent() {
        let report = per_service_slicing(study(), Direction::Down);
        assert_eq!(report.slices.len(), 20);
        for w in report.slices.windows(2) {
            assert!(w[0].peak >= w[1].peak);
        }
        for s in &report.slices {
            assert!(s.peak >= s.mean, "{}: peak below mean", s.name);
            assert!(s.peak_to_mean() >= 1.0);
            assert!(s.peak_hour < HOURS_PER_WEEK);
        }
    }

    #[test]
    fn peak_hours_are_spread_over_the_week() {
        // The paper's diverse peak palettes imply slices do not all peak at
        // the same hour.
        let report = per_service_slicing(study(), Direction::Down);
        assert!(
            report.distinct_peak_hours() >= 4,
            "only {} distinct peak hours",
            report.distinct_peak_hours()
        );
    }

    #[test]
    fn shared_peak_never_exceeds_sum_of_peaks() {
        for dir in Direction::BOTH {
            let r = per_category_slicing(study(), dir);
            assert!(r.shared_peak <= r.sum_of_peaks + 1e-9);
            assert!(r.pooling_gain() >= 0.0);
        }
    }
}
