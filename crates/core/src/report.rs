//! Figure serialization: CSV and plain-text renderings of every analysis.
//!
//! The benchmark harness (`mobilenet-bench`'s `figures` binary) calls
//! these builders and writes their output under `out/`, one file per
//! table/figure of the paper. Builders return `String`s so tests can
//! inspect them without touching the filesystem.

use std::fmt::Write as _;

use mobilenet_traffic::{Direction, TopicalTime};

use crate::ranking::{ServiceRanking, ZipfRanking};
use crate::spatial::{ConcentrationReport, SpatialCorrelation};
use crate::temporal::ClusteringSweep;
use crate::topical::ServiceTopicalProfile;
use crate::urbanization::UrbanizationProfile;

/// Escapes a CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Figure 2 CSV: `rank,dl_share,ul_share` plus a fit summary header.
pub fn zipf_csv(z: &ZipfRanking) -> String {
    let mut out = String::new();
    if let (Some(dl), Some(ul)) = (&z.dl_fit, &z.ul_fit) {
        let _ = writeln!(
            out,
            "# zipf_fit dl_exponent={:.4} dl_r2={:.4} ul_exponent={:.4} ul_r2={:.4} span_orders={:.2}",
            dl.exponent, dl.r2, ul.exponent, ul.r2, z.dl_span_orders
        );
    }
    let _ = writeln!(out, "rank,dl_share,ul_share");
    for (i, (dl, ul)) in z.dl_normalized.iter().zip(z.ul_normalized.iter()).enumerate() {
        let _ = writeln!(out, "{},{:.6e},{:.6e}", i + 1, dl, ul);
    }
    out
}

/// Figure 3 CSV: `rank,service,category,share_of_total`.
pub fn ranking_csv(r: &ServiceRanking) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# direction={} head_share={:.4} unclassified_share={:.4}",
        r.direction.label(),
        r.head_share,
        r.unclassified_share
    );
    for (label, share) in &r.category_shares {
        let _ = writeln!(out, "# category {} {:.4}", field(label), share);
    }
    let _ = writeln!(out, "rank,service,category,share_of_total");
    for (i, s) in r.services.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{:.6}",
            i + 1,
            field(s.name),
            field(s.category.label()),
            s.share_of_total
        );
    }
    out
}

/// Figure 4 CSV for one service: hourly series with detector diagnostics.
pub fn peaks_csv(
    name: &str,
    series: &[f64],
    detection: &crate::peaks::PeakDetection,
    threshold: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# service={}", field(name));
    let _ = writeln!(out, "hour,traffic,smoothed,upper_band,signal");
    for (h, &v) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6},{}",
            h,
            v,
            detection.smoothed_mean[h],
            detection.smoothed_mean[h] + threshold * detection.smoothed_std[h],
            detection.signals[h]
        );
    }
    out
}

/// Figure 5 CSV: `k,db,db_star,dunn,silhouette` per direction.
pub fn sweep_csv(sweep: &ClusteringSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# direction={} algorithm={:?}",
        sweep.direction.label(),
        sweep.algorithm
    );
    let _ = writeln!(out, "k,davies_bouldin,davies_bouldin_star,dunn,silhouette");
    for p in &sweep.points {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6},{:.6}",
            p.k,
            p.scores.davies_bouldin,
            p.scores.davies_bouldin_star,
            p.scores.dunn,
            p.scores.silhouette
        );
    }
    out
}

/// Figure 6 CSV: the peak matrix (service × topical time, 0/1).
pub fn topical_matrix_csv(profiles: &[ServiceTopicalProfile]) -> String {
    let mut out = String::from("service");
    for t in TopicalTime::ALL {
        let _ = write!(out, ",{}", field(t.label()));
    }
    out.push('\n');
    for p in profiles {
        let _ = write!(out, "{}", field(p.name));
        for t in TopicalTime::ALL {
            let _ = write!(out, ",{}", if p.has_peak[t.index()] { 1 } else { 0 });
        }
        out.push('\n');
    }
    out
}

/// Figure 7 CSV: peak intensities (%) per service per topical time
/// (empty when no peak was detected).
pub fn intensity_csv(profiles: &[ServiceTopicalProfile]) -> String {
    let mut out = String::from("service");
    for t in TopicalTime::ALL {
        let _ = write!(out, ",{}", field(t.label()));
    }
    out.push('\n');
    for p in profiles {
        let _ = write!(out, "{}", field(p.name));
        for t in TopicalTime::ALL {
            match p.intensity[t.index()] {
                Some(v) => {
                    let _ = write!(out, ",{:.1}", v * 100.0);
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Figure 8 CSV: concentration curve plus per-user CDF.
pub fn concentration_csv(report: &ConcentrationReport) -> String {
    concentration_csv_sampled(report, usize::MAX, 0)
}

/// [`concentration_csv`] with each scatter section deterministically
/// downsampled to at most `max_points` rows — the national-scale export
/// path, where the three commune-length sections would otherwise emit
/// >100,000 rows per figure.
///
/// Sampling is seeded reservoir selection (Algorithm R over a splitmix64
/// stream) that always retains each curve's first and last point, with
/// selected indices re-sorted into curve order. The sample depends only
/// on `(section length, max_points, seed)` — never on thread count or
/// chunk size — so a sampled export is bit-identical across any run of
/// the same study.
pub fn concentration_csv_sampled(
    report: &ConcentrationReport,
    max_points: usize,
    seed: u64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# service={} top1_share={:.4} top10_share={:.4}",
        field(report.name),
        report.top1_share,
        report.top10_share
    );
    let cdf = report.per_user_cdf.curve();
    let sampled = [&report.dl_curve[..], &report.ul_curve[..], &cdf[..]]
        .iter()
        .any(|s| s.len() > max_points);
    if sampled {
        let _ = writeln!(out, "# sampled max_points_per_section={max_points} seed={seed}");
    }
    let _ = writeln!(out, "section,x,y");
    let mut section = |name: &str, points: &[(f64, f64)], tag: u64, precision: usize| {
        for i in reservoir_indices(points.len(), max_points, seed ^ tag) {
            let (x, y) = points[i];
            let _ = writeln!(out, "{name},{x:.precision$},{y:.6}");
        }
    };
    section("dl_concentration", &report.dl_curve, 0x646c, 6);
    section("ul_concentration", &report.ul_curve, 0x756c, 6);
    section("per_user_cdf_mb", &cdf, 0x636466, 9);
    out
}

/// Deterministically selects at most `k` of `n` indices, sorted
/// ascending, always retaining 0 and `n - 1`. Classic reservoir
/// (Algorithm R) over a splitmix64 stream seeded by `seed`: the output is
/// a pure function of `(n, k, seed)`.
fn reservoir_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    if k <= 2 {
        return match (k, n) {
            (0, _) => Vec::new(),
            (1, _) => vec![0],
            (_, 1) => vec![0],
            _ => vec![0, n - 1],
        };
    }
    let mut state = seed ^ 0x5245_5345_5256_4f49; // "RESERVOI"
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    // Reservoir over the interior 1..n-1; endpoints ride along for free.
    let interior_k = k - 2;
    let mut chosen: Vec<usize> = (1..=interior_k).collect();
    for i in interior_k..(n - 2) {
        let j = (next() % (i as u64 + 1)) as usize;
        if j < interior_k {
            chosen[j] = i + 1;
        }
    }
    chosen.push(0);
    chosen.push(n - 1);
    chosen.sort_unstable();
    chosen
}

/// Figure 10 CSV: the pairwise r² matrix plus the CDF of pair values.
pub fn correlation_csv(corr: &SpatialCorrelation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# direction={} mean_r2={:.4}",
        corr.direction.label(),
        corr.mean_r2
    );
    let _ = write!(out, "service");
    for name in &corr.names {
        let _ = write!(out, ",{}", field(name));
    }
    out.push('\n');
    for (i, row) in corr.matrix.iter().enumerate() {
        let _ = write!(out, "{}", field(corr.names[i]));
        for v in row {
            let _ = write!(out, ",{:.4}", v);
        }
        out.push('\n');
    }
    out
}

/// Figure 11 CSV: volume ratios and temporal r² per service per class.
pub fn urbanization_csv(profiles: &[UrbanizationProfile]) -> String {
    let mut out = String::from(
        "service,ratio_urban,ratio_semi_urban,ratio_rural,ratio_tgv,\
         r2_urban,r2_semi_urban,r2_rural,r2_tgv\n",
    );
    for p in profiles {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            field(p.name),
            p.volume_ratio[0],
            p.volume_ratio[1],
            p.volume_ratio[2],
            p.volume_ratio[3],
            p.temporal_r2[0],
            p.temporal_r2[1],
            p.temporal_r2[2],
            p.temporal_r2[3]
        );
    }
    out
}

/// Extension: forecast report CSV (`service,naive_mape,naive_smape,hw_mape,hw_smape`).
pub fn forecast_csv(report: &[crate::forecast::ServiceForecast]) -> String {
    let mut out = String::from("service,naive_mape,naive_smape,holt_winters_mape,holt_winters_smape\n");
    for f in report {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4}",
            field(f.name),
            f.naive.mape,
            f.naive.smape,
            f.holt_winters.mape,
            f.holt_winters.smape
        );
    }
    out
}

/// A one-page plain-text overview of a study (the §3 headline numbers).
pub fn overview_text(study: &crate::study::Study) -> String {
    let mut out = String::new();
    let ds = study.dataset();
    let _ = writeln!(out, "communes: {}", ds.n_communes());
    let _ = writeln!(out, "services: {} head + {} tail", ds.n_services(), ds.n_tail());
    let _ = writeln!(
        out,
        "population: {} (subscribers per commune avg {:.0})",
        study.country().total_population(),
        ds.commune_users().iter().sum::<f64>() / ds.n_communes() as f64
    );
    for dir in Direction::BOTH {
        let _ = writeln!(
            out,
            "{}: total {:.1} MB, classified {:.1} MB, unclassified {:.1} MB",
            dir.label(),
            ds.total(dir),
            ds.total_classified(dir),
            ds.unclassified(dir)
        );
    }
    let _ = writeln!(
        out,
        "uplink fraction of load: {:.4}",
        crate::ranking::uplink_fraction(study)
    );
    if let Some(stats) = study.collection_stats() {
        let _ = writeln!(out, "sessions: {}", stats.sessions);
        let _ = writeln!(out, "classification rate: {:.4}", stats.classification_rate());
        let _ = writeln!(out, "median localization error: {:.2} km", stats.median_error_km());
        let _ = writeln!(out, "commune misassignment: {:.4}", stats.misassignment_rate());
        if stats.faults.any() || stats.skipped_lines > 0 {
            let f = &stats.faults;
            let _ = writeln!(
                out,
                "degraded capture: {} lost ({} outage, {} random), {} duplicated, \
                 {} truncated, {} skewed, {} trace lines skipped",
                f.lost_total(),
                f.lost_outage,
                f.lost_records,
                f.duplicated_records,
                f.truncated_records,
                f.skewed_records,
                stats.skipped_lines
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peaks::{detect_peaks, PeakConfig};
    use crate::ranking::{service_ranking, zipf_ranking};
    use crate::spatial::{concentration, spatial_correlation};
    use crate::study::Study;
    use crate::temporal::{clustering_sweep, Algorithm};
    use crate::topical::topical_profiles;
    use crate::urbanization::urbanization_profiles;

    fn study() -> &'static Study {
        crate::testutil::measured_study()
    }

    #[test]
    fn zipf_csv_has_header_and_rows() {
        let s = study();
        let csv = zipf_csv(&zipf_ranking(s));
        assert!(csv.starts_with("# zipf_fit"));
        assert!(csv.contains("rank,dl_share,ul_share"));
        assert_eq!(csv.lines().count(), 2 + 20 + s.catalog().tail_len());
    }

    #[test]
    fn ranking_csv_contains_all_services() {
        let s = study();
        let csv = ranking_csv(&service_ranking(s, Direction::Down));
        for spec in s.catalog().head() {
            assert!(csv.contains(spec.name), "{} missing", spec.name);
        }
    }

    #[test]
    fn peaks_csv_is_hourly() {
        let s = study();
        let series = s.dataset().national_series(Direction::Down, 0).to_vec();
        let det = detect_peaks(&series, &PeakConfig::paper());
        let csv = peaks_csv("YouTube", &series, &det, 3.0);
        assert_eq!(csv.lines().count(), 2 + 168);
    }

    #[test]
    fn sweep_csv_lists_all_k() {
        let s = study();
        let sweep = clustering_sweep(s, Direction::Down, Algorithm::KShape, 1);
        let csv = sweep_csv(&sweep);
        assert_eq!(csv.lines().count(), 2 + 18);
        assert!(csv.contains("davies_bouldin_star"));
    }

    #[test]
    fn topical_csvs_are_matrix_shaped() {
        let s = study();
        let profiles = topical_profiles(s, Direction::Down, &PeakConfig::paper());
        let m = topical_matrix_csv(&profiles);
        assert_eq!(m.lines().count(), 21);
        let i = intensity_csv(&profiles);
        assert_eq!(i.lines().count(), 21);
        // Every data row has 7 commas (8 columns).
        for line in m.lines().skip(1) {
            assert_eq!(line.matches(',').count(), 7, "{line}");
        }
    }

    #[test]
    fn concentration_csv_sections_exist() {
        let s = study();
        let csv = concentration_csv(&concentration(s, 7));
        assert!(csv.contains("dl_concentration"));
        assert!(csv.contains("ul_concentration"));
        assert!(csv.contains("per_user_cdf_mb"));
    }

    #[test]
    fn sampled_concentration_csv_caps_sections_and_is_reproducible() {
        let s = study();
        let report = concentration(s, 7);
        let n = report.dl_curve.len();
        assert!(n > 64, "study too small to exercise sampling");
        let a = concentration_csv_sampled(&report, 64, 42);
        let b = concentration_csv_sampled(&report, 64, 42);
        assert_eq!(a, b, "sampling must be deterministic in the seed");
        let dl_rows = a.lines().filter(|l| l.starts_with("dl_concentration")).count();
        assert_eq!(dl_rows, 64);
        assert!(a.contains("# sampled max_points_per_section=64"));
        // Endpoints survive: the sampled dl section starts and ends on the
        // full export's first and last dl rows.
        let full = concentration_csv(&report);
        let dl_full: Vec<&str> =
            full.lines().filter(|l| l.starts_with("dl_concentration")).collect();
        let dl_sampled: Vec<&str> =
            a.lines().filter(|l| l.starts_with("dl_concentration")).collect();
        assert_eq!(dl_sampled.first(), dl_full.first());
        assert_eq!(dl_sampled.last(), dl_full.last());
        // A different seed selects a different interior.
        let c = concentration_csv_sampled(&report, 64, 43);
        assert_ne!(a, c);
        // An uncapped call is exactly the historical export.
        assert_eq!(concentration_csv_sampled(&report, usize::MAX, 42), full);
    }

    #[test]
    fn reservoir_indices_edge_cases_hold() {
        assert_eq!(reservoir_indices(5, 10, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(reservoir_indices(5, 5, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(reservoir_indices(0, 3, 1), Vec::<usize>::new());
        assert_eq!(reservoir_indices(10, 0, 1), Vec::<usize>::new());
        assert_eq!(reservoir_indices(10, 1, 1), vec![0]);
        assert_eq!(reservoir_indices(10, 2, 1), vec![0, 9]);
        for seed in 0..16 {
            let idx = reservoir_indices(1000, 10, seed);
            assert_eq!(idx.len(), 10);
            assert_eq!(idx[0], 0);
            assert_eq!(idx[9], 999);
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted, unique: {idx:?}");
        }
    }

    #[test]
    fn correlation_csv_is_square() {
        let s = study();
        let csv = correlation_csv(&spatial_correlation(s, Direction::Down));
        assert_eq!(csv.lines().count(), 2 + 20);
    }

    #[test]
    fn urbanization_csv_has_eight_numeric_columns() {
        let s = study();
        let csv = urbanization_csv(&urbanization_profiles(s, Direction::Down));
        for line in csv.lines().skip(1) {
            assert_eq!(line.matches(',').count(), 8, "{line}");
        }
    }

    #[test]
    fn overview_mentions_key_statistics() {
        let s = study();
        let text = overview_text(s);
        assert!(text.contains("communes: 1000"));
        assert!(text.contains("classification rate"));
        assert!(text.contains("uplink fraction"));
        assert!(
            !text.contains("degraded capture"),
            "fault-free study must not report degradation"
        );
    }

    #[test]
    fn overview_reports_degraded_capture() {
        use crate::study::StudyConfig;
        use mobilenet_netsim::FaultPlan;
        let s = Study::generate_inner(
            &StudyConfig::small().with_faults(FaultPlan::degraded(7)),
            7,
        );
        let text = overview_text(&s);
        assert!(text.contains("degraded capture:"), "{text}");
        assert!(text.contains("duplicated"));
    }

    #[test]
    fn csv_escaping_quotes_fields() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
