//! Workspace-internal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses — the [`Rng`]
//! and [`SeedableRng`] traits plus [`rngs::StdRng`] — implemented from
//! scratch on `std` only. The generator is **xoshiro256\*\*** seeded via
//! SplitMix64 (the reference seeding procedure), which passes BigCrush and
//! is more than adequate for the workload synthesis here.
//!
//! The sampled streams differ from upstream `rand`'s ChaCha12-based
//! `StdRng`, so datasets generated before the switch are not byte-identical
//! to datasets generated after it; every committed artefact was regenerated
//! when this shim was introduced. Determinism guarantees are unchanged:
//! identical `(seed, config)` always produce identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributed type: `f64`/`f32` uniform
    /// in `[0, 1)`, integers uniform over their whole domain, `bool` fair.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits: uniform on [0, 1) with full precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                // Truncation keeps the high bits.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Types with uniform sampling over a half-open range (see
/// [`Rng::gen_range`]).
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample empty range");
        let width = range.end - range.start;
        loop {
            let v = range.start + f64::sample_standard(rng) * width;
            // Guard the half-open upper bound against rounding.
            if v < range.end {
                return v.max(range.start);
            }
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "cannot sample empty range");
        let width = range.end - range.start;
        loop {
            let v = range.start + f32::sample_standard(rng) * width;
            if v < range.end {
                return v.max(range.start);
            }
        }
    }
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's
/// multiply-shift method with rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the procedure upstream `rand` documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence; advances `state` and returns the
/// next output. Also the recommended way to derive independent stream
/// seeds from a master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one forbidden xoshiro state; nudge
            // it onto the SplitMix64 orbit instead.
            if s == [0, 0, 0, 0] {
                let mut sm = 0xDEAD_BEEF_u64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_is_uniform_on_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-8isize..8);
            assert!((-8..8).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_are_close_to_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 70_000;
        let mut counts = [0u32; 7];
        for _ in 0..n {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for c in counts {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 7.0).abs() < 0.01, "p {p}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        rng.gen_range(5usize..5);
    }
}
