//! Configuration of the measurement pipeline.

/// Parameters of the simulated collection apparatus.
#[derive(Debug, Clone, PartialEq)]
pub struct NetsimConfig {
    /// Target median localization error of ULI fixes, km (the paper cites
    /// ≈ 3 km from prior work on AccuLoc).
    pub uli_median_error_km: f64,
    /// Probability that a session's ULI is stale (not updated since a
    /// routing-area change), which displaces the fix at RA scale.
    pub uli_stale_prob: f64,
    /// Displacement scale of a stale ULI fix, km.
    pub uli_stale_error_km: f64,
    /// Base stations per 10,000 residents (at least one per commune).
    pub stations_per_10k_pop: f64,
    /// Edge length of a routing/tracking area cell, km.
    pub routing_area_km: f64,
}

impl NetsimConfig {
    /// Defaults matching the paper's reported magnitudes.
    pub fn standard() -> Self {
        NetsimConfig {
            uli_median_error_km: 3.0,
            uli_stale_prob: 0.12,
            uli_stale_error_km: 12.0,
            stations_per_10k_pop: 3.0,
            routing_area_km: 40.0,
        }
    }

    /// A perfect-localization variant used by ablations and tests.
    pub fn ideal() -> Self {
        NetsimConfig {
            uli_median_error_km: 0.0,
            uli_stale_prob: 0.0,
            uli_stale_error_km: 0.0,
            ..Self::standard()
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.uli_median_error_km < 0.0 || !self.uli_median_error_km.is_finite() {
            return Err("uli_median_error_km must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.uli_stale_prob) {
            return Err("uli_stale_prob must be in [0,1]".into());
        }
        if self.uli_stale_error_km < 0.0 {
            return Err("uli_stale_error_km must be non-negative".into());
        }
        if self.stations_per_10k_pop <= 0.0 {
            return Err("stations_per_10k_pop must be positive".into());
        }
        if self.routing_area_km <= 0.0 {
            return Err("routing_area_km must be positive".into());
        }
        Ok(())
    }
}

impl Default for NetsimConfig {
    fn default() -> Self {
        NetsimConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        NetsimConfig::standard().validate().unwrap();
        NetsimConfig::ideal().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = NetsimConfig::standard();
        c.uli_median_error_km = -1.0;
        assert!(c.validate().is_err());

        let mut c = NetsimConfig::standard();
        c.uli_stale_prob = 1.5;
        assert!(c.validate().is_err());

        let mut c = NetsimConfig::standard();
        c.stations_per_10k_pop = 0.0;
        assert!(c.validate().is_err());

        let mut c = NetsimConfig::standard();
        c.routing_area_km = -5.0;
        assert!(c.validate().is_err());

        let mut c = NetsimConfig::standard();
        c.uli_stale_error_km = -0.1;
        assert!(c.validate().is_err());
    }
}
