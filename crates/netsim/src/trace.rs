//! Probe-trace persistence and replay.
//!
//! The real apparatus separates *capture* (probes writing session records)
//! from *analysis* (batch aggregation of those records). This module
//! provides the same separation for the simulator: session records can be
//! streamed to a CSV trace, re-read later, and replayed through the DPI
//! stage into a [`TrafficDataset`] — so a captured trace can be
//! re-aggregated under different classifier tables without re-simulating
//! the radio layer.
//!
//! Capture and replay both understand degraded collection: a
//! [`FaultPlan`] in [`CollectOptions`] degrades the captured stream
//! exactly as
//! [`collect_with_options`](crate::pipeline::collect_with_options) would
//! (see [`observe_with_options`]), corrupts serialized lines
//! ([`trace_to_csv_faulty`]), and [`replay_lossy`] / [`replay_from`]
//! skip-and-count malformed or non-finite lines (with 1-based line
//! numbers) instead of aborting the whole replay.
//!
//! Traces stream both ways: [`write_trace_to`] serializes records to any
//! writer one line at a time, and [`read_trace_from`] /
//! [`replay_from`] read from any [`BufRead`] — `replay_from` aggregates
//! through the bounded-memory engine of [`crate::ingest`] without ever
//! materializing the record vector.

use std::io::{BufRead, Write};

use mobilenet_geo::CommuneId;
use mobilenet_traffic::{DemandModel, Direction, SessionGenerator, TrafficDataset, HOURS_PER_WEEK};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::classifier::{DpiClassifier, ServiceLabel};
use crate::config::NetsimConfig;
use crate::faults::{FaultInjector, FaultPlan, FaultStats};
use crate::ingest::{CollectOptions, IngestError, TraceSource};
use crate::pipeline::{build_capture, probe_shard_rng, CollectionStats};
use crate::probe::Probe;
use crate::records::{FlowSignature, Interface, SessionRecord};
use crate::uli::UliModel;

/// CSV header of a trace file.
pub const TRACE_HEADER: &str = "#mobilenet-trace v1";

/// What one capture run saw and emitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureSummary {
    /// Sessions observed by the probes (pre-fault).
    pub sessions: u64,
    /// Records actually delivered to the sink (post-fault).
    pub emitted: u64,
    /// Degradation the fault plan inflicted.
    pub faults: FaultStats,
}

/// Runs the capture side only: sessions → probes → (faults) → `sink`, one
/// record per session, without aggregation — the unified entry point
/// behind the historical `observe_sessions` /
/// `observe_sessions_with_faults` pair.
///
/// Deterministic in `(model, config, options, seed)` and produces exactly
/// the records
/// [`collect_with_options`](crate::pipeline::collect_with_options) would
/// aggregate: the capture iterates the same per-service shards with the
/// same derived RNG (and fault RNG) streams, serially in shard order (the
/// trace is an ordered artefact, so the stream itself is not
/// parallelized). Capture is already record-at-a-time — at most one
/// record is resident between the probe and the sink —
/// so `options.chunk_size` does not change its behaviour; it is still
/// validated so one `CollectOptions` value can drive both paths.
pub fn observe_with_options(
    model: &DemandModel,
    config: &NetsimConfig,
    options: &CollectOptions,
    seed: u64,
    mut sink: impl FnMut(&SessionRecord),
) -> Result<CaptureSummary, String> {
    config.validate()?;
    options.validate()?;
    let (radio, classifier, directions) = build_capture(model, config, seed);
    let probe = Probe::new(&radio, UliModel::new(config), &classifier)
        .with_movement_directions(directions);
    let generator = SessionGenerator::new(model, seed);
    let injector = FaultInjector::new(&options.faults);
    let faulted = !options.faults.is_none();
    let mut summary = CaptureSummary::default();
    for shard in 0..generator.shards() {
        let mut probe_rng = probe_shard_rng(seed, shard);
        let mut fault_rng = injector.shard_rng(seed, shard);
        summary.sessions += generator.generate_shard(shard, |session| {
            let record = probe.observe(session, &mut probe_rng);
            if faulted {
                injector.apply(&record, &mut fault_rng, &mut summary.faults, |degraded| {
                    summary.emitted += 1;
                    sink(degraded);
                });
            } else {
                summary.emitted += 1;
                sink(&record);
            }
        });
    }
    Ok(summary)
}

/// Serializes one record as a CSV line (no trailing newline).
pub fn record_to_line(r: &SessionRecord) -> String {
    format!(
        "{},{},{:e},{:e},{},{:#x},{}",
        match r.interface {
            Interface::Gn => "gn",
            Interface::S5S8 => "s5s8",
        },
        r.start_hour,
        r.dl_mb,
        r.ul_mb,
        r.commune.0,
        r.signature.0,
        if r.stale_uli { 1 } else { 0 }
    )
}

/// Parses a line written by [`record_to_line`].
///
/// Rejects anything that could poison downstream aggregates: non-finite
/// or negative volumes, and a `start_hour` outside the measurement week
/// (`0..168`).
pub fn record_from_line(line: &str) -> Result<SessionRecord, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(format!("expected 7 fields, got {}", fields.len()));
    }
    let interface = match fields[0] {
        "gn" => Interface::Gn,
        "s5s8" => Interface::S5S8,
        other => return Err(format!("unknown interface {other:?}")),
    };
    let start_hour: u16 = fields[1].parse().map_err(|e| format!("bad hour: {e}"))?;
    if start_hour >= HOURS_PER_WEEK as u16 {
        return Err(format!(
            "start hour {start_hour} outside the week (0..{HOURS_PER_WEEK})"
        ));
    }
    let volume = |name: &str, v: &str| -> Result<f64, String> {
        let parsed: f64 = v.parse().map_err(|e| format!("bad {name}: {e}"))?;
        if !parsed.is_finite() {
            return Err(format!("non-finite {name} volume {parsed}"));
        }
        if parsed < 0.0 {
            return Err(format!("negative {name} volume {parsed}"));
        }
        Ok(parsed)
    };
    let dl_mb = volume("dl", fields[2])?;
    let ul_mb = volume("ul", fields[3])?;
    let commune: u32 = fields[4].parse().map_err(|e| format!("bad commune: {e}"))?;
    let sig = fields[5]
        .strip_prefix("0x")
        .ok_or("signature must be hex")?;
    let signature = u64::from_str_radix(sig, 16).map_err(|e| format!("bad signature: {e}"))?;
    let stale_uli = match fields[6] {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad stale flag {other:?}")),
    };
    Ok(SessionRecord {
        interface,
        start_hour,
        dl_mb,
        ul_mb,
        commune: CommuneId(commune),
        signature: FlowSignature(signature),
        stale_uli,
    })
}

/// Streams a whole trace (header + one line per record) to any writer —
/// records are serialized one at a time, so a capture can be piped
/// straight to disk without materializing the trace text.
pub fn write_trace_to<'a, W: Write>(
    mut writer: W,
    records: impl IntoIterator<Item = &'a SessionRecord>,
) -> std::io::Result<()> {
    writeln!(writer, "{TRACE_HEADER}")?;
    for r in records {
        writeln!(writer, "{}", record_to_line(r))?;
    }
    Ok(())
}

/// Serializes a whole trace (header + one line per record) as a `String`
/// — [`write_trace_to`] into an in-memory buffer.
pub fn trace_to_csv<'a>(records: impl IntoIterator<Item = &'a SessionRecord>) -> String {
    let mut out = Vec::new();
    write_trace_to(&mut out, records).expect("writing a trace to memory cannot fail");
    String::from_utf8(out).expect("trace lines are ASCII")
}

/// Serializes a trace while corrupting a `plan.corrupt_prob` fraction of
/// the data lines, deterministically in `plan.seed` — the storage-layer
/// half of the fault model (probes wrote fine, the file rotted). The
/// corruption modes (truncated line, `NaN` volume, out-of-week hour,
/// mangled interface) all trip [`record_from_line`]'s hardened parser, so
/// a corrupted line is *detectably* bad rather than silently poisonous.
pub fn trace_to_csv_faulty<'a>(
    records: impl IntoIterator<Item = &'a SessionRecord>,
    plan: &FaultPlan,
) -> String {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x7472_6163_6563_7272); // "tracecrr"
    let mut out = String::from(TRACE_HEADER);
    out.push('\n');
    for r in records {
        let line = record_to_line(r);
        if plan.corrupt_prob > 0.0 && rng.gen::<f64>() < plan.corrupt_prob {
            out.push_str(&corrupt_line(&line, &mut rng));
        } else {
            out.push_str(&line);
        }
        out.push('\n');
    }
    out
}

/// Mangles one serialized record in one of four ways a real storage or
/// transport layer produces.
fn corrupt_line(line: &str, rng: &mut StdRng) -> String {
    let fields: Vec<&str> = line.split(',').collect();
    match rng.gen_range(0usize..4) {
        // Torn write: the tail of the line is gone.
        0 => line[..line.len() / 2].to_string(),
        // Counter glitch: the downlink volume becomes NaN.
        1 => {
            let mut f = fields.clone();
            f[2] = "NaN";
            f.join(",")
        }
        // Clock corruption: an impossible hour-of-week.
        2 => {
            let mut f = fields.clone();
            f[1] = "999";
            f.join(",")
        }
        // Bit rot in the interface tag.
        _ => {
            let mut f = fields.clone();
            f[0] = "g?";
            f.join(",")
        }
    }
}

/// A parse failure in [`trace_from_csv`], locating the offending row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Walks a trace from any reader, line by line, dispatching each parsed
/// record (or line-numbered parse failure) to `on_row`. I/O errors are
/// reported as a [`TraceError`] at the line where reading failed. The
/// shared core of the strict and lossy reader paths.
fn walk_trace<R: BufRead>(
    mut reader: R,
    mut on_row: impl FnMut(Result<SessionRecord, TraceError>) -> Result<(), TraceError>,
) -> Result<(), TraceError> {
    let mut line = String::new();
    let mut line_no = 0usize;
    let read_line = |reader: &mut R, line: &mut String, line_no: usize| {
        line.clear();
        let n = reader
            .read_line(line)
            .map_err(|e| TraceError { line: line_no + 1, message: format!("i/o error: {e}") })?;
        // Same semantics as `str::lines`: strip one `\n`, then at most
        // one `\r` before it.
        if line.ends_with('\n') {
            line.pop();
            if line.ends_with('\r') {
                line.pop();
            }
        }
        Ok::<bool, TraceError>(n > 0)
    };
    if !read_line(&mut reader, &mut line, line_no)? || line != TRACE_HEADER {
        return Err(TraceError {
            line: 1,
            message: "missing/unsupported trace header".into(),
        });
    }
    line_no = 1;
    while read_line(&mut reader, &mut line, line_no)? {
        line_no += 1;
        on_row(
            record_from_line(&line).map_err(|message| TraceError { line: line_no, message }),
        )?;
    }
    Ok(())
}

/// Reads a trace incrementally from any reader, strictly: the first bad
/// line aborts the parse. The reader-based counterpart of
/// [`trace_from_csv`]; for bounded-memory *aggregation* of a trace, see
/// [`replay_from`] (which never materializes the record vector at all).
pub fn read_trace_from<R: BufRead>(reader: R) -> Result<Vec<SessionRecord>, TraceError> {
    let mut records = Vec::new();
    walk_trace(reader, |row| {
        records.push(row?);
        Ok(())
    })?;
    Ok(records)
}

/// Parses a trace written by [`trace_to_csv`], strictly: the first bad
/// line aborts the parse — [`read_trace_from`] over an in-memory buffer.
///
/// Errors carry the 1-based line number of the offending row. For traces
/// from degraded collection, use [`trace_from_csv_lossy`] instead.
pub fn trace_from_csv(text: &str) -> Result<Vec<SessionRecord>, TraceError> {
    read_trace_from(text.as_bytes())
}

/// A lossy trace parse: the records that survived plus every skipped
/// line's error.
#[derive(Debug, Clone)]
pub struct LossyTrace {
    /// Records that parsed cleanly, in file order.
    pub records: Vec<SessionRecord>,
    /// One line-numbered error per skipped row.
    pub skipped: Vec<TraceError>,
}

/// Reads a trace incrementally from any reader, leniently: malformed or
/// non-finite rows are skipped and collected (with their 1-based line
/// numbers) instead of aborting. Only a missing header or an I/O failure
/// is fatal.
pub fn read_trace_from_lossy<R: BufRead>(reader: R) -> Result<LossyTrace, TraceError> {
    let mut records = Vec::new();
    let mut skipped = Vec::new();
    walk_trace(reader, |row| {
        match row {
            Ok(r) => records.push(r),
            Err(e) => skipped.push(e),
        }
        Ok(())
    })?;
    Ok(LossyTrace { records, skipped })
}

/// Parses a trace leniently: malformed or non-finite rows are skipped and
/// counted (with their 1-based line numbers) instead of aborting —
/// [`read_trace_from_lossy`] over an in-memory buffer.
///
/// Only a missing or unsupported header is fatal — without it the file is
/// not a trace at all.
pub fn trace_from_csv_lossy(text: &str) -> Result<LossyTrace, TraceError> {
    read_trace_from_lossy(text.as_bytes())
}

/// Replays one record through the classifier into `ds`, accumulating the
/// replay-side diagnostics. Shared with the streaming engine
/// ([`crate::ingest::ingest`]), so a chunked replay folds records exactly
/// as the materialized one.
pub(crate) fn replay_record(
    r: &SessionRecord,
    classifier: &DpiClassifier,
    ds: &mut TrafficDataset,
    stats: &mut CollectionStats,
) {
    stats.sessions += 1;
    match r.interface {
        Interface::Gn => stats.gn_records += 1,
        Interface::S5S8 => stats.s5s8_records += 1,
    }
    if r.stale_uli {
        stats.stale_fixes += 1;
    }
    match classifier.classify(r.signature) {
        ServiceLabel::Head(s) => {
            stats.classified_mb += r.dl_mb + r.ul_mb;
            ds.add(Direction::Down, s as usize, r.commune, r.start_hour as usize, r.dl_mb);
            ds.add(Direction::Up, s as usize, r.commune, r.start_hour as usize, r.ul_mb);
        }
        ServiceLabel::Tail(t) => {
            stats.classified_mb += r.dl_mb + r.ul_mb;
            ds.add_tail(Direction::Down, t as usize, r.dl_mb);
            ds.add_tail(Direction::Up, t as usize, r.ul_mb);
        }
        ServiceLabel::Unclassified => {
            stats.unclassified_mb += r.dl_mb + r.ul_mb;
            ds.add_unclassified(Direction::Down, r.dl_mb);
            ds.add_unclassified(Direction::Up, r.ul_mb);
        }
    }
}

/// Builds the replay-side classifier and empty dataset for `model`.
fn replay_setup(model: &DemandModel) -> (DpiClassifier, TrafficDataset) {
    let catalog = model.catalog();
    let classifier = DpiClassifier::new(
        catalog.head().len(),
        catalog.tail_len(),
        model.config().classified_fraction,
    );
    let ds = TrafficDataset::new(
        model.country(),
        catalog.head().len(),
        catalog.tail_len(),
        model.config().subscriber_share,
    );
    (classifier, ds)
}

/// Replays records through a classifier into a dataset shaped like
/// `model`'s country. The tail table is filled from the demand model
/// afterwards, exactly as [`crate::pipeline::collect`] does.
pub fn replay<'a>(
    records: impl IntoIterator<Item = &'a SessionRecord>,
    model: &DemandModel,
) -> TrafficDataset {
    let (classifier, mut ds) = replay_setup(model);
    let mut stats = CollectionStats::default();
    for r in records {
        replay_record(r, &classifier, &mut ds, &mut stats);
    }
    model.fill_tail(&mut ds);
    ds
}

/// The result of a lossy trace replay.
pub struct LossyReplay {
    /// The aggregated dataset built from every parseable record.
    pub dataset: TrafficDataset,
    /// Replay diagnostics; `skipped_lines` counts the rows dropped by the
    /// lossy parser, and the line-numbered details are in
    /// [`LossyReplay::skipped`].
    pub stats: CollectionStats,
    /// One error per skipped trace row.
    pub skipped: Vec<TraceError>,
    /// Streaming-engine accounting of the replay.
    pub ingest: crate::ingest::IngestStats,
}

/// Replays a trace incrementally from any reader through the lossy parser
/// and the streaming engine into a dataset shaped like `model`'s country —
/// the bounded-memory counterpart of [`replay_lossy`]: at most
/// `options.chunk_size` records are resident at a time, and the result is
/// bit-identical to the materialized path at any chunk size.
///
/// Only a bad header or an I/O failure is fatal. Skipped-line counts are
/// exported to the observability registry as
/// `netsim.faults.skipped_lines`.
pub fn replay_from<R: BufRead + Send>(
    reader: R,
    model: &DemandModel,
    options: &CollectOptions,
) -> Result<LossyReplay, IngestError> {
    let source = TraceSource::lossy(reader);
    let out = crate::ingest::ingest(&source, model, options)?;
    Ok(LossyReplay {
        dataset: out.dataset,
        stats: out.stats,
        skipped: source.take_skipped(),
        ingest: out.ingest,
    })
}

/// Parses `text` leniently and replays every surviving record into a
/// dataset — [`replay_from`] over an in-memory buffer, kept for callers
/// that already hold the trace text.
pub fn replay_lossy(text: &str, model: &DemandModel) -> Result<LossyReplay, TraceError> {
    replay_from(text.as_bytes(), model, &CollectOptions::default()).map_err(|e| match e {
        IngestError::Trace(e) => e,
        // In-memory readers cannot fail I/O, and a single-shard merge
        // cannot mismatch shapes; keep the signature total anyway.
        other => TraceError { line: 0, message: other.to_string() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{collect_with_options, CollectionOutput};
    use mobilenet_geo::{Country, CountryConfig};
    use mobilenet_traffic::{ServiceCatalog, TrafficConfig};
    use std::sync::Arc;

    fn model() -> DemandModel {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(20));
        DemandModel::new(country, catalog, TrafficConfig::fast(), 11)
    }

    /// Fault-free collection through the unified entry point.
    fn run(m: &DemandModel, cfg: &NetsimConfig, seed: u64) -> CollectionOutput {
        collect_with_options(m, cfg, &CollectOptions::default(), seed).expect("valid config")
    }

    /// Fault-free capture through the unified entry point.
    fn capture(m: &DemandModel, cfg: &NetsimConfig, seed: u64) -> Vec<SessionRecord> {
        let mut records = Vec::new();
        observe_with_options(m, cfg, &CollectOptions::default(), seed, |r| {
            records.push(r.clone())
        })
        .expect("valid config");
        records
    }

    #[test]
    fn record_line_round_trips() {
        let r = SessionRecord {
            interface: Interface::S5S8,
            start_hour: 167,
            dl_mb: 12.345678901234,
            ul_mb: 0.00042,
            commune: CommuneId(999),
            signature: FlowSignature(0xDEAD_BEEF_CAFE_F00D),
            stale_uli: true,
        };
        let line = record_to_line(&r);
        let back = record_from_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(record_from_line("").is_err());
        assert!(record_from_line("gn,1,2").is_err());
        assert!(record_from_line("bogus,1,1.0,1.0,5,0xff,0").is_err());
        assert!(record_from_line("gn,1,1.0,1.0,5,ff,0").is_err()); // missing 0x
        assert!(record_from_line("gn,1,1.0,1.0,5,0xff,2").is_err());
        assert!(trace_from_csv("no header\n").is_err());
    }

    #[test]
    fn poisonous_values_are_rejected() {
        // Non-finite volumes would sail through aggregation and blow up
        // sorts/statistics far from the source; reject at the boundary.
        assert!(record_from_line("gn,1,NaN,1.0,5,0xff,0").is_err());
        assert!(record_from_line("gn,1,1.0,NaN,5,0xff,0").is_err());
        assert!(record_from_line("gn,1,inf,1.0,5,0xff,0").is_err());
        assert!(record_from_line("gn,1,1.0,-inf,5,0xff,0").is_err());
        assert!(record_from_line("gn,1,-2.0,1.0,5,0xff,0").is_err());
        // Hours beyond the measurement week would index out of range.
        assert!(record_from_line("gn,168,1.0,1.0,5,0xff,0").is_err());
        assert!(record_from_line("gn,999,1.0,1.0,5,0xff,0").is_err());
        // Boundary values stay valid.
        assert!(record_from_line("gn,167,0e0,0e0,5,0xff,0").is_ok());
    }

    #[test]
    fn captured_trace_replays_to_the_same_dataset() {
        let m = model();
        let cfg = NetsimConfig::standard();
        // Path A: the normal pipeline.
        let direct = run(&m, &cfg, 7).dataset;

        // Path B: capture → CSV → parse → replay.
        let records = capture(&m, &cfg, 7);
        let csv = trace_to_csv(&records);
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), records.len());
        let replayed = replay(&parsed, &m);

        for dir in Direction::BOTH {
            for s in (0..20).step_by(5) {
                let a = direct.national_series(dir, s);
                let b = replayed.national_series(dir, s);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "{} service {s}: {x} vs {y}",
                        dir.label()
                    );
                }
            }
            // Unclassified volume is one shared accumulator: collect() sums
            // it per shard and merges, replay() keeps one running total, so
            // they agree only up to float re-association — compare
            // relatively.
            let (u_direct, u_replay) = (direct.unclassified(dir), replayed.unclassified(dir));
            assert!(
                (u_direct - u_replay).abs() <= 1e-12 * u_direct.abs().max(1.0),
                "{} unclassified: {u_direct} vs {u_replay}",
                dir.label()
            );
            assert_eq!(direct.tail_weekly(dir), replayed.tail_weekly(dir));
        }
    }

    #[test]
    fn observe_sessions_is_deterministic() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let a = capture(&m, &cfg, 5);
        let b = capture(&m, &cfg, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first(), b.first());
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn observe_sessions_rejects_invalid_config_without_panicking() {
        let m = model();
        let mut cfg = NetsimConfig::standard();
        cfg.uli_stale_prob = 2.0;
        let err =
            observe_with_options(&m, &cfg, &CollectOptions::default(), 5, |_| {}).unwrap_err();
        assert!(err.contains("uli_stale_prob"), "{err}");
        let mut plan = FaultPlan::none();
        plan.dup_prob = -0.5;
        let opts = CollectOptions::with_faults(plan);
        let err = observe_with_options(&m, &NetsimConfig::standard(), &opts, 5, |_| {})
            .unwrap_err();
        assert!(err.contains("dup_prob"), "{err}");
        let opts = CollectOptions::default().chunk_size(0);
        let err = observe_with_options(&m, &NetsimConfig::standard(), &opts, 5, |_| {})
            .unwrap_err();
        assert!(err.contains("chunk_size"), "{err}");
    }

    #[test]
    fn faulted_capture_matches_faulted_collection() {
        // The contract the trace path promises: a faulted capture emits
        // exactly the records a faulted collection aggregates.
        let m = model();
        let cfg = NetsimConfig::standard();
        let opts = CollectOptions::with_faults(FaultPlan::degraded(21));
        let direct = collect_with_options(&m, &cfg, &opts, 7).unwrap();

        let mut records = Vec::new();
        let summary =
            observe_with_options(&m, &cfg, &opts, 7, |r| records.push(r.clone())).unwrap();
        assert_eq!(summary.emitted as usize, records.len());
        assert_eq!(summary.sessions, direct.stats.sessions);
        assert_eq!(summary.faults, direct.stats.faults);
        assert_eq!(
            summary.emitted,
            direct.stats.gn_records + direct.stats.s5s8_records
        );

        let replayed = replay(&records, &m);
        for dir in Direction::BOTH {
            for s in (0..20).step_by(7) {
                let a = direct.dataset.national_series(dir, s);
                let b = replayed.national_series(dir, s);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x - y).abs() < 1e-9, "{} service {s}: {x} vs {y}", dir.label());
                }
            }
        }
    }

    #[test]
    fn corrupted_trace_round_trips_through_the_lossy_path() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let records = capture(&m, &cfg, 9);

        let mut plan = FaultPlan::none();
        plan.seed = 4;
        plan.corrupt_prob = 0.05;
        let csv = trace_to_csv_faulty(&records, &plan);

        // The strict parser aborts...
        assert!(trace_from_csv(&csv).is_err());
        // ...the lossy one skips-and-counts with line numbers.
        let lossy = trace_from_csv_lossy(&csv).unwrap();
        assert!(!lossy.skipped.is_empty());
        let frac = lossy.skipped.len() as f64 / records.len() as f64;
        assert!((frac - 0.05).abs() < 0.02, "corrupted fraction {frac}");
        assert_eq!(lossy.records.len() + lossy.skipped.len(), records.len());
        for err in &lossy.skipped {
            assert!(err.line >= 2, "header is line 1");
            let line_in_file = csv.lines().nth(err.line - 1).unwrap();
            assert!(record_from_line(line_in_file).is_err(), "line {}: {line_in_file}", err.line);
        }

        let replayed = replay_lossy(&csv, &m).unwrap();
        assert_eq!(replayed.stats.skipped_lines, lossy.skipped.len() as u64);
        assert_eq!(replayed.stats.sessions, lossy.records.len() as u64);
        assert!(replayed.dataset.total(Direction::Down) > 0.0);

        // A header-less file is still fatal: it is not a trace at all.
        assert!(replay_lossy("volume data\n1,2,3\n", &m).is_err());
        // A pristine trace replays lossily with zero skips.
        let clean = replay_lossy(&trace_to_csv(&records), &m).unwrap();
        assert_eq!(clean.stats.skipped_lines, 0);
        assert_eq!(
            clean.dataset.total(Direction::Down),
            replay(&records, &m).total(Direction::Down)
        );
    }

    #[test]
    fn writer_and_reader_apis_round_trip_the_csv_forms() {
        let m = model();
        let records = capture(&m, &NetsimConfig::standard(), 11);

        // write_trace_to into memory is exactly trace_to_csv.
        let mut buf = Vec::new();
        write_trace_to(&mut buf, &records).unwrap();
        let csv = trace_to_csv(&records);
        assert_eq!(String::from_utf8(buf).unwrap(), csv);

        // read_trace_from over any reader is exactly trace_from_csv,
        // including \r\n line endings.
        let parsed = read_trace_from(csv.as_bytes()).unwrap();
        assert_eq!(parsed, trace_from_csv(&csv).unwrap());
        let crlf = csv.replace('\n', "\r\n");
        assert_eq!(read_trace_from(crlf.as_bytes()).unwrap(), parsed);

        // Strict reading reports the offending 1-based line number.
        let mut broken = csv.clone();
        broken.push_str("gn,999,1.0,1.0,5,0xff,0\n");
        let err = read_trace_from(broken.as_bytes()).unwrap_err();
        assert_eq!(err.line, records.len() + 2);
        assert!(read_trace_from_lossy(broken.as_bytes()).unwrap().skipped.len() == 1);
    }

    #[test]
    fn streaming_replay_matches_materialized_at_any_chunk_size() {
        let m = model();
        let records = capture(&m, &NetsimConfig::standard(), 13);
        let csv = trace_to_csv(&records);
        let reference = replay_lossy(&csv, &m).unwrap();
        for chunk_size in [1usize, 97, records.len() + 10] {
            let opts = CollectOptions::default().chunk_size(chunk_size);
            let out = replay_from(csv.as_bytes(), &m, &opts).unwrap();
            assert_eq!(
                reference.dataset.to_csv(),
                out.dataset.to_csv(),
                "chunk_size {chunk_size} diverged"
            );
            assert_eq!(out.stats.sessions, reference.stats.sessions);
            assert_eq!(out.ingest.records, records.len() as u64);
            assert_eq!(out.ingest.bytes_read, csv.len() as u64);
            assert!(out.ingest.peak_resident_records <= out.ingest.resident_budget());
            assert_eq!(
                out.ingest.chunks,
                (records.len() as u64).div_ceil(chunk_size as u64)
            );
        }
    }

    #[test]
    fn faulted_capture_summary_accounts_for_the_degradation() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let via_options = capture(&m, &cfg, 17);
        let plan = FaultPlan::degraded(3);
        let mut faulted = Vec::new();
        let summary =
            observe_with_options(&m, &cfg, &CollectOptions::with_faults(plan), 17, |r| {
                faulted.push(r.clone())
            })
            .unwrap();
        assert_eq!(summary.sessions, via_options.len() as u64);
        assert_eq!(summary.emitted, faulted.len() as u64);
        assert_eq!(
            summary.emitted,
            summary.sessions - summary.faults.lost_total() + summary.faults.duplicated_records
        );
        assert!(summary.faults.any());
    }
}
