//! Probe-trace persistence and replay.
//!
//! The real apparatus separates *capture* (probes writing session records)
//! from *analysis* (batch aggregation of those records). This module
//! provides the same separation for the simulator: session records can be
//! streamed to a CSV trace, re-read later, and replayed through the DPI
//! stage into a [`TrafficDataset`] — so a captured trace can be
//! re-aggregated under different classifier tables without re-simulating
//! the radio layer.

use mobilenet_geo::CommuneId;
use mobilenet_traffic::{DemandModel, Direction, SessionGenerator, TrafficDataset};

use crate::classifier::{DpiClassifier, ServiceLabel};
use crate::config::NetsimConfig;
use crate::pipeline::{build_capture, probe_shard_rng};
use crate::probe::Probe;
use crate::records::{FlowSignature, Interface, SessionRecord};
use crate::uli::UliModel;

/// CSV header of a trace file.
pub const TRACE_HEADER: &str = "#mobilenet-trace v1";

/// Runs the capture side only: sessions → probes → `sink`, one record per
/// session, without aggregation. Deterministic in `(model, config, seed)`
/// and produces exactly the records [`crate::pipeline::collect`] would
/// aggregate: the capture iterates the same per-service shards with the
/// same derived RNG streams, serially in shard order (the trace is an
/// ordered artefact, so the stream itself is not parallelized).
pub fn observe_sessions(
    model: &DemandModel,
    config: &NetsimConfig,
    seed: u64,
    mut sink: impl FnMut(&SessionRecord),
) -> u64 {
    config.validate().expect("invalid NetsimConfig");
    let (radio, classifier, directions) = build_capture(model, config, seed);
    let probe = Probe::new(&radio, UliModel::new(config), &classifier)
        .with_movement_directions(directions);
    let generator = SessionGenerator::new(model, seed);
    let mut count = 0u64;
    for shard in 0..generator.shards() {
        let mut probe_rng = probe_shard_rng(seed, shard);
        count += generator.generate_shard(shard, |session| {
            let record = probe.observe(session, &mut probe_rng);
            sink(&record);
        });
    }
    count
}

/// Serializes one record as a CSV line (no trailing newline).
pub fn record_to_line(r: &SessionRecord) -> String {
    format!(
        "{},{},{:e},{:e},{},{:#x},{}",
        match r.interface {
            Interface::Gn => "gn",
            Interface::S5S8 => "s5s8",
        },
        r.start_hour,
        r.dl_mb,
        r.ul_mb,
        r.commune.0,
        r.signature.0,
        if r.stale_uli { 1 } else { 0 }
    )
}

/// Parses a line written by [`record_to_line`].
pub fn record_from_line(line: &str) -> Result<SessionRecord, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(format!("expected 7 fields, got {}", fields.len()));
    }
    let interface = match fields[0] {
        "gn" => Interface::Gn,
        "s5s8" => Interface::S5S8,
        other => return Err(format!("unknown interface {other:?}")),
    };
    let start_hour: u16 = fields[1].parse().map_err(|e| format!("bad hour: {e}"))?;
    let dl_mb: f64 = fields[2].parse().map_err(|e| format!("bad dl: {e}"))?;
    let ul_mb: f64 = fields[3].parse().map_err(|e| format!("bad ul: {e}"))?;
    let commune: u32 = fields[4].parse().map_err(|e| format!("bad commune: {e}"))?;
    let sig = fields[5]
        .strip_prefix("0x")
        .ok_or("signature must be hex")?;
    let signature = u64::from_str_radix(sig, 16).map_err(|e| format!("bad signature: {e}"))?;
    let stale_uli = match fields[6] {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad stale flag {other:?}")),
    };
    Ok(SessionRecord {
        interface,
        start_hour,
        dl_mb,
        ul_mb,
        commune: CommuneId(commune),
        signature: FlowSignature(signature),
        stale_uli,
    })
}

/// Serializes a whole trace (header + one line per record).
pub fn trace_to_csv<'a>(records: impl IntoIterator<Item = &'a SessionRecord>) -> String {
    let mut out = String::from(TRACE_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&record_to_line(r));
        out.push('\n');
    }
    out
}

/// A parse failure in [`trace_from_csv`], locating the offending row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace written by [`trace_to_csv`].
///
/// Errors carry the 1-based line number of the offending row.
pub fn trace_from_csv(text: &str) -> Result<Vec<SessionRecord>, TraceError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(TRACE_HEADER) => {}
        _ => {
            return Err(TraceError {
                line: 1,
                message: "missing/unsupported trace header".into(),
            })
        }
    }
    lines
        .enumerate()
        .map(|(i, line)| {
            record_from_line(line).map_err(|message| TraceError { line: i + 2, message })
        })
        .collect()
}

/// Replays records through a classifier into a dataset shaped like
/// `model`'s country. The tail table is filled from the demand model
/// afterwards, exactly as [`crate::pipeline::collect`] does.
pub fn replay<'a>(
    records: impl IntoIterator<Item = &'a SessionRecord>,
    model: &DemandModel,
) -> TrafficDataset {
    let catalog = model.catalog();
    let classifier = DpiClassifier::new(
        catalog.head().len(),
        catalog.tail_len(),
        model.config().classified_fraction,
    );
    let mut ds = TrafficDataset::new(
        model.country(),
        catalog.head().len(),
        catalog.tail_len(),
        model.config().subscriber_share,
    );
    for r in records {
        match classifier.classify(r.signature) {
            ServiceLabel::Head(s) => {
                ds.add(Direction::Down, s as usize, r.commune, r.start_hour as usize, r.dl_mb);
                ds.add(Direction::Up, s as usize, r.commune, r.start_hour as usize, r.ul_mb);
            }
            ServiceLabel::Tail(t) => {
                ds.add_tail(Direction::Down, t as usize, r.dl_mb);
                ds.add_tail(Direction::Up, t as usize, r.ul_mb);
            }
            ServiceLabel::Unclassified => {
                ds.add_unclassified(Direction::Down, r.dl_mb);
                ds.add_unclassified(Direction::Up, r.ul_mb);
            }
        }
    }
    model.fill_tail(&mut ds);
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::collect;
    use mobilenet_geo::{Country, CountryConfig};
    use mobilenet_traffic::{ServiceCatalog, TrafficConfig};
    use std::sync::Arc;

    fn model() -> DemandModel {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(20));
        DemandModel::new(country, catalog, TrafficConfig::fast(), 11)
    }

    #[test]
    fn record_line_round_trips() {
        let r = SessionRecord {
            interface: Interface::S5S8,
            start_hour: 167,
            dl_mb: 12.345678901234,
            ul_mb: 0.00042,
            commune: CommuneId(999),
            signature: FlowSignature(0xDEAD_BEEF_CAFE_F00D),
            stale_uli: true,
        };
        let line = record_to_line(&r);
        let back = record_from_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(record_from_line("").is_err());
        assert!(record_from_line("gn,1,2").is_err());
        assert!(record_from_line("bogus,1,1.0,1.0,5,0xff,0").is_err());
        assert!(record_from_line("gn,1,1.0,1.0,5,ff,0").is_err()); // missing 0x
        assert!(record_from_line("gn,1,1.0,1.0,5,0xff,2").is_err());
        assert!(trace_from_csv("no header\n").is_err());
    }

    #[test]
    fn captured_trace_replays_to_the_same_dataset() {
        let m = model();
        let cfg = NetsimConfig::standard();
        // Path A: the normal pipeline.
        let direct = collect(&m, &cfg, 7).dataset;

        // Path B: capture → CSV → parse → replay.
        let mut records = Vec::new();
        observe_sessions(&m, &cfg, 7, |r| records.push(r.clone()));
        let csv = trace_to_csv(&records);
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), records.len());
        let replayed = replay(&parsed, &m);

        for dir in Direction::BOTH {
            for s in (0..20).step_by(5) {
                let a = direct.national_series(dir, s);
                let b = replayed.national_series(dir, s);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "{} service {s}: {x} vs {y}",
                        dir.label()
                    );
                }
            }
            // Unclassified volume is one shared accumulator: collect() sums
            // it per shard and merges, replay() keeps one running total, so
            // they agree only up to float re-association — compare
            // relatively.
            let (u_direct, u_replay) = (direct.unclassified(dir), replayed.unclassified(dir));
            assert!(
                (u_direct - u_replay).abs() <= 1e-12 * u_direct.abs().max(1.0),
                "{} unclassified: {u_direct} vs {u_replay}",
                dir.label()
            );
            assert_eq!(direct.tail_weekly(dir), replayed.tail_weekly(dir));
        }
    }

    #[test]
    fn observe_sessions_is_deterministic() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let mut a = Vec::new();
        observe_sessions(&m, &cfg, 5, |r| a.push(r.clone()));
        let mut b = Vec::new();
        observe_sessions(&m, &cfg, 5, |r| b.push(r.clone()));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first(), b.first());
        assert_eq!(a.last(), b.last());
    }
}
