//! End-to-end collection: demand model → sessions → probes → dataset.
//!
//! [`collect_with_options`] runs the full measurement chain the paper
//! describes in §2 and produces the commune-aggregated [`TrafficDataset`]
//! every analysis consumes, together with [`CollectionStats`] quantifying
//! the artefacts the apparatus introduces (classification loss,
//! localization error, commune misassignment) and [`IngestStats`]
//! describing the streaming engine's chunk/memory accounting.
//!
//! Collection is sharded per service: each shard samples its sessions and
//! probe noise from seed-derived RNG streams ([`mobilenet_par::seed_for`])
//! and streams through the bounded-memory engine of [`crate::ingest`]
//! into a partial dataset, and the partials are merged in shard order.
//! Output is therefore bit-identical at any thread count (including a
//! serial run) and at any chunk size.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use mobilenet_traffic::{DemandModel, Direction, SessionGenerator, TrafficDataset};

use crate::classifier::{DpiClassifier, ServiceLabel, UNCLASSIFIED_CODE};
use crate::config::NetsimConfig;
use crate::faults::{FaultInjector, FaultStats};
use crate::ingest::{
    aggregate_source, ChunkSink, CollectOptions, FoldStrategy, IngestError, IngestStats,
    RecordSource,
};
use crate::probe::Probe;
use crate::radio::RadioNetwork;
use crate::records::{Interface, RecordBatch, SessionRecord};
use crate::uli::UliModel;

/// Cap on localization-error samples retained per [`CollectionStats`].
/// Each shard's reservoir stays below this; a 20-shard merge therefore
/// holds < 20 × 4096 samples regardless of session count.
pub const ERROR_SAMPLE_CAP: usize = 4096;

/// Diagnostics of one collection run.
#[derive(Debug, Clone, Default)]
pub struct CollectionStats {
    /// Total sessions observed.
    pub sessions: u64,
    /// Records captured on the Gn (3G) interface.
    pub gn_records: u64,
    /// Records captured on the S5/S8 (4G) interface.
    pub s5s8_records: u64,
    /// Volume the DPI stage classified, MB (both directions).
    pub classified_mb: f64,
    /// Volume the DPI stage could not classify, MB.
    pub unclassified_mb: f64,
    /// Sessions whose recorded commune differs from the true one.
    pub misassigned_sessions: u64,
    /// Sessions with a stale ULI fix.
    pub stale_fixes: u64,
    /// Sampled localization errors, km (every 16th session of each shard,
    /// further thinned by [`CollectionStats::push_error_sample`] so the
    /// reservoir stays bounded at any session count).
    pub sampled_errors_km: Vec<f64>,
    /// Error samples offered to the reservoir so far (pre-thinning).
    pub error_samples_seen: u64,
    /// Current thinning stride of the error reservoir: every
    /// `error_sample_thin`-th offered sample is retained (0 is treated as
    /// 1, i.e. keep everything until the cap is first reached).
    pub error_sample_thin: u64,
    /// Degradation inflicted by the fault plan (all-zero when collecting
    /// with [`FaultPlan::none`](crate::faults::FaultPlan::none)).
    pub faults: FaultStats,
    /// Malformed trace lines skipped by a lossy replay (zero on the
    /// direct collection path).
    pub skipped_lines: u64,
}

impl CollectionStats {
    /// Folds another run's (or shard's) diagnostics into this one.
    ///
    /// The parallel pipeline merges per-shard partials **in shard order**,
    /// so the floating-point accumulation order — and with it every
    /// derived statistic — is independent of the thread count.
    pub fn merge(&mut self, other: &CollectionStats) {
        self.sessions += other.sessions;
        self.gn_records += other.gn_records;
        self.s5s8_records += other.s5s8_records;
        self.classified_mb += other.classified_mb;
        self.unclassified_mb += other.unclassified_mb;
        self.misassigned_sessions += other.misassigned_sessions;
        self.stale_fixes += other.stale_fixes;
        self.sampled_errors_km.extend_from_slice(&other.sampled_errors_km);
        self.error_samples_seen += other.error_samples_seen;
        self.error_sample_thin = self.error_sample_thin.max(other.error_sample_thin);
        self.faults.merge(&other.faults);
        self.skipped_lines += other.skipped_lines;
    }

    /// Offers one localization-error sample to the bounded reservoir.
    ///
    /// Doubling-thinning: samples are kept every `error_sample_thin`-th
    /// offer; when the retained set reaches [`ERROR_SAMPLE_CAP`] the
    /// even-indexed half is kept and the stride doubles, so the vector
    /// never exceeds the cap no matter how many sessions stream through
    /// (at paper scale the old unbounded push grew by ~6 M samples per
    /// 10⁸ sessions). Deterministic: retention depends only on how many
    /// samples this struct has seen, and shards each own their stats, so
    /// the merged reservoir is identical at any thread count and chunk
    /// size.
    pub fn push_error_sample(&mut self, km: f64) {
        if self.error_sample_thin == 0 {
            self.error_sample_thin = 1;
        }
        if self.error_samples_seen.is_multiple_of(self.error_sample_thin) {
            self.sampled_errors_km.push(km);
            if self.sampled_errors_km.len() >= ERROR_SAMPLE_CAP {
                let mut i = 0usize;
                self.sampled_errors_km.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.error_sample_thin *= 2;
            }
        }
        self.error_samples_seen += 1;
    }

    /// Fraction of the volume the classifier attributed to a service.
    pub fn classification_rate(&self) -> f64 {
        let total = self.classified_mb + self.unclassified_mb;
        if total <= 0.0 {
            return 0.0;
        }
        self.classified_mb / total
    }

    /// Fraction of sessions aggregated into the wrong commune.
    pub fn misassignment_rate(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        self.misassigned_sessions as f64 / self.sessions as f64
    }

    /// Median of the sampled localization errors, km.
    ///
    /// NaN-safe: a corrupt sample cannot panic the sort ([`f64::total_cmp`]
    /// orders NaN after every finite value).
    pub fn median_error_km(&self) -> f64 {
        if self.sampled_errors_km.is_empty() {
            return 0.0;
        }
        let mut s = self.sampled_errors_km.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    }
}

/// The result of a collection run.
pub struct CollectionOutput {
    /// The commune-aggregated dataset (the analyses' input).
    pub dataset: TrafficDataset,
    /// Collection diagnostics.
    pub stats: CollectionStats,
    /// Streaming-engine accounting (chunks, records, peak residency).
    pub ingest: IngestStats,
}

/// Builds the read-only capture apparatus of a run: radio network, DPI
/// tables, and the per-commune ULI movement directions (train passengers'
/// fixes displace along the rail; everyone else scatters isotropically).
/// Shared by [`collect_with_options`] and the trace capture path so both
/// observe the exact same records.
pub(crate) fn build_capture(
    model: &DemandModel,
    config: &NetsimConfig,
    seed: u64,
) -> (RadioNetwork, DpiClassifier, Vec<Option<(f64, f64)>>) {
    let country = model.country();
    let radio = RadioNetwork::deploy(country, config, seed ^ 0x7261_6469_6f00_0001);
    let classifier = DpiClassifier::new(
        model.catalog().head().len(),
        model.catalog().tail_len(),
        model.config().classified_fraction,
    );
    let directions: Vec<Option<(f64, f64)>> = country
        .communes()
        .iter()
        .map(|c| {
            if c.usage_class() == mobilenet_geo::UsageClass::Tgv {
                mobilenet_geo::rail::nearest_line_direction(country.tgv_lines(), &c.centroid)
            } else {
                None
            }
        })
        .collect();
    (radio, classifier, directions)
}

/// The probe-noise RNG of one shard: like session sampling, probe noise is
/// a per-shard stream derived from the master seed, so a shard's records
/// are identical wherever and whenever the shard runs.
pub(crate) fn probe_shard_rng(seed: u64, shard: usize) -> StdRng {
    StdRng::seed_from_u64(mobilenet_par::seed_for(
        seed ^ 0x7072_6f62_6572_6e67, // "proberng"
        shard as u64,
    ))
}

/// Classifies one (possibly degraded) record and folds it into the shard's
/// partial dataset and diagnostics. Shared by the fault-free and faulted
/// paths so a [`FaultPlan::none`](crate::faults::FaultPlan::none)
/// collection is bit-identical to one that
/// never touched the fault layer.
fn aggregate_record(
    record: &SessionRecord,
    classifier: &DpiClassifier,
    dataset: &mut TrafficDataset,
    stats: &mut CollectionStats,
) {
    match record.interface {
        Interface::Gn => stats.gn_records += 1,
        Interface::S5S8 => stats.s5s8_records += 1,
    }
    match classifier.classify(record.signature) {
        ServiceLabel::Head(s) => {
            stats.classified_mb += record.dl_mb + record.ul_mb;
            dataset.add(
                Direction::Down,
                s as usize,
                record.commune,
                record.start_hour as usize,
                record.dl_mb,
            );
            dataset.add(
                Direction::Up,
                s as usize,
                record.commune,
                record.start_hour as usize,
                record.ul_mb,
            );
        }
        ServiceLabel::Tail(t) => {
            // Tail sessions are not generated by the session sampler;
            // reaching this arm would indicate a fingerprint collision.
            stats.classified_mb += record.dl_mb + record.ul_mb;
            dataset.add_tail(Direction::Down, t as usize, record.dl_mb);
            dataset.add_tail(Direction::Up, t as usize, record.ul_mb);
        }
        ServiceLabel::Unclassified => {
            stats.unclassified_mb += record.dl_mb + record.ul_mb;
            dataset.add_unclassified(Direction::Down, record.dl_mb);
            dataset.add_unclassified(Direction::Up, record.ul_mb);
        }
    }
}

/// Folds one flushed [`RecordBatch`] into a shard's partial dataset and
/// diagnostics — the streaming engine's per-chunk accumulation step,
/// shared by collection ([`collect_with_options`]) and replay
/// ([`crate::ingest::ingest`], `replay_mode = true`, which additionally
/// counts sessions and stale fixes the way
/// [`replay_record`](crate::trace) does).
///
/// With [`FoldStrategy::Batched`] the batch's signatures are
/// dictionary-encoded once ([`RecordBatch::resolve_codes`]) and the loop
/// accumulates dense columns straight into the dataset's flat tables;
/// with [`FoldStrategy::RowAtATime`] each row is reassembled and folded
/// through the historical per-record functions. Both walk records in
/// batch order and perform identical floating-point additions per
/// record, so the two strategies are bit-identical — pinned by
/// `tests/streaming_ingest.rs`.
pub fn aggregate_batch(
    batch: &mut RecordBatch,
    classifier: &DpiClassifier,
    strategy: FoldStrategy,
    replay_mode: bool,
    dataset: &mut TrafficDataset,
    stats: &mut CollectionStats,
) {
    match strategy {
        FoldStrategy::RowAtATime => {
            for i in 0..batch.len() {
                let record = batch.row(i);
                if replay_mode {
                    crate::trace::replay_record(&record, classifier, dataset, stats);
                } else {
                    aggregate_record(&record, classifier, dataset, stats);
                }
            }
        }
        FoldStrategy::Batched => {
            batch.resolve_codes(classifier);
            let n_head = classifier.n_head();
            let n_services = n_head + classifier.n_tail();
            let interfaces = batch.interfaces();
            let hours = batch.start_hours();
            let dl = batch.dl_mb();
            let ul = batch.ul_mb();
            let communes = batch.communes();
            let stale = batch.stale_uli();
            let codes = batch.codes();
            for i in 0..batch.len() {
                match interfaces[i] {
                    Interface::Gn => stats.gn_records += 1,
                    Interface::S5S8 => stats.s5s8_records += 1,
                }
                if replay_mode {
                    stats.sessions += 1;
                    stats.stale_fixes += stale[i] as u64;
                }
                let code = codes[i];
                if code < n_head {
                    stats.classified_mb += dl[i] + ul[i];
                    dataset.add_classified_both(
                        code as usize,
                        communes[i] as usize,
                        hours[i] as usize,
                        dl[i],
                        ul[i],
                    );
                } else if code < n_services {
                    stats.classified_mb += dl[i] + ul[i];
                    dataset.add_tail_both((code - n_head) as usize, dl[i], ul[i]);
                } else {
                    debug_assert_eq!(code, UNCLASSIFIED_CODE);
                    stats.unclassified_mb += dl[i] + ul[i];
                    dataset.add_unclassified_both(dl[i], ul[i]);
                }
            }
        }
    }
}

/// The owned capture apparatus of a run: radio network, DPI tables,
/// ULI movement directions and the measurement configuration — what
/// [`collect_with_options`] deploys internally, split out so long-running
/// consumers (the live aggregation service) can build it once and stream
/// the synthetic demand through it shard by shard.
///
/// Deterministic in `(model, config, seed)`: the apparatus — and every
/// record a [`SyntheticSource`] derived from it emits — is bit-identical
/// to what a batch collection with the same inputs observes.
pub struct Capture {
    radio: RadioNetwork,
    classifier: DpiClassifier,
    directions: Vec<Option<(f64, f64)>>,
    config: NetsimConfig,
}

impl Capture {
    /// Deploys the apparatus for `model` under `config`; fails on an
    /// invalid configuration instead of panicking.
    pub fn build(
        model: &DemandModel,
        config: &NetsimConfig,
        seed: u64,
    ) -> Result<Capture, String> {
        config.validate()?;
        let (radio, classifier, directions) = build_capture(model, config, seed);
        Ok(Capture { radio, classifier, directions, config: config.clone() })
    }

    /// The DPI stage of this apparatus — the classifier every aggregation
    /// fold over its records must use.
    pub fn classifier(&self) -> &DpiClassifier {
        &self.classifier
    }

    /// The synthetic week observed through this apparatus as a
    /// [`RecordSource`]: one shard per head service, each streaming
    /// `sessions → probe → (faults) → records` — exactly the stream
    /// [`collect_with_options`] aggregates for the same
    /// `(model, config, options, seed)`.
    pub fn source<'a>(
        &'a self,
        model: &'a DemandModel,
        options: &'a CollectOptions,
        seed: u64,
    ) -> SyntheticSource<'a> {
        let probe = Probe::new(&self.radio, UliModel::new(&self.config), &self.classifier)
            .with_movement_directions(self.directions.clone());
        SyntheticSource {
            generator: SessionGenerator::new(model, seed),
            probe,
            injector: FaultInjector::new(&options.faults),
            country: model.country(),
            seed,
            faulted: !options.faults.is_none(),
            bytes: AtomicU64::new(0),
        }
    }
}

/// The synthetic demand model as a [`RecordSource`]: one shard per head
/// service, each streaming `sessions → probe → (faults) → records` from
/// seed-derived RNG streams — exactly the record stream the historical
/// materialized `collect` aggregated, now pushed through bounded chunks.
/// Built via [`Capture::source`].
pub struct SyntheticSource<'a> {
    generator: SessionGenerator<'a>,
    probe: Probe<'a>,
    injector: FaultInjector<'a>,
    country: &'a mobilenet_geo::Country,
    seed: u64,
    faulted: bool,
    /// Logical bytes delivered to sinks so far (`records ×
    /// size_of::<SessionRecord>()`); a synthetic source reads no storage,
    /// but live health reporting still wants a throughput denominator.
    bytes: AtomicU64,
}

impl RecordSource for SyntheticSource<'_> {
    fn shards(&self) -> usize {
        self.generator.shards()
    }

    fn stream_shard(
        &self,
        shard: usize,
        stats: &mut CollectionStats,
        sink: &mut ChunkSink<'_>,
    ) -> Result<(), IngestError> {
        let mut probe_rng = probe_shard_rng(self.seed, shard);
        let mut fault_rng = self.injector.shard_rng(self.seed, shard);
        let mut fault_stats = FaultStats::default();
        let mut delivered = 0u64;
        self.generator.generate_shard(shard, |session| {
            let record = self.probe.observe(session, &mut probe_rng);
            stats.sessions += 1;
            if record.stale_uli {
                stats.stale_fixes += 1;
            }
            if record.commune != session.commune {
                stats.misassigned_sessions += 1;
            }
            if stats.sessions.is_multiple_of(16) {
                // Localization error: distance between the true position
                // and the centroid of the commune the record was binned
                // into is a commune-level proxy; sample the fix-level
                // error instead via the true/recorded commune centroids'
                // scale. We keep the direct definition: distance from the
                // true position to the recorded commune's centroid.
                let recorded = self.country.commune(record.commune);
                stats.push_error_sample(session.position.distance(&recorded.centroid));
            }
            if self.faulted {
                self.injector.apply(&record, &mut fault_rng, &mut fault_stats, |degraded| {
                    delivered += 1;
                    sink.push(degraded);
                });
            } else {
                delivered += 1;
                sink.push(&record);
            }
        });
        stats.faults = fault_stats;
        self.bytes.fetch_add(
            delivered * std::mem::size_of::<SessionRecord>() as u64,
            Ordering::Relaxed,
        );
        Ok(())
    }

    fn bytes_read(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Runs the full measurement pipeline over one week of synthetic demand —
/// the unified entry point behind the historical `collect` /
/// `collect_with_faults` pair.
///
/// `seed` drives session sampling, localization noise and classification
/// loss; runs are fully deterministic in `(model, config, options, seed)`
/// — and, because per-service shards draw from derived RNG streams and
/// merge in shard order, independent of `MOBILENET_THREADS` **and** of
/// `options.chunk_size` (chunking bounds residency, never fold order).
///
/// Fault decisions draw from their own per-shard RNG streams, so
/// [`CollectOptions::default`] (no faults) is **bit-identical** to the
/// historical fault-free path, and any plan is bit-identical at any
/// thread count. Session-level diagnostics (`sessions`, `stale_fixes`,
/// `misassigned_sessions`, `sampled_errors_km`) describe the pre-fault
/// probe stream; the record counters (`gn_records`, `s5s8_records`,
/// volume counters) describe what survived degradation and was
/// aggregated. Peak resident records never exceed
/// `options.chunk_size × workers` ([`IngestStats::resident_budget`]).
pub fn collect_with_options(
    model: &DemandModel,
    config: &NetsimConfig,
    options: &CollectOptions,
    seed: u64,
) -> Result<CollectionOutput, IngestError> {
    options.validate().map_err(IngestError::Config)?;
    let _collect_span = mobilenet_obs::span("collect");
    let country = model.country();
    let catalog = model.catalog();
    let capture_span = mobilenet_obs::span("capture");
    let capture = Capture::build(model, config, seed).map_err(IngestError::Config)?;
    let source = capture.source(model, options, seed);
    drop(capture_span);

    let new_dataset = || {
        TrafficDataset::new(
            country,
            catalog.head().len(),
            catalog.tail_len(),
            model.config().subscriber_share,
        )
    };
    let (mut dataset, stats, ingest) =
        aggregate_source(&source, options.chunk_size, new_dataset, |batch, ds, st| {
            aggregate_batch(batch, capture.classifier(), options.fold, false, ds, st)
        })?;

    // Tail services: their national weekly totals come straight from the
    // demand model (they carry no spatial structure the analyses use).
    model.fill_tail(&mut dataset);

    record_collection_metrics(&stats, source.faulted);

    Ok(CollectionOutput { dataset, stats, ingest })
}

/// Bucket edges (km) of the `netsim.uli_error_km` displacement histogram:
/// sub-cell fixes up to long-range TGV mislocalizations.
const ULI_ERROR_EDGES_KM: [f64; 8] = [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 15.0, 30.0];

/// Publishes a run's [`CollectionStats`] to the observability registry.
///
/// Called once per collection, after the shard-ordered merge, from a
/// single thread — so the `f64` byte counters and the histogram sum
/// accumulate in a fixed order and every recorded value is bit-identical
/// at any thread count. The `netsim.faults.*` group is only emitted for
/// collections run under an active fault plan, so fault-free obs reports
/// keep their historical shape.
fn record_collection_metrics(stats: &CollectionStats, faulted: bool) {
    if !mobilenet_obs::enabled() {
        return;
    }
    mobilenet_obs::add("netsim.sessions", stats.sessions);
    mobilenet_obs::add("netsim.gn_records", stats.gn_records);
    mobilenet_obs::add("netsim.s5s8_records", stats.s5s8_records);
    mobilenet_obs::add("netsim.stale_fixes", stats.stale_fixes);
    mobilenet_obs::add("netsim.misassigned_sessions", stats.misassigned_sessions);
    mobilenet_obs::add_f64("netsim.classified_mb", stats.classified_mb);
    mobilenet_obs::add_f64("netsim.unclassified_mb", stats.unclassified_mb);
    if faulted {
        mobilenet_obs::add("netsim.faults.lost_outage", stats.faults.lost_outage);
        mobilenet_obs::add("netsim.faults.lost_records", stats.faults.lost_records);
        mobilenet_obs::add("netsim.faults.duplicated_records", stats.faults.duplicated_records);
        mobilenet_obs::add("netsim.faults.truncated_records", stats.faults.truncated_records);
        mobilenet_obs::add("netsim.faults.skewed_records", stats.faults.skewed_records);
    }
    for &err in &stats.sampled_errors_km {
        mobilenet_obs::observe("netsim.uli_error_km", err, &ULI_ERROR_EDGES_KM);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::{Country, CountryConfig};
    use mobilenet_traffic::{ServiceCatalog, TrafficConfig};
    use std::sync::Arc;

    fn model() -> DemandModel {
        let country = Arc::new(Country::generate(&CountryConfig::small(), 3));
        let catalog = Arc::new(ServiceCatalog::standard(30));
        DemandModel::new(country, catalog, TrafficConfig::fast(), 11)
    }

    /// Fault-free collection through the unified entry point.
    fn run(m: &DemandModel, cfg: &NetsimConfig, seed: u64) -> CollectionOutput {
        collect_with_options(m, cfg, &CollectOptions::default(), seed).expect("valid config")
    }

    #[test]
    fn classification_rate_matches_configuration() {
        let m = model();
        let out = run(&m, &NetsimConfig::standard(), 5);
        let rate = out.stats.classification_rate();
        assert!((rate - 0.88).abs() < 0.02, "classification rate {rate}");
        assert!(out.stats.sessions > 1000);
        assert!(out.dataset.unclassified(Direction::Down) > 0.0);
    }

    #[test]
    fn median_localization_error_is_near_target() {
        let m = model();
        let out = run(&m, &NetsimConfig::standard(), 5);
        let median = out.stats.median_error_km();
        // Binning to communes adds the commune radius (~2.9 km for the
        // small config) on top of the 3 km ULI error.
        assert!(median > 1.0 && median < 9.0, "median error {median} km");
    }

    #[test]
    fn ideal_pipeline_recovers_expected_totals() {
        let m = model();
        let mut cfg = NetsimConfig::ideal();
        cfg.stations_per_10k_pop = 5.0;
        let out = run(&m, &cfg, 6);
        let expected = m.expected_dataset();
        // National weekly totals converge (classification is still lossy:
        // fast config keeps 88%).
        let rate = m.config().classified_fraction;
        for s in 0..3 {
            let want = expected.national_weekly(Direction::Down, s) * rate;
            let got = out.dataset.national_weekly(Direction::Down, s);
            let err = (got - want).abs() / want;
            assert!(err < 0.15, "service {s}: got {got}, want {want}");
        }
    }

    #[test]
    fn both_interfaces_are_exercised() {
        let m = model();
        let out = run(&m, &NetsimConfig::standard(), 7);
        assert!(out.stats.gn_records > 0, "no 3G records");
        assert!(out.stats.s5s8_records > 0, "no 4G records");
        assert!(out.stats.stale_fixes > 0, "no stale ULI fixes at 12% probability");
    }

    #[test]
    fn localization_noise_causes_misassignment_but_ideal_does_not() {
        let m = model();
        let noisy = run(&m, &NetsimConfig::standard(), 8);
        assert!(
            noisy.stats.misassignment_rate() > 0.1,
            "3 km noise on ~5 km communes must misassign: {}",
            noisy.stats.misassignment_rate()
        );
        // Perfect ULI still misassigns some sessions: base-station Voronoi
        // cells do not coincide with commune boundaries (true of the real
        // network as well), so only the *additional* noise-driven
        // misassignment should disappear.
        let ideal = run(&m, &NetsimConfig::ideal(), 8);
        assert!(
            ideal.stats.misassignment_rate() < noisy.stats.misassignment_rate() * 0.75,
            "ideal {} vs noisy {}",
            ideal.stats.misassignment_rate(),
            noisy.stats.misassignment_rate()
        );
    }

    #[test]
    fn collection_is_deterministic() {
        let m = model();
        let a = run(&m, &NetsimConfig::standard(), 9);
        let b = run(&m, &NetsimConfig::standard(), 9);
        assert_eq!(a.stats.sessions, b.stats.sessions);
        assert_eq!(a.stats.misassigned_sessions, b.stats.misassigned_sessions);
        assert_eq!(
            a.dataset.national_weekly(Direction::Down, 0),
            b.dataset.national_weekly(Direction::Down, 0)
        );
    }

    #[test]
    fn median_error_survives_nan_samples() {
        // A corrupt sample (e.g. a poisoned trace) must not panic the
        // sort; total_cmp orders NaN after every finite value.
        let stats = CollectionStats {
            sampled_errors_km: vec![3.0, f64::NAN, 1.0, 2.0, f64::NAN],
            ..CollectionStats::default()
        };
        let median = stats.median_error_km();
        assert_eq!(median, 3.0, "NaNs sort last; the middle of 5 samples is the finite max");
        let empty = CollectionStats::default();
        assert_eq!(empty.median_error_km(), 0.0);
    }

    #[test]
    fn explicit_no_fault_options_match_the_default_entry_point() {
        // An explicit no-fault `CollectOptions` lands on the same bits as
        // the default options path.
        let m = model();
        let cfg = NetsimConfig::standard();
        let plain = run(&m, &cfg, 12);
        let opts = CollectOptions::with_faults(crate::FaultPlan::none());
        let faultless = collect_with_options(&m, &cfg, &opts, 12).unwrap();
        assert_eq!(plain.dataset.to_csv(), faultless.dataset.to_csv());
        assert_eq!(plain.stats.sessions, faultless.stats.sessions);
        assert_eq!(plain.stats.classified_mb, faultless.stats.classified_mb);
        assert!(!faultless.stats.faults.any());
    }

    #[test]
    fn faulted_collection_degrades_without_panicking() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let clean = run(&m, &cfg, 13);
        let mut plan = crate::FaultPlan::degraded(13);
        plan.loss_prob = 0.10;
        let out =
            collect_with_options(&m, &cfg, &CollectOptions::with_faults(plan), 13).unwrap();
        let f = &out.stats.faults;
        assert!(f.lost_outage > 0, "Gn outage window must drop records: {f:?}");
        assert!(f.lost_records > 0 && f.duplicated_records > 0);
        assert!(f.truncated_records > 0 && f.skewed_records > 0);
        // Sessions are a pre-fault diagnostic; aggregated records shrink.
        assert_eq!(out.stats.sessions, clean.stats.sessions);
        let kept = out.stats.gn_records + out.stats.s5s8_records;
        assert_eq!(kept, out.stats.sessions - f.lost_total() + f.duplicated_records);
        assert!(
            out.dataset.total(mobilenet_traffic::Direction::Down)
                < clean.dataset.total(mobilenet_traffic::Direction::Down),
            "10% loss must outweigh 1% duplication"
        );
    }

    #[test]
    fn faulted_collection_is_deterministic() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let plan = crate::FaultPlan::degraded(5);
        let opts = CollectOptions::with_faults(plan);
        let a = collect_with_options(&m, &cfg, &opts, 14).unwrap();
        let b = collect_with_options(&m, &cfg, &opts, 14).unwrap();
        assert_eq!(a.dataset.to_csv(), b.dataset.to_csv());
        assert_eq!(a.stats.faults, b.stats.faults);
    }

    #[test]
    fn invalid_config_or_plan_is_an_error_not_a_panic() {
        let m = model();
        let mut cfg = NetsimConfig::standard();
        cfg.routing_area_km = -1.0;
        assert!(collect_with_options(&m, &cfg, &CollectOptions::default(), 1).is_err());
        let mut plan = crate::FaultPlan::none();
        plan.loss_prob = 7.0;
        let opts = CollectOptions::with_faults(plan);
        assert!(collect_with_options(&m, &NetsimConfig::standard(), &opts, 1).is_err());
        let opts = CollectOptions::default().chunk_size(0);
        assert!(collect_with_options(&m, &NetsimConfig::standard(), &opts, 1).is_err());
    }

    #[test]
    fn chunked_collection_is_bit_identical_and_bounded() {
        let m = model();
        let cfg = NetsimConfig::standard();
        let reference = run(&m, &cfg, 15);
        for chunk_size in [1usize, 7, 1 << 20] {
            let opts = CollectOptions::default().chunk_size(chunk_size);
            let out = collect_with_options(&m, &cfg, &opts, 15).unwrap();
            assert_eq!(
                reference.dataset.to_csv(),
                out.dataset.to_csv(),
                "chunk_size {chunk_size} diverged"
            );
            assert_eq!(out.ingest.chunk_size, chunk_size);
            assert!(
                out.ingest.peak_resident_records <= out.ingest.resident_budget(),
                "peak {} over budget {}",
                out.ingest.peak_resident_records,
                out.ingest.resident_budget()
            );
            assert_eq!(out.ingest.records, out.stats.gn_records + out.stats.s5s8_records);
            let record_bytes = std::mem::size_of::<SessionRecord>() as u64;
            assert_eq!(
                out.ingest.bytes_read,
                out.ingest.records * record_bytes,
                "synthetic sources account delivered records as bytes"
            );
            assert!(out.ingest.chunks >= 1);
        }
    }

    #[test]
    fn tail_ranking_is_filled() {
        let m = model();
        let out = run(&m, &NetsimConfig::standard(), 10);
        let tail = out.dataset.tail_weekly(Direction::Down);
        assert_eq!(tail.len(), 30);
        assert!(tail.iter().all(|v| *v > 0.0));
        let ranking = out.dataset.full_ranking(Direction::Down);
        assert_eq!(ranking.len(), 50);
    }
}
