//! The radio access layer: base stations and routing/tracking areas.
//!
//! The paper aggregates traffic by "associating each base station to the
//! commune where it is deployed" (§2). This module deploys stations —
//! population-proportional, at least one per commune — and groups them
//! into routing/tracking areas (RA/TA), the granularity at which a stale
//! ULI localizes a user.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobilenet_geo::{CommuneId, Country, Point, SpatialIndex};

use crate::config::NetsimConfig;

/// A deployed base station.
#[derive(Debug, Clone)]
pub struct BaseStation {
    /// Dense station identifier.
    pub id: u32,
    /// Position on the country plane.
    pub position: Point,
    /// The commune hosting the station (the aggregation key).
    pub commune: CommuneId,
    /// The routing/tracking area containing the station.
    pub routing_area: u32,
}

/// The deployed radio network with spatial lookup.
#[derive(Debug)]
pub struct RadioNetwork {
    stations: Vec<BaseStation>,
    index: SpatialIndex,
    /// Centroid of each routing area (for stale-ULI displacement).
    ra_centroids: Vec<Point>,
}

impl RadioNetwork {
    /// Deploys stations over `country` according to `config`.
    pub fn deploy(country: &Country, config: &NetsimConfig, seed: u64) -> Self {
        config.validate().expect("invalid NetsimConfig");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_6469_6f6e_6574); // "radionet"
        let width = country.config().width_km;
        let ra_cols = (width / config.routing_area_km).ceil().max(1.0) as u32;

        let mut stations = Vec::new();
        for commune in country.communes() {
            let n = ((commune.population as f64 / 10_000.0 * config.stations_per_10k_pop)
                .round() as usize)
                .max(1);
            let radius = (commune.area_km2 / std::f64::consts::PI).sqrt();
            for _ in 0..n {
                let r = radius * rng.gen::<f64>().sqrt();
                let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                let position = Point::new(
                    commune.centroid.x + r * theta.cos(),
                    commune.centroid.y + r * theta.sin(),
                );
                let ra = routing_area_of(&position, config.routing_area_km, ra_cols);
                stations.push(BaseStation {
                    id: stations.len() as u32,
                    position,
                    commune: commune.id,
                    routing_area: ra,
                });
            }
        }
        let points: Vec<Point> = stations.iter().map(|s| s.position).collect();
        let index = SpatialIndex::build(&points);

        // Routing-area centroids (mean of member stations).
        let max_ra = stations.iter().map(|s| s.routing_area).max().unwrap_or(0) as usize;
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); max_ra + 1];
        for s in &stations {
            let e = &mut sums[s.routing_area as usize];
            e.0 += s.position.x;
            e.1 += s.position.y;
            e.2 += 1;
        }
        let ra_centroids = sums
            .into_iter()
            .map(|(x, y, n)| {
                if n > 0 {
                    Point::new(x / n as f64, y / n as f64)
                } else {
                    Point::new(0.0, 0.0)
                }
            })
            .collect();

        RadioNetwork { stations, index, ra_centroids }
    }

    /// All deployed stations.
    pub fn stations(&self) -> &[BaseStation] {
        &self.stations
    }

    /// The station nearest to a (possibly noisy) position fix.
    pub fn serving_station(&self, fix: &Point) -> &BaseStation {
        &self.stations[self.index.nearest(fix)]
    }

    /// The commune a position fix aggregates into: nearest station's
    /// hosting commune (the paper's ULI → station → commune chain).
    pub fn commune_of_fix(&self, fix: &Point) -> CommuneId {
        self.serving_station(fix).commune
    }

    /// Centroid of a routing area.
    pub fn routing_area_centroid(&self, ra: u32) -> Point {
        self.ra_centroids[ra as usize]
    }

    /// Number of distinct routing areas containing stations.
    pub fn routing_area_count(&self) -> usize {
        let mut ras: Vec<u32> = self.stations.iter().map(|s| s.routing_area).collect();
        ras.sort_unstable();
        ras.dedup();
        ras.len()
    }
}

/// Grid-cell routing-area id of a position.
fn routing_area_of(p: &Point, cell_km: f64, cols: u32) -> u32 {
    let cx = (p.x / cell_km).floor().max(0.0) as u32;
    let cy = (p.y / cell_km).floor().max(0.0) as u32;
    cy * cols + cx.min(cols - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::CountryConfig;

    fn network() -> (Country, RadioNetwork) {
        let country = Country::generate(&CountryConfig::small(), 4);
        let net = RadioNetwork::deploy(&country, &NetsimConfig::standard(), 9);
        (country, net)
    }

    #[test]
    fn every_commune_hosts_a_station() {
        let (country, net) = network();
        let mut covered = vec![false; country.communes().len()];
        for s in net.stations() {
            covered[s.commune.index()] = true;
        }
        assert!(covered.iter().all(|&c| c), "some commune has no station");
        assert!(net.stations().len() >= country.communes().len());
    }

    #[test]
    fn station_density_tracks_population() {
        let (country, net) = network();
        let mut per_commune = vec![0usize; country.communes().len()];
        for s in net.stations() {
            per_commune[s.commune.index()] += 1;
        }
        let densest = country
            .communes()
            .iter()
            .max_by_key(|c| c.population)
            .unwrap();
        let sparsest = country
            .communes()
            .iter()
            .min_by_key(|c| c.population)
            .unwrap();
        assert!(per_commune[densest.id.index()] > per_commune[sparsest.id.index()]);
    }

    #[test]
    fn stations_sit_inside_their_commune_disc() {
        let (country, net) = network();
        for s in net.stations().iter().take(500) {
            let c = country.commune(s.commune);
            let max_r = (c.area_km2 / std::f64::consts::PI).sqrt() + 1e-9;
            assert!(s.position.distance(&c.centroid) <= max_r);
        }
    }

    #[test]
    fn exact_fix_maps_to_host_commune_mostly() {
        // A fix exactly at a commune centroid should usually map back to
        // that commune (stations of neighbouring communes can be closer
        // only near borders).
        let (country, net) = network();
        let mut hits = 0;
        let total = 200;
        for c in country.communes().iter().take(total) {
            if net.commune_of_fix(&c.centroid) == c.id {
                hits += 1;
            }
        }
        assert!(hits as f64 / total as f64 > 0.6, "only {hits}/{total} self-hits");
    }

    #[test]
    fn routing_areas_partition_the_stations() {
        let (_, net) = network();
        let n = net.routing_area_count();
        // 160 km plane with 40 km cells → at most ~16 populated areas.
        assert!((4..=32).contains(&n), "{n} routing areas");
        for s in net.stations().iter().take(100) {
            let centroid = net.routing_area_centroid(s.routing_area);
            assert!(s.position.distance(&centroid) < 80.0);
        }
    }

    #[test]
    fn deployment_is_deterministic() {
        let country = Country::generate(&CountryConfig::small(), 4);
        let a = RadioNetwork::deploy(&country, &NetsimConfig::standard(), 9);
        let b = RadioNetwork::deploy(&country, &NetsimConfig::standard(), 9);
        assert_eq!(a.stations().len(), b.stations().len());
        assert_eq!(a.stations()[5].position, b.stations()[5].position);
    }
}
