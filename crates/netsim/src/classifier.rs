//! The DPI classification stage.
//!
//! The operator detects "the specific mobile service associated to each IP
//! session via Deep Packet Inspection and multiple fingerprinting
//! techniques", classifying **88%** of the traffic (§2). The synthetic
//! counterpart: every service (head or tail) owns a set of wire
//! fingerprints; sessions are stamped with one of their service's
//! fingerprints, and a configurable fraction of sessions instead carries
//! an *opaque* signature the table cannot invert (encrypted/unknown
//! protocols), reproducing the classification loss.

use rand::rngs::StdRng;
use rand::Rng;

use crate::records::FlowSignature;

/// Outcome of classifying one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLabel {
    /// Recognized head service (catalog index).
    Head(u16),
    /// Recognized tail service (tail rank).
    Tail(u16),
    /// The signature matched no fingerprint.
    Unclassified,
}

/// Dictionary code of a signature no fingerprint matched. Codes below
/// `n_head` name head services, codes in `n_head..n_head + n_tail` name
/// tail services (by rank), and this sentinel names the unclassified rest
/// — the encoding [`DpiClassifier::classify_batch`] emits and the batched
/// aggregation fold branches on.
pub const UNCLASSIFIED_CODE: u32 = u32::MAX;

/// Fingerprint-table classifier.
///
/// The table is an open-addressing hash map specialized to the hot path:
/// fingerprints are already SplitMix64-finalized (well mixed), so the
/// probe sequence starts at `signature & mask` and walks linearly —
/// one L1-resident lookup per record instead of a SipHash `HashMap` probe.
/// Values are small dictionary codes (see [`UNCLASSIFIED_CODE`]); an
/// empty slot doubles as the unclassified answer.
#[derive(Debug, Clone)]
pub struct DpiClassifier {
    /// Slot keys (raw fingerprint bits); meaningful only where the
    /// matching `codes` slot is occupied.
    keys: Vec<u64>,
    /// Slot values: a service code, or [`UNCLASSIFIED_CODE`] for empty.
    codes: Vec<u32>,
    /// `capacity - 1`; capacity is a power of two ≥ 2 × entries.
    mask: usize,
    /// Occupied slots.
    entries: usize,
    n_head: u32,
    n_tail: u32,
    /// Fraction of sessions stamped with an opaque signature at the wire.
    opaque_fraction: f64,
    fingerprints_per_service: u32,
}

/// Deterministic fingerprint generator (SplitMix64).
fn fingerprint(service_key: u64, variant: u32) -> FlowSignature {
    let mut x = service_key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(variant as u64 + 1);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    FlowSignature(x ^ (x >> 31))
}

/// Key-space separation between head and tail services.
const TAIL_KEY_BASE: u64 = 1 << 32;
/// Marker key for opaque signatures (never in the table).
const OPAQUE_KEY: u64 = u64::MAX;

impl DpiClassifier {
    /// Builds the fingerprint table for `n_head` head services and
    /// `n_tail` tail services; `classified_fraction` of sessions will be
    /// recognizable (the rest are stamped opaque at the wire).
    pub fn new(n_head: usize, n_tail: usize, classified_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&classified_fraction));
        let fingerprints_per_service = 4;
        let max_entries = (n_head + n_tail) * fingerprints_per_service as usize;
        let capacity = (max_entries * 2).max(8).next_power_of_two();
        let mut classifier = DpiClassifier {
            keys: vec![0; capacity],
            codes: vec![UNCLASSIFIED_CODE; capacity],
            mask: capacity - 1,
            entries: 0,
            n_head: n_head as u32,
            n_tail: n_tail as u32,
            opaque_fraction: 1.0 - classified_fraction,
            fingerprints_per_service,
        };
        for s in 0..n_head {
            for v in 0..fingerprints_per_service {
                classifier.insert(fingerprint(s as u64, v).0, s as u32);
            }
        }
        for t in 0..n_tail {
            for v in 0..fingerprints_per_service {
                classifier
                    .insert(fingerprint(TAIL_KEY_BASE + t as u64, v).0, n_head as u32 + t as u32);
            }
        }
        classifier
    }

    /// Inserts `(key, code)`, overwriting an existing key's code (the
    /// semantics the historical `HashMap` table had on fingerprint
    /// collisions).
    fn insert(&mut self, key: u64, code: u32) {
        debug_assert!(code != UNCLASSIFIED_CODE);
        let mut i = (key as usize) & self.mask;
        loop {
            if self.codes[i] == UNCLASSIFIED_CODE {
                self.keys[i] = key;
                self.codes[i] = code;
                self.entries += 1;
                return;
            }
            if self.keys[i] == key {
                self.codes[i] = code;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks a raw signature up to its dictionary code
    /// ([`UNCLASSIFIED_CODE`] when no fingerprint matches).
    #[inline]
    pub fn code_of(&self, signature: u64) -> u32 {
        let mut i = (signature as usize) & self.mask;
        loop {
            let code = self.codes[i];
            // An empty slot (code == UNCLASSIFIED_CODE, key still 0)
            // terminates the probe with the unclassified answer, which is
            // exactly what a missing key means.
            if self.keys[i] == signature || code == UNCLASSIFIED_CODE {
                return code;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Dictionary-encodes a whole signature column into `codes` — the
    /// once-per-batch resolution the columnar fold runs on. Clears and
    /// refills `codes` in place (allocation-free once its capacity has
    /// warmed to the batch length).
    pub fn classify_batch(&self, signatures: &[u64], codes: &mut Vec<u32>) {
        codes.clear();
        codes.extend(signatures.iter().map(|&sig| self.code_of(sig)));
    }

    /// Expands a dictionary code back into a [`ServiceLabel`].
    #[inline]
    pub fn label_of_code(&self, code: u32) -> ServiceLabel {
        if code < self.n_head {
            ServiceLabel::Head(code as u16)
        } else if code < self.n_head + self.n_tail {
            ServiceLabel::Tail((code - self.n_head) as u16)
        } else {
            ServiceLabel::Unclassified
        }
    }

    /// Number of head services (codes `0..n_head` are head codes).
    pub fn n_head(&self) -> u32 {
        self.n_head
    }

    /// Number of tail services (codes `n_head..n_head + n_tail`).
    pub fn n_tail(&self) -> u32 {
        self.n_tail
    }

    /// Stamps a session of a head service with a wire signature: one of the
    /// service's fingerprints, or an opaque signature for the
    /// DPI-invisible share.
    pub fn stamp_head(&self, service: u16, rng: &mut StdRng) -> FlowSignature {
        self.stamp(service as u64, rng)
    }

    /// Stamps a session of a tail service.
    pub fn stamp_tail(&self, tail_rank: u16, rng: &mut StdRng) -> FlowSignature {
        self.stamp(TAIL_KEY_BASE + tail_rank as u64, rng)
    }

    fn stamp(&self, key: u64, rng: &mut StdRng) -> FlowSignature {
        if rng.gen::<f64>() < self.opaque_fraction {
            // Opaque: derived from a key outside the table, plus entropy so
            // opaque signatures do not collide with each other either.
            let salt: u32 = rng.gen();
            fingerprint(OPAQUE_KEY ^ (salt as u64), 0)
        } else {
            let variant = rng.gen_range(0..self.fingerprints_per_service);
            fingerprint(key, variant)
        }
    }

    /// Inverts a signature to a service label.
    #[inline]
    pub fn classify(&self, signature: FlowSignature) -> ServiceLabel {
        self.label_of_code(self.code_of(signature.0))
    }

    /// Number of fingerprints in the table.
    pub fn table_len(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classified_sessions_round_trip() {
        let c = DpiClassifier::new(20, 50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for s in 0..20u16 {
            for _ in 0..10 {
                let sig = c.stamp_head(s, &mut rng);
                assert_eq!(c.classify(sig), ServiceLabel::Head(s));
            }
        }
        for t in 0..50u16 {
            let sig = c.stamp_tail(t, &mut rng);
            assert_eq!(c.classify(sig), ServiceLabel::Tail(t));
        }
    }

    #[test]
    fn opaque_fraction_is_respected() {
        let c = DpiClassifier::new(20, 0, 0.88);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mut unclassified = 0;
        for i in 0..n {
            let sig = c.stamp_head((i % 20) as u16, &mut rng);
            if c.classify(sig) == ServiceLabel::Unclassified {
                unclassified += 1;
            }
        }
        let rate = unclassified as f64 / n as f64;
        assert!((rate - 0.12).abs() < 0.01, "unclassified rate {rate}");
    }

    #[test]
    fn head_and_tail_keyspaces_do_not_collide() {
        let c = DpiClassifier::new(200, 500, 1.0);
        // 700 services × 4 fingerprints, all distinct.
        assert_eq!(c.table_len(), 700 * 4);
    }

    #[test]
    fn opaque_signatures_never_classify() {
        let c = DpiClassifier::new(20, 20, 0.0); // everything opaque
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let sig = c.stamp_head(5, &mut rng);
            assert_eq!(c.classify(sig), ServiceLabel::Unclassified);
        }
    }

    #[test]
    fn unknown_signature_is_unclassified() {
        let c = DpiClassifier::new(5, 5, 1.0);
        assert_eq!(c.classify(FlowSignature(0xDEAD_BEEF)), ServiceLabel::Unclassified);
    }

    #[test]
    fn batch_codes_agree_with_scalar_classification() {
        let c = DpiClassifier::new(20, 30, 0.88);
        let mut rng = StdRng::seed_from_u64(9);
        let mut signatures: Vec<u64> = (0..2000)
            .map(|i| {
                if i % 3 == 0 {
                    c.stamp_tail((i % 30) as u16, &mut rng).0
                } else {
                    c.stamp_head((i % 20) as u16, &mut rng).0
                }
            })
            .collect();
        signatures.push(0); // empty-slot key must classify as unknown
        signatures.push(0xDEAD_BEEF);
        let mut codes = Vec::new();
        c.classify_batch(&signatures, &mut codes);
        assert_eq!(codes.len(), signatures.len());
        let mut seen_head = false;
        let mut seen_tail = false;
        let mut seen_opaque = false;
        for (&sig, &code) in signatures.iter().zip(codes.iter()) {
            assert_eq!(c.label_of_code(code), c.classify(FlowSignature(sig)));
            match c.label_of_code(code) {
                ServiceLabel::Head(_) => seen_head = true,
                ServiceLabel::Tail(_) => seen_tail = true,
                ServiceLabel::Unclassified => seen_opaque = true,
            }
        }
        assert!(seen_head && seen_tail && seen_opaque);
        // Refilling reuses the column without growing it.
        let cap = codes.capacity();
        c.classify_batch(&signatures, &mut codes);
        assert_eq!(codes.capacity(), cap);
    }
}
