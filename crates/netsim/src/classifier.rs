//! The DPI classification stage.
//!
//! The operator detects "the specific mobile service associated to each IP
//! session via Deep Packet Inspection and multiple fingerprinting
//! techniques", classifying **88%** of the traffic (§2). The synthetic
//! counterpart: every service (head or tail) owns a set of wire
//! fingerprints; sessions are stamped with one of their service's
//! fingerprints, and a configurable fraction of sessions instead carries
//! an *opaque* signature the table cannot invert (encrypted/unknown
//! protocols), reproducing the classification loss.

use rand::rngs::StdRng;
use rand::Rng;

use std::collections::HashMap;

use crate::records::FlowSignature;

/// Outcome of classifying one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLabel {
    /// Recognized head service (catalog index).
    Head(u16),
    /// Recognized tail service (tail rank).
    Tail(u16),
    /// The signature matched no fingerprint.
    Unclassified,
}

/// Fingerprint-table classifier.
#[derive(Debug, Clone)]
pub struct DpiClassifier {
    table: HashMap<FlowSignature, ServiceLabel>,
    /// Fraction of sessions stamped with an opaque signature at the wire.
    opaque_fraction: f64,
    fingerprints_per_service: u32,
}

/// Deterministic fingerprint generator (SplitMix64).
fn fingerprint(service_key: u64, variant: u32) -> FlowSignature {
    let mut x = service_key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(variant as u64 + 1);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    FlowSignature(x ^ (x >> 31))
}

/// Key-space separation between head and tail services.
const TAIL_KEY_BASE: u64 = 1 << 32;
/// Marker key for opaque signatures (never in the table).
const OPAQUE_KEY: u64 = u64::MAX;

impl DpiClassifier {
    /// Builds the fingerprint table for `n_head` head services and
    /// `n_tail` tail services; `classified_fraction` of sessions will be
    /// recognizable (the rest are stamped opaque at the wire).
    pub fn new(n_head: usize, n_tail: usize, classified_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&classified_fraction));
        let fingerprints_per_service = 4;
        let mut table = HashMap::new();
        for s in 0..n_head {
            for v in 0..fingerprints_per_service {
                table.insert(fingerprint(s as u64, v), ServiceLabel::Head(s as u16));
            }
        }
        for t in 0..n_tail {
            for v in 0..fingerprints_per_service {
                table.insert(
                    fingerprint(TAIL_KEY_BASE + t as u64, v),
                    ServiceLabel::Tail(t as u16),
                );
            }
        }
        DpiClassifier {
            table,
            opaque_fraction: 1.0 - classified_fraction,
            fingerprints_per_service,
        }
    }

    /// Stamps a session of a head service with a wire signature: one of the
    /// service's fingerprints, or an opaque signature for the
    /// DPI-invisible share.
    pub fn stamp_head(&self, service: u16, rng: &mut StdRng) -> FlowSignature {
        self.stamp(service as u64, rng)
    }

    /// Stamps a session of a tail service.
    pub fn stamp_tail(&self, tail_rank: u16, rng: &mut StdRng) -> FlowSignature {
        self.stamp(TAIL_KEY_BASE + tail_rank as u64, rng)
    }

    fn stamp(&self, key: u64, rng: &mut StdRng) -> FlowSignature {
        if rng.gen::<f64>() < self.opaque_fraction {
            // Opaque: derived from a key outside the table, plus entropy so
            // opaque signatures do not collide with each other either.
            let salt: u32 = rng.gen();
            fingerprint(OPAQUE_KEY ^ (salt as u64), 0)
        } else {
            let variant = rng.gen_range(0..self.fingerprints_per_service);
            fingerprint(key, variant)
        }
    }

    /// Inverts a signature to a service label.
    pub fn classify(&self, signature: FlowSignature) -> ServiceLabel {
        self.table.get(&signature).copied().unwrap_or(ServiceLabel::Unclassified)
    }

    /// Number of fingerprints in the table.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classified_sessions_round_trip() {
        let c = DpiClassifier::new(20, 50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for s in 0..20u16 {
            for _ in 0..10 {
                let sig = c.stamp_head(s, &mut rng);
                assert_eq!(c.classify(sig), ServiceLabel::Head(s));
            }
        }
        for t in 0..50u16 {
            let sig = c.stamp_tail(t, &mut rng);
            assert_eq!(c.classify(sig), ServiceLabel::Tail(t));
        }
    }

    #[test]
    fn opaque_fraction_is_respected() {
        let c = DpiClassifier::new(20, 0, 0.88);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mut unclassified = 0;
        for i in 0..n {
            let sig = c.stamp_head((i % 20) as u16, &mut rng);
            if c.classify(sig) == ServiceLabel::Unclassified {
                unclassified += 1;
            }
        }
        let rate = unclassified as f64 / n as f64;
        assert!((rate - 0.12).abs() < 0.01, "unclassified rate {rate}");
    }

    #[test]
    fn head_and_tail_keyspaces_do_not_collide() {
        let c = DpiClassifier::new(200, 500, 1.0);
        // 700 services × 4 fingerprints, all distinct.
        assert_eq!(c.table_len(), 700 * 4);
    }

    #[test]
    fn opaque_signatures_never_classify() {
        let c = DpiClassifier::new(20, 20, 0.0); // everything opaque
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let sig = c.stamp_head(5, &mut rng);
            assert_eq!(c.classify(sig), ServiceLabel::Unclassified);
        }
    }

    #[test]
    fn unknown_signature_is_unclassified() {
        let c = DpiClassifier::new(5, 5, 1.0);
        assert_eq!(c.classify(FlowSignature(0xDEAD_BEEF)), ServiceLabel::Unclassified);
    }
}
