//! Streaming bounded-memory ingestion: the [`RecordSource`] abstraction
//! and the chunked sharded aggregation engine.
//!
//! The paper's substrate is a week of nationwide packet-core capture;
//! follow-up datasets (NetMob23, multi-week national studies) are an
//! order of magnitude larger than anything a materialize-then-aggregate
//! path can hold. This module makes ingestion memory-bounded by a *chunk
//! budget* instead of the input size:
//!
//! * a [`RecordSource`] yields each shard's [`SessionRecord`]s **in
//!   order** through a bounded [`ChunkSink`] — synthetic demand shards
//!   ([`collect_with_options`](crate::pipeline::collect_with_options)),
//!   trace files via any [`BufRead`] ([`TraceSource`]), or in-memory
//!   slices ([`SliceSource`]);
//! * the engine drives `mobilenet-par` workers over the shards, folds
//!   each chunk into that shard's partial
//!   [`TrafficDataset`] + [`CollectionStats`], and merges partials in
//!   deterministic shard order.
//!
//! # Determinism contract
//!
//! Chunking only bounds *how many records are resident*, never the order
//! they are folded: within a shard, records are aggregated in exactly the
//! generation (or file) order, and shard partials merge in shard order.
//! The streamed result is therefore **bit-identical** to the historical
//! materialized path at any thread count and any chunk size — including
//! `chunk_size = 1` and `chunk_size ≥ input`.
//!
//! # Memory bound
//!
//! Each worker owns at most one chunk buffer of `chunk_size` records at a
//! time, so peak resident records never exceed `chunk_size × workers`.
//! The engine accounts for residency at chunk granularity (the
//! `netsim.ingest.peak_resident_records` gauge samples the high-water
//! mark at flush points); the bound itself holds by construction.

use std::io::BufRead;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mobilenet_traffic::{DatasetError, DemandModel, TrafficDataset};

use crate::faults::FaultPlan;
use crate::pipeline::CollectionStats;
use crate::records::{RecordBatch, SessionRecord};
use crate::trace::{record_from_line, TraceError, TRACE_HEADER};

/// Default records-per-chunk budget of the streaming engine: small enough
/// that dozens of workers stay in cache-friendly territory, large enough
/// to amortize per-chunk accounting to noise.
pub const DEFAULT_CHUNK_SIZE: usize = 8192;

/// How the engine folds a flushed [`RecordBatch`] into the shard partial.
///
/// Both strategies fold records in exactly the same order and perform the
/// same floating-point additions per record, so their outputs are
/// **bit-identical**; the batched path only removes per-record overhead
/// (hash probing, row reconstruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldStrategy {
    /// Columnar fold: dictionary-encode the batch's signatures once
    /// through the DPI table, then accumulate dense columns in a tight
    /// loop. The default.
    #[default]
    Batched,
    /// Reassemble each row and fold it through the historical per-record
    /// path — the reference implementation the batched fold is pinned
    /// against.
    RowAtATime,
}

/// Bucket edges of the `netsim.ingest.batch_records` histogram: batch
/// (= flushed chunk) sizes from single-record worst cases up past the
/// default chunk budget.
const BATCH_RECORDS_EDGES: [f64; 8] =
    [1.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 8192.0, 32768.0];

/// Options of one collection/ingestion run — the single knob set behind
/// [`collect_with_options`](crate::pipeline::collect_with_options),
/// [`observe_with_options`](crate::trace::observe_with_options) and
/// [`ingest`].
///
/// `#[non_exhaustive]`: construct via [`CollectOptions::default`] (or
/// [`CollectOptions::with_faults`]) and the builder-style setters so new
/// knobs stay non-breaking.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CollectOptions {
    /// Capture-path fault plan ([`FaultPlan::none`] reproduces the
    /// historical benign apparatus bit for bit).
    pub faults: FaultPlan,
    /// Records-per-chunk budget of the streaming engine; peak resident
    /// records are bounded by `chunk_size × workers`.
    pub chunk_size: usize,
    /// How flushed batches fold into shard partials (bit-identical either
    /// way; [`FoldStrategy::Batched`] is the fast default).
    pub fold: FoldStrategy,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            faults: FaultPlan::none(),
            chunk_size: DEFAULT_CHUNK_SIZE,
            fold: FoldStrategy::default(),
        }
    }
}

impl CollectOptions {
    /// Default options with the given fault plan.
    pub fn with_faults(faults: FaultPlan) -> Self {
        CollectOptions { faults, ..CollectOptions::default() }
    }

    /// Sets the records-per-chunk budget.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Sets the batch fold strategy.
    pub fn fold_strategy(mut self, fold: FoldStrategy) -> Self {
        self.fold = fold;
        self
    }

    /// Checks the options for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_size == 0 {
            return Err("chunk_size must be at least 1 record".into());
        }
        self.faults.validate()
    }
}

/// Why a streaming ingestion run failed.
#[derive(Debug)]
pub enum IngestError {
    /// Reading the underlying byte stream failed.
    Io(std::io::Error),
    /// A trace row failed to parse (strict sources only).
    Trace(TraceError),
    /// The source or options configuration is invalid.
    Config(String),
    /// Shard partials (or merge inputs) disagreed on dataset shape.
    Shape(DatasetError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o error: {e}"),
            IngestError::Trace(e) => write!(f, "{e}"),
            IngestError::Config(msg) => write!(f, "invalid ingest configuration: {msg}"),
            IngestError::Shape(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Trace(e) => Some(e),
            IngestError::Shape(e) => Some(e),
            IngestError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<TraceError> for IngestError {
    fn from(e: TraceError) -> Self {
        IngestError::Trace(e)
    }
}

impl From<DatasetError> for IngestError {
    fn from(e: DatasetError) -> Self {
        IngestError::Shape(e)
    }
}

/// What the streaming engine did: chunk, record and byte accounting of
/// one ingestion run.
///
/// `#[non_exhaustive]`: engines construct it internally; downstream code
/// reads fields (or starts from [`IngestStats::default`]) so new
/// accounting fields stay non-breaking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestStats {
    /// Chunks flushed through the engine (deterministic: per-shard chunk
    /// boundaries depend only on the record stream and `chunk_size`).
    pub chunks: u64,
    /// Records aggregated (post-fault, i.e. what the folds saw).
    pub records: u64,
    /// High-water mark of records resident in chunk buffers, sampled at
    /// flush points. Always ≤ `chunk_size × workers`, by construction;
    /// scheduling-dependent (more workers → more concurrent residency).
    pub peak_resident_records: u64,
    /// Bytes the source delivered: storage bytes for trace sources,
    /// `records × size_of::<SessionRecord>()` logical bytes for synthetic
    /// and in-memory sources — every source reports a non-zero throughput
    /// denominator once it has streamed records.
    pub bytes_read: u64,
    /// The records-per-chunk budget the run used.
    pub chunk_size: usize,
    /// Workers the engine drove (`min(threads, shards)`).
    pub workers: usize,
    /// Ingestion cycles folded through the engine — 1 for a batch run,
    /// the number of weeks folded into the 168-hour ring for a
    /// multi-week live run ([`IngestMeter::note_cycle`]).
    pub cycles: u64,
}

impl IngestStats {
    /// The resident-record bound of this run: `chunk_size × workers`.
    pub fn resident_budget(&self) -> u64 {
        (self.chunk_size as u64).saturating_mul(self.workers as u64)
    }
}

/// Shared chunk/record/residency accounting of one engine run.
#[derive(Debug, Default)]
struct IngestLedger {
    chunks: AtomicU64,
    records: AtomicU64,
    resident: AtomicU64,
    peak_resident: AtomicU64,
    cycles: AtomicU64,
}

/// The bounded buffer a [`RecordSource`] pushes one shard's records into.
///
/// Buffers records **columnar** — one [`RecordBatch`] per sink, filled a
/// record at a time and handed to the engine's fold whole. Holds at most
/// `chunk_size` records; a full batch is flushed before the next push, so
/// a source never materializes more than one chunk per worker no matter
/// how large the shard is, and a flushed batch's columns keep their
/// capacity, so a warmed sink never touches the heap again.
pub struct ChunkSink<'a> {
    batch: RecordBatch,
    chunk_size: usize,
    ledger: &'a IngestLedger,
    consume: &'a mut dyn FnMut(&mut RecordBatch),
}

impl<'a> ChunkSink<'a> {
    fn new(
        chunk_size: usize,
        ledger: &'a IngestLedger,
        consume: &'a mut dyn FnMut(&mut RecordBatch),
    ) -> Self {
        // Cap the pre-allocation: `chunk_size ≥ input` is a legitimate
        // way to ask for one chunk per shard without reserving the moon.
        let cap = chunk_size.min(DEFAULT_CHUNK_SIZE);
        ChunkSink { batch: RecordBatch::with_capacity(cap), chunk_size, ledger, consume }
    }

    /// Appends one record to the batch columns; flushes the chunk to the
    /// aggregation fold when the budget is reached.
    #[inline]
    pub fn push(&mut self, record: &SessionRecord) {
        self.batch.push(record);
        if self.batch.len() >= self.chunk_size {
            self.flush();
        }
    }

    /// Flushes the partial batch (no-op when empty). Called by the engine
    /// after the source finishes a shard.
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let n = self.batch.len() as u64;
        // Residency is accounted at flush granularity: the chunk is
        // counted resident while the fold walks it. The true peak
        // (including buffers still filling) is bounded by
        // `chunk_size × workers` by construction.
        let now = self.ledger.resident.fetch_add(n, Ordering::SeqCst) + n;
        self.ledger.peak_resident.fetch_max(now, Ordering::SeqCst);
        self.ledger.chunks.fetch_add(1, Ordering::Relaxed);
        self.ledger.records.fetch_add(n, Ordering::Relaxed);
        // Per-batch observability: one count per flush plus the size
        // histogram. Flush boundaries depend only on the record stream
        // and `chunk_size`, and the histogram sum adds exact small
        // integers, so both are thread-invariant and stay inside the
        // deterministic count fingerprint.
        if mobilenet_obs::enabled() {
            mobilenet_obs::add("netsim.ingest.batches", 1);
            mobilenet_obs::observe("netsim.ingest.batch_records", n as f64, &BATCH_RECORDS_EDGES);
        }
        (self.consume)(&mut self.batch);
        self.batch.clear();
        self.ledger.resident.fetch_sub(n, Ordering::SeqCst);
    }
}

/// A source of session records, split into independently streamable
/// shards whose partial aggregates merge in shard order.
///
/// Implementations must satisfy the determinism contract: shard `s`'s
/// record stream depends only on the source's own state — never on which
/// worker runs it, in what order, or how the stream is chunked.
pub trait RecordSource: Sync {
    /// Number of shards. Shard indices `0..shards()` are streamed
    /// (possibly concurrently, at most once each) and merged in index
    /// order.
    fn shards(&self) -> usize;

    /// Streams shard `shard`'s records, in order, into `sink`, folding
    /// source-side diagnostics (sessions observed, fault accounting,
    /// skipped lines, …) into `stats`.
    fn stream_shard(
        &self,
        shard: usize,
        stats: &mut CollectionStats,
        sink: &mut ChunkSink<'_>,
    ) -> Result<(), IngestError>;

    /// Bytes this source has delivered so far (for
    /// `netsim.ingest.bytes_read`): storage bytes read for file-backed
    /// sources, logical record bytes
    /// (`records × size_of::<SessionRecord>()`) for synthetic and
    /// in-memory sources. The default is 0 only for sources with nothing
    /// streamed yet.
    fn bytes_read(&self) -> u64 {
        0
    }
}

/// Shared chunk/record/residency accounting of one *logical* ingestion
/// run driven shard-by-shard through [`stream_shard_chunked`] — the
/// external counterpart of the ledger [`ingest`] threads through its
/// [`ChunkSink`]s internally.
///
/// One meter spans every shard of a run (including shards streamed
/// concurrently from different workers), so `peak_resident_records` is
/// sampled globally exactly like the batch engine's.
#[derive(Debug, Default)]
pub struct IngestMeter {
    ledger: IngestLedger,
}

impl IngestMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        IngestMeter::default()
    }

    /// Snapshot of the accounting so far as an [`IngestStats`].
    ///
    /// `chunk_size`/`workers` describe the run configuration and
    /// `bytes_read` comes from the source ([`RecordSource::bytes_read`]);
    /// the meter itself tracks chunks, records, peak residency and
    /// cycles.
    pub fn stats(&self, chunk_size: usize, workers: usize, bytes_read: u64) -> IngestStats {
        IngestStats {
            chunks: self.ledger.chunks.load(Ordering::Relaxed),
            records: self.ledger.records.load(Ordering::Relaxed),
            peak_resident_records: self.ledger.peak_resident.load(Ordering::SeqCst),
            bytes_read,
            chunk_size,
            workers,
            cycles: self.ledger.cycles.load(Ordering::Relaxed),
        }
    }

    /// Marks the start of one ingestion cycle — a driver folding several
    /// weeks through the same meter (the live week-ring) calls this once
    /// per week, so `IngestStats::cycles` counts weeks folded while every
    /// other counter stays cumulative across the whole run.
    pub fn note_cycle(&self) {
        self.ledger.cycles.fetch_add(1, Ordering::Relaxed);
    }
}

/// Streams **one shard** of `source` through a bounded [`ChunkSink`],
/// handing each flushed [`RecordBatch`] to `consume` — the building block
/// for drivers that schedule shards themselves (the live aggregation
/// service) instead of letting [`ingest`] fan out over the ambient pool.
///
/// Determinism: batches arrive in stream order with flush boundaries
/// decided only by the record stream and `chunk_size`, so folding them in
/// arrival order reproduces the batch engine's per-shard partial bit for
/// bit. At most `chunk_size` records of this shard are resident at any
/// point.
pub fn stream_shard_chunked<S, F>(
    source: &S,
    shard: usize,
    chunk_size: usize,
    meter: &IngestMeter,
    stats: &mut CollectionStats,
    mut consume: F,
) -> Result<(), IngestError>
where
    S: RecordSource + ?Sized,
    F: FnMut(&mut RecordBatch),
{
    if chunk_size == 0 {
        return Err(IngestError::Config("chunk_size must be at least 1 record".into()));
    }
    let mut consume_dyn = |batch: &mut RecordBatch| consume(batch);
    let mut sink = ChunkSink::new(chunk_size, &meter.ledger, &mut consume_dyn);
    let streamed = source.stream_shard(shard, stats, &mut sink);
    sink.flush();
    streamed
}

/// Runs the chunked sharded aggregation: streams every shard of `source`
/// through bounded [`ChunkSink`]s on the ambient `mobilenet-par` pool,
/// folds each flushed [`RecordBatch`] into the shard's partial via
/// `fold`, and merges partials in shard order.
///
/// Records the `shards` / `merge` obs spans (nesting under the caller's
/// active span) and the `netsim.ingest.*` counters.
pub(crate) fn aggregate_source<S, N, F>(
    source: &S,
    chunk_size: usize,
    new_dataset: N,
    fold: F,
) -> Result<(TrafficDataset, CollectionStats, IngestStats), IngestError>
where
    S: RecordSource,
    N: Fn() -> TrafficDataset + Sync,
    F: Fn(&mut RecordBatch, &mut TrafficDataset, &mut CollectionStats) + Sync,
{
    if chunk_size == 0 {
        return Err(IngestError::Config("chunk_size must be at least 1 record".into()));
    }
    let ledger = IngestLedger::default();
    let shards = source.shards();
    let workers = mobilenet_par::current_threads().min(shards.max(1)).max(1);

    let shards_span = mobilenet_obs::span("shards");
    let partials = mobilenet_par::par_map_collect(shards, |shard| {
        let mut dataset = new_dataset();
        let mut agg = CollectionStats::default();
        let mut source_stats = CollectionStats::default();
        let streamed = {
            let mut consume =
                |batch: &mut RecordBatch| fold(batch, &mut dataset, &mut agg);
            let mut sink = ChunkSink::new(chunk_size, &ledger, &mut consume);
            let streamed = source.stream_shard(shard, &mut source_stats, &mut sink);
            sink.flush();
            streamed
        };
        // Source-side (session-level) and fold-side (record-level)
        // diagnostics accumulate in disjoint fields, so merging the two
        // partial structs reproduces the historical single-struct values
        // exactly.
        agg.merge(&source_stats);
        streamed.map(|()| (dataset, agg))
    });
    drop(shards_span);

    // Deterministic reduction: always in shard order, regardless of which
    // worker finished first. The first failing shard (in shard order)
    // decides the error.
    let merge_span = mobilenet_obs::span("merge");
    let mut dataset = new_dataset();
    let mut stats = CollectionStats::default();
    for partial in partials {
        let (partial_dataset, partial_stats) = partial?;
        dataset.merge(&partial_dataset)?;
        stats.merge(&partial_stats);
    }
    drop(merge_span);

    let ingest = IngestStats {
        chunks: ledger.chunks.load(Ordering::Relaxed),
        records: ledger.records.load(Ordering::Relaxed),
        peak_resident_records: ledger.peak_resident.load(Ordering::SeqCst),
        bytes_read: source.bytes_read(),
        chunk_size,
        workers,
        cycles: 1,
    };
    record_ingest_metrics(&ingest);
    if mobilenet_obs::enabled() {
        // Footprint of one dense fold partial (every shard partial and
        // the merge target share this shape). A gauge: it describes the
        // configuration, not the record stream.
        mobilenet_obs::gauge("netsim.ingest.accumulator_bytes", dataset.dense_bytes() as f64);
    }
    Ok((dataset, stats, ingest))
}

/// Publishes one run's [`IngestStats`] to the observability registry.
///
/// `chunks`, `records` and `bytes_read` are deterministic (identical at
/// any thread count) and land on counters; `peak_resident_records` and
/// `workers` describe scheduling and land on gauges, which the
/// determinism fingerprint excludes.
fn record_ingest_metrics(ingest: &IngestStats) {
    if !mobilenet_obs::enabled() {
        return;
    }
    mobilenet_obs::add("netsim.ingest.chunks", ingest.chunks);
    mobilenet_obs::add("netsim.ingest.records", ingest.records);
    mobilenet_obs::add("netsim.ingest.bytes_read", ingest.bytes_read);
    mobilenet_obs::gauge(
        "netsim.ingest.peak_resident_records",
        ingest.peak_resident_records as f64,
    );
    mobilenet_obs::gauge("netsim.ingest.chunk_size", ingest.chunk_size as f64);
    mobilenet_obs::gauge("netsim.ingest.workers", ingest.workers as f64);
}

/// Replays any [`RecordSource`] through the DPI stage into a dataset
/// shaped like `model`'s country — the generic streaming counterpart of
/// [`replay`](crate::trace::replay), with the tail table filled from the
/// demand model exactly as collection does.
pub fn ingest<S: RecordSource>(
    source: &S,
    model: &DemandModel,
    options: &CollectOptions,
) -> Result<crate::pipeline::CollectionOutput, IngestError> {
    options.validate().map_err(IngestError::Config)?;
    let catalog = model.catalog();
    let classifier = crate::classifier::DpiClassifier::new(
        catalog.head().len(),
        catalog.tail_len(),
        model.config().classified_fraction,
    );
    let new_dataset = || {
        TrafficDataset::new(
            model.country(),
            catalog.head().len(),
            catalog.tail_len(),
            model.config().subscriber_share,
        )
    };
    let (mut dataset, stats, ingest) =
        aggregate_source(source, options.chunk_size, new_dataset, |batch, ds, st| {
            crate::pipeline::aggregate_batch(batch, &classifier, options.fold, true, ds, st)
        })?;
    model.fill_tail(&mut dataset);
    mobilenet_obs::add("netsim.faults.skipped_lines", stats.skipped_lines);
    Ok(crate::pipeline::CollectionOutput { dataset, stats, ingest })
}

/// An in-memory slice of records as a single-shard [`RecordSource`].
#[derive(Debug, Clone, Copy)]
pub struct SliceSource<'a> {
    records: &'a [SessionRecord],
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of already-materialized records.
    pub fn new(records: &'a [SessionRecord]) -> Self {
        SliceSource { records }
    }
}

impl RecordSource for SliceSource<'_> {
    fn shards(&self) -> usize {
        1
    }

    fn stream_shard(
        &self,
        _shard: usize,
        _stats: &mut CollectionStats,
        sink: &mut ChunkSink<'_>,
    ) -> Result<(), IngestError> {
        for record in self.records {
            sink.push(record);
        }
        Ok(())
    }

    /// Logical bytes of the backing slice. Reported statically (rather
    /// than accumulated per stream) so that replaying the same source
    /// twice — e.g. a bench warm-up pass before the timed pass — does not
    /// double-count.
    fn bytes_read(&self) -> u64 {
        std::mem::size_of_val(self.records) as u64
    }
}

/// A probe trace read incrementally from any [`BufRead`] — the streaming
/// replacement for materializing a whole trace file as a `String` plus a
/// `Vec<SessionRecord>`.
///
/// Single-shard (a trace is an ordered artefact). In strict mode the
/// first malformed row aborts the stream with its 1-based line number; in
/// lossy mode malformed rows are skipped and counted
/// (`CollectionStats::skipped_lines`), with the line-numbered details
/// retrievable via [`TraceSource::take_skipped`] afterwards.
pub struct TraceSource<R> {
    reader: Mutex<Option<R>>,
    lossy: bool,
    bytes: AtomicU64,
    skipped: Mutex<Vec<TraceError>>,
}

impl<R: BufRead> TraceSource<R> {
    /// A strict trace source: the first bad row fails the ingestion.
    pub fn strict(reader: R) -> Self {
        TraceSource {
            reader: Mutex::new(Some(reader)),
            lossy: false,
            bytes: AtomicU64::new(0),
            skipped: Mutex::new(Vec::new()),
        }
    }

    /// A lossy trace source: malformed rows are skipped and counted
    /// instead of aborting (only a missing header is fatal).
    pub fn lossy(reader: R) -> Self {
        TraceSource { lossy: true, ..TraceSource::strict(reader) }
    }

    /// The line-numbered errors of every row skipped so far (lossy mode),
    /// leaving the source's list empty.
    pub fn take_skipped(&self) -> Vec<TraceError> {
        std::mem::take(&mut *self.skipped.lock().expect("skipped list poisoned"))
    }
}

impl<R: BufRead + Send> RecordSource for TraceSource<R> {
    fn shards(&self) -> usize {
        1
    }

    fn stream_shard(
        &self,
        _shard: usize,
        stats: &mut CollectionStats,
        sink: &mut ChunkSink<'_>,
    ) -> Result<(), IngestError> {
        let mut reader = self
            .reader
            .lock()
            .expect("trace reader poisoned")
            .take()
            .ok_or_else(|| IngestError::Config("trace source already consumed".into()))?;
        let mut line = String::new();
        let read_line = |reader: &mut R, line: &mut String| -> Result<bool, IngestError> {
            line.clear();
            let n = reader.read_line(line)?;
            self.bytes.fetch_add(n as u64, Ordering::Relaxed);
            // Same semantics as `str::lines`: strip one `\n`, then at
            // most one `\r` before it.
            if line.ends_with('\n') {
                line.pop();
                if line.ends_with('\r') {
                    line.pop();
                }
            }
            Ok(n > 0)
        };
        if !read_line(&mut reader, &mut line)? || line != TRACE_HEADER {
            return Err(IngestError::Trace(TraceError {
                line: 1,
                message: "missing/unsupported trace header".into(),
            }));
        }
        let mut line_no = 1usize;
        while read_line(&mut reader, &mut line)? {
            line_no += 1;
            match record_from_line(&line) {
                Ok(record) => sink.push(&record),
                Err(message) => {
                    let err = TraceError { line: line_no, message };
                    if self.lossy {
                        stats.skipped_lines += 1;
                        self.skipped.lock().expect("skipped list poisoned").push(err);
                    } else {
                        return Err(IngestError::Trace(err));
                    }
                }
            }
        }
        Ok(())
    }

    fn bytes_read(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{FlowSignature, Interface};
    use mobilenet_geo::CommuneId;

    fn record(hour: u16) -> SessionRecord {
        SessionRecord {
            interface: Interface::Gn,
            start_hour: hour,
            dl_mb: 1.5,
            ul_mb: 0.5,
            commune: CommuneId(0),
            signature: FlowSignature(0),
            stale_uli: false,
        }
    }

    #[test]
    fn chunk_sink_flushes_at_the_budget_and_preserves_order() {
        let ledger = IngestLedger::default();
        let mut seen: Vec<(usize, u16)> = Vec::new();
        let mut chunks = 0usize;
        {
            let mut consume = |batch: &mut RecordBatch| {
                chunks += 1;
                seen.extend(batch.start_hours().iter().map(|&h| (chunks, h)));
            };
            let mut sink = ChunkSink::new(3, &ledger, &mut consume);
            for h in 0..8 {
                sink.push(&record(h));
            }
            sink.flush();
            sink.flush(); // idempotent on empty
        }
        assert_eq!(chunks, 3, "8 records at budget 3 → chunks of 3, 3, 2");
        let hours: Vec<u16> = seen.iter().map(|(_, h)| *h).collect();
        assert_eq!(hours, (0..8).collect::<Vec<u16>>());
        assert_eq!(ledger.chunks.load(Ordering::Relaxed), 3);
        assert_eq!(ledger.records.load(Ordering::Relaxed), 8);
        assert_eq!(ledger.peak_resident.load(Ordering::Relaxed), 3);
        assert_eq!(ledger.resident.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn options_validate_rejects_zero_chunks_and_bad_plans() {
        assert!(CollectOptions::default().validate().is_ok());
        assert!(CollectOptions::default().chunk_size(0).validate().is_err());
        let mut bad = CollectOptions::default();
        bad.faults.loss_prob = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn trace_source_counts_bytes_and_rejects_double_use() {
        let body = format!("{TRACE_HEADER}\n{}\n", crate::trace::record_to_line(&record(5)));
        let source = TraceSource::strict(body.as_bytes());
        let ledger = IngestLedger::default();
        let mut stats = CollectionStats::default();
        let mut n = 0usize;
        {
            let mut consume = |batch: &mut RecordBatch| n += batch.len();
            let mut sink = ChunkSink::new(4, &ledger, &mut consume);
            source.stream_shard(0, &mut stats, &mut sink).expect("clean trace");
            sink.flush();
        }
        assert_eq!(n, 1);
        assert_eq!(source.bytes_read(), body.len() as u64);
        // A second pass finds the reader consumed.
        let mut consume = |_: &mut RecordBatch| {};
        let mut sink = ChunkSink::new(4, &ledger, &mut consume);
        assert!(matches!(
            source.stream_shard(0, &mut stats, &mut sink),
            Err(IngestError::Config(_))
        ));
    }

    #[test]
    fn ingest_error_display_and_sources_chain() {
        use std::error::Error as _;
        let e = IngestError::from(TraceError { line: 3, message: "bad hour".into() });
        assert!(e.to_string().contains("trace line 3"));
        assert!(e.source().is_some());
        let e = IngestError::Config("chunk_size must be at least 1 record".into());
        assert!(e.to_string().contains("chunk_size"));
        assert!(e.source().is_none());
        let e = IngestError::from(std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("disk gone"));
    }
}
