//! Simulated 3G/4G packet-core measurement pipeline.
//!
//! §2 of the paper describes the measurement apparatus: passive probes at
//! the **Gn** (3G, GGSN) and **S5/S8** (4G, P-GW) interfaces inspect the
//! GTP user plane and extract per-session transport/application
//! information; the operator's proprietary DPI stage classifies **88%** of
//! the traffic; geo-referencing reads the **ULI** (User Location
//! Information) carried in PDP Contexts / EPS Bearers on the GTP control
//! plane, whose coarse updates yield a **median localization error around
//! 3 km** — the reason all analysis happens at commune granularity.
//!
//! This crate rebuilds that apparatus over synthetic sessions:
//!
//! * [`radio`] — base stations deployed per commune and grouped into
//!   routing/tracking areas; the station ↔ commune mapping the paper uses
//!   for aggregation.
//! * [`uli`] — the localization model: reported positions scatter around
//!   true positions with a configurable median error, plus occasional
//!   stale-ULI outliers at routing-area scale.
//! * [`classifier`] — a fingerprint-table DPI stage: sessions carry a wire
//!   signature derived from their true service; the classifier inverts it,
//!   missing a configurable fraction of the volume.
//! * [`probe`] — the Gn / S5-S8 probes turning a
//!   [`Session`](mobilenet_traffic::Session) into a [`SessionRecord`]
//!   as the operator would see it.
//! * [`pipeline`] — end-to-end collection: demand model → sessions →
//!   probes → aggregation into a
//!   [`TrafficDataset`](mobilenet_traffic::TrafficDataset), with
//!   collection statistics (classification rate, localization error,
//!   commune misassignment).
//! * [`faults`] — the deterministic fault-injection layer: probe outage
//!   windows, record loss/duplication, counter truncation, clock skew and
//!   trace corruption, applied between probe and aggregation so the
//!   pipeline degrades gracefully instead of assuming benign capture.
//! * [`ingest`] — the streaming bounded-memory ingestion engine: the
//!   [`RecordSource`] abstraction (synthetic shards, trace readers,
//!   in-memory slices) and the chunked sharded aggregator whose peak
//!   resident records never exceed `chunk_size × workers`, bit-identical
//!   to materialized aggregation at any thread count and chunk size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod config;
pub mod faults;
pub mod ingest;
pub mod pipeline;
pub mod probe;
pub mod radio;
pub mod records;
pub mod trace;
pub mod uli;

pub use classifier::{DpiClassifier, UNCLASSIFIED_CODE};
pub use config::NetsimConfig;
pub use faults::{FaultInjector, FaultPlan, FaultStats, OutageWindow};
pub use ingest::{
    ingest, stream_shard_chunked, ChunkSink, CollectOptions, FoldStrategy, IngestError,
    IngestMeter, IngestStats, RecordSource, SliceSource, TraceSource, DEFAULT_CHUNK_SIZE,
};
pub use pipeline::{
    aggregate_batch, collect_with_options, Capture, CollectionOutput, CollectionStats,
    SyntheticSource, ERROR_SAMPLE_CAP,
};
pub use probe::Probe;
pub use radio::RadioNetwork;
pub use trace::{
    observe_with_options, read_trace_from, read_trace_from_lossy, replay, replay_from,
    replay_lossy, trace_from_csv, trace_from_csv_lossy, trace_to_csv, trace_to_csv_faulty,
    write_trace_to, CaptureSummary, LossyReplay, LossyTrace, TraceError,
};
pub use records::{Interface, RecordBatch, SessionRecord};
pub use uli::UliModel;
