//! The ULI localization model.
//!
//! The User Location Information is "updated upon possibly infrequent
//! events" (§2), so a position read from a PDP Context / EPS Bearer is a
//! coarse, sometimes stale fix. Prior work (AccuLoc, MobiSys'11) puts the
//! median error around 3 km, which the paper uses to justify commune-level
//! aggregation. The model here produces exactly that error structure:
//!
//! * a fresh fix scatters around the true position with a Rayleigh-
//!   distributed distance whose **median** equals the configured target;
//! * with a small probability the fix is **stale** — the user moved across
//!   a routing area since the last update — and is displaced at
//!   routing-area scale instead, producing the long error tail.

use rand::rngs::StdRng;
use rand::Rng;

use mobilenet_geo::Point;

use crate::config::NetsimConfig;

/// Seedable localization-noise model.
#[derive(Debug, Clone)]
pub struct UliModel {
    /// Rayleigh scale of fresh fixes (σ of each Gaussian component).
    sigma_km: f64,
    stale_prob: f64,
    stale_sigma_km: f64,
}

impl UliModel {
    /// Builds the model from a pipeline configuration.
    pub fn new(config: &NetsimConfig) -> Self {
        // For displacement (X, Y) ~ N(0, σ²)², the distance is Rayleigh(σ)
        // with median σ·√(2 ln 2).
        let median_factor = (2.0 * std::f64::consts::LN_2).sqrt();
        UliModel {
            sigma_km: config.uli_median_error_km / median_factor,
            stale_prob: config.uli_stale_prob,
            stale_sigma_km: config.uli_stale_error_km / median_factor,
        }
    }

    /// Reports a (noisy) position fix for a true position.
    ///
    /// Returns the fix and whether it was stale.
    pub fn fix(&self, true_position: &Point, rng: &mut StdRng) -> (Point, bool) {
        self.fix_along(true_position, None, rng)
    }

    /// Like [`UliModel::fix`], but when `direction` is given the
    /// displacement is concentrated along that unit vector.
    ///
    /// ULI staleness displaces a fix along the *user's movement* since the
    /// last update. For train passengers that movement follows the track,
    /// so their fixes scatter along the rail line (still hitting corridor
    /// base stations) instead of isotropically; only a small perpendicular
    /// component (10% of the scale) remains.
    pub fn fix_along(
        &self,
        true_position: &Point,
        direction: Option<(f64, f64)>,
        rng: &mut StdRng,
    ) -> (Point, bool) {
        let stale = self.stale_prob > 0.0 && rng.gen::<f64>() < self.stale_prob;
        let sigma = if stale { self.stale_sigma_km } else { self.sigma_km };
        if sigma <= 0.0 {
            return (*true_position, stale);
        }
        let (gx, gy) = gaussian_pair(rng, sigma);
        let (dx, dy) = match direction {
            None => (gx, gy),
            Some((ux, uy)) => {
                // gx along the track, 10% of gy across it.
                (gx * ux - 0.1 * gy * uy, gx * uy + 0.1 * gy * ux)
            }
        };
        (Point::new(true_position.x + dx, true_position.y + dy), stale)
    }

    /// The Rayleigh scale of fresh fixes, km.
    pub fn sigma_km(&self) -> f64 {
        self.sigma_km
    }
}

/// Two independent `N(0, σ²)` draws via Box–Muller.
fn gaussian_pair(rng: &mut StdRng, sigma: f64) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt() * sigma;
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn errors(config: &NetsimConfig, n: usize) -> Vec<f64> {
        let model = UliModel::new(config);
        let mut rng = StdRng::seed_from_u64(77);
        let origin = Point::new(100.0, 100.0);
        (0..n)
            .map(|_| {
                let (fix, _) = model.fix(&origin, &mut rng);
                fix.distance(&origin)
            })
            .collect()
    }

    #[test]
    fn median_error_matches_target() {
        let mut cfg = NetsimConfig::standard();
        cfg.uli_stale_prob = 0.0; // isolate fresh fixes
        let mut errs = errors(&cfg, 40_000);
        errs.sort_by(f64::total_cmp);
        let median = errs[errs.len() / 2];
        assert!(
            (median - 3.0).abs() < 0.1,
            "median error {median} km, want ≈ 3 km"
        );
    }

    #[test]
    fn stale_fixes_produce_a_long_tail() {
        let cfg = NetsimConfig::standard();
        let errs = errors(&cfg, 40_000);
        let far = errs.iter().filter(|e| **e > 9.0).count() as f64 / errs.len() as f64;
        // With 12% stale at ~12 km scale, a clear tail beyond 9 km exists.
        assert!(far > 0.05, "tail mass {far}");

        let mut fresh_only = cfg.clone();
        fresh_only.uli_stale_prob = 0.0;
        let errs2 = errors(&fresh_only, 40_000);
        let far2 = errs2.iter().filter(|e| **e > 9.0).count() as f64 / errs2.len() as f64;
        assert!(far2 < far / 2.0, "stale fixes must dominate the tail");
    }

    #[test]
    fn ideal_config_is_noise_free() {
        let errs = errors(&NetsimConfig::ideal(), 1000);
        assert!(errs.iter().all(|e| *e == 0.0));
    }

    #[test]
    fn fixes_are_deterministic_in_seed() {
        let model = UliModel::new(&NetsimConfig::standard());
        let p = Point::new(5.0, 5.0);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(model.fix(&p, &mut a), model.fix(&p, &mut b));
        }
    }

    #[test]
    fn directed_fixes_stay_near_the_axis() {
        let model = UliModel::new(&NetsimConfig::standard());
        let mut rng = StdRng::seed_from_u64(5);
        let origin = Point::new(0.0, 0.0);
        let mut max_perp: f64 = 0.0;
        let mut max_along: f64 = 0.0;
        for _ in 0..5_000 {
            let (fix, _) = model.fix_along(&origin, Some((1.0, 0.0)), &mut rng);
            max_along = max_along.max(fix.x.abs());
            max_perp = max_perp.max(fix.y.abs());
        }
        assert!(
            max_perp < max_along / 3.0,
            "perpendicular spread {max_perp} vs along {max_along}"
        );
    }

    #[test]
    fn sigma_accessor_reflects_config() {
        let model = UliModel::new(&NetsimConfig::standard());
        let want = 3.0 / (2.0f64 * std::f64::consts::LN_2).sqrt();
        assert!((model.sigma_km() - want).abs() < 1e-12);
    }
}
