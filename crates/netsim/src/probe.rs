//! The passive probes on the Gn and S5/S8 interfaces.
//!
//! A probe sees one GTP session: user-plane volume counters plus the ULI
//! from the control plane. It does **not** see the true service (only a
//! wire signature) nor the true position (only the noisy ULI fix mapped to
//! the serving base station's commune) — reproducing the information
//! boundary of the real apparatus.

use rand::rngs::StdRng;

use mobilenet_traffic::{Session, Technology};

use crate::classifier::DpiClassifier;
use crate::radio::RadioNetwork;
use crate::records::{Interface, SessionRecord};
use crate::uli::UliModel;

/// A probe pair covering both core interfaces.
pub struct Probe<'a> {
    radio: &'a RadioNetwork,
    uli: UliModel,
    classifier: &'a DpiClassifier,
    /// Per-commune ULI displacement direction: TGV-corridor communes get
    /// the local rail tangent (train passengers move along the track),
    /// everyone else scatters isotropically. Empty means all-isotropic.
    movement_directions: Vec<Option<(f64, f64)>>,
}

impl<'a> Probe<'a> {
    /// Wires a probe to the radio network and classifier.
    pub fn new(radio: &'a RadioNetwork, uli: UliModel, classifier: &'a DpiClassifier) -> Self {
        Probe { radio, uli, classifier, movement_directions: Vec::new() }
    }

    /// Sets per-commune movement directions for anisotropic ULI noise.
    pub fn with_movement_directions(mut self, directions: Vec<Option<(f64, f64)>>) -> Self {
        self.movement_directions = directions;
        self
    }

    /// Observes one session, producing the operator-side record.
    pub fn observe(&self, session: &Session, rng: &mut StdRng) -> SessionRecord {
        let interface = match session.tech {
            Technology::G3 => Interface::Gn,
            Technology::G4 => Interface::S5S8,
        };
        let direction = self
            .movement_directions
            .get(session.commune.index())
            .copied()
            .flatten();
        let (fix, stale_uli) = self.uli.fix_along(&session.position, direction, rng);
        let commune = self.radio.commune_of_fix(&fix);
        let signature = self.classifier.stamp_head(session.service, rng);
        SessionRecord {
            interface,
            start_hour: session.start_hour,
            dl_mb: session.dl_mb,
            ul_mb: session.ul_mb,
            commune,
            signature,
            stale_uli,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ServiceLabel;
    use crate::config::NetsimConfig;
    use mobilenet_geo::{Country, CountryConfig, Point};
    use rand::SeedableRng;

    fn fixture() -> (Country, RadioNetwork, DpiClassifier) {
        let country = Country::generate(&CountryConfig::small(), 4);
        let radio = RadioNetwork::deploy(&country, &NetsimConfig::standard(), 9);
        let classifier = DpiClassifier::new(20, 10, 1.0);
        (country, radio, classifier)
    }

    fn session(country: &Country, tech: Technology) -> Session {
        let c = &country.communes()[100];
        Session {
            service: 3,
            commune: c.id,
            start_hour: 60,
            dl_mb: 12.0,
            ul_mb: 1.0,
            tech,
            position: c.centroid,
        }
    }

    #[test]
    fn technology_selects_the_interface() {
        let (country, radio, classifier) = fixture();
        let probe = Probe::new(&radio, UliModel::new(&NetsimConfig::ideal()), &classifier);
        let mut rng = StdRng::seed_from_u64(1);
        let r3 = probe.observe(&session(&country, Technology::G3), &mut rng);
        assert_eq!(r3.interface, Interface::Gn);
        let r4 = probe.observe(&session(&country, Technology::G4), &mut rng);
        assert_eq!(r4.interface, Interface::S5S8);
    }

    #[test]
    fn volumes_and_timing_pass_through() {
        let (country, radio, classifier) = fixture();
        let probe = Probe::new(&radio, UliModel::new(&NetsimConfig::ideal()), &classifier);
        let mut rng = StdRng::seed_from_u64(2);
        let s = session(&country, Technology::G4);
        let r = probe.observe(&s, &mut rng);
        assert_eq!(r.dl_mb, s.dl_mb);
        assert_eq!(r.ul_mb, s.ul_mb);
        assert_eq!(r.start_hour, s.start_hour);
    }

    #[test]
    fn record_signature_classifies_back_to_the_service() {
        let (country, radio, classifier) = fixture();
        let probe = Probe::new(&radio, UliModel::new(&NetsimConfig::ideal()), &classifier);
        let mut rng = StdRng::seed_from_u64(3);
        let r = probe.observe(&session(&country, Technology::G3), &mut rng);
        assert_eq!(classifier.classify(r.signature), ServiceLabel::Head(3));
    }

    #[test]
    fn localization_noise_can_misassign_the_commune() {
        let (country, radio, classifier) = fixture();
        // Huge noise: fixes land far away.
        let mut cfg = NetsimConfig::standard();
        cfg.uli_median_error_km = 30.0;
        let probe = Probe::new(&radio, UliModel::new(&cfg), &classifier);
        let mut rng = StdRng::seed_from_u64(4);
        let s = session(&country, Technology::G3);
        let misses = (0..200)
            .filter(|_| probe.observe(&s, &mut rng).commune != s.commune)
            .count();
        assert!(misses > 100, "only {misses}/200 misassigned at 30 km noise");
    }

    #[test]
    fn ideal_uli_with_central_position_rarely_misassigns() {
        let (country, radio, classifier) = fixture();
        let probe = Probe::new(&radio, UliModel::new(&NetsimConfig::ideal()), &classifier);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0;
        let total = 200;
        for commune in country.communes().iter().take(total) {
            let s = Session {
                service: 0,
                commune: commune.id,
                start_hour: 0,
                dl_mb: 1.0,
                ul_mb: 0.1,
                tech: Technology::G3,
                position: commune.centroid,
            };
            if probe.observe(&s, &mut rng).commune == s.commune {
                hits += 1;
            }
        }
        assert!(hits * 10 >= total * 6, "only {hits}/{total} correct communes");
    }

    #[test]
    fn observation_is_deterministic_in_rng_state() {
        let (country, radio, classifier) = fixture();
        let probe = Probe::new(&radio, UliModel::new(&NetsimConfig::standard()), &classifier);
        let s = session(&country, Technology::G4);
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        assert_eq!(probe.observe(&s, &mut a), probe.observe(&s, &mut b));
        // And position jitter is actually used: a different seed moves it.
        let mut c = StdRng::seed_from_u64(7);
        let rc = probe.observe(&s, &mut c);
        let ra = probe.observe(&s, &mut a);
        // (May coincide in commune, but signatures virtually never match.)
        assert!(rc != ra || rc.commune == ra.commune);
        let _ = Point::new(0.0, 0.0);
    }
}
