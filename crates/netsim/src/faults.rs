//! Fault injection for the capture path: graceful degradation.
//!
//! The real apparatus of §2 is not benign: probes drop records during
//! outages, counters get truncated when sessions outlive an export
//! interval, records are duplicated across redundant taps, clocks skew,
//! and trace files arrive with mangled lines. A [`FaultPlan`] models those
//! imperfections as a deterministic, seedable transformation applied
//! **between [`Probe::observe`](crate::Probe::observe) and aggregation**,
//! so [`collect_with_options`](crate::pipeline::collect_with_options),
//! [`observe_with_options`](crate::trace::observe_with_options)
//! and a replay of the captured trace all see the exact same degraded
//! record stream.
//!
//! # Determinism contract
//!
//! * Fault decisions draw from their own per-shard RNG streams
//!   ([`FaultInjector::shard_rng`]), derived from `(master seed, plan
//!   seed, shard)` — the probe- and session-RNG streams are never
//!   touched, so [`FaultPlan::none`] reproduces the fault-free pipeline
//!   **bit-identically**, and any plan is bit-identical at any thread
//!   count.
//! * Within one record the fault stages apply in a fixed order: outage →
//!   loss → truncation → clock skew → duplication. Outage windows draw no
//!   randomness at all.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobilenet_traffic::HOURS_PER_WEEK;

use crate::records::{Interface, SessionRecord};

/// One probe outage: records captured on `interface` whose `start_hour`
/// falls inside `hours` (a half-open hour-of-week range) are lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageWindow {
    /// The interface whose probe is down.
    pub interface: Interface,
    /// Half-open hour-of-week range `[start, end)`, within `0..168`.
    pub hours: Range<u16>,
}

impl OutageWindow {
    /// Whether `record` is captured by the downed probe.
    pub fn covers(&self, record: &SessionRecord) -> bool {
        self.covers_at(record.interface, record.start_hour)
    }

    /// Whether a record with these coordinates is captured by the downed
    /// probe (the columnar twin of [`OutageWindow::covers`]).
    #[inline]
    pub fn covers_at(&self, interface: Interface, start_hour: u16) -> bool {
        interface == self.interface && self.hours.contains(&start_hour)
    }
}

/// A deterministic, seedable plan of capture-path faults.
///
/// All probabilities are per record and independent; `FaultPlan::none()`
/// is the identity plan the fault-free pipeline is defined by.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG streams, mixed with the pipeline's master
    /// seed — two plans differing only in seed degrade different records.
    pub seed: u64,
    /// Per-interface probe outage windows (deterministic record loss).
    pub outages: Vec<OutageWindow>,
    /// Uniform probability of losing a record (probe overload, export
    /// gaps).
    pub loss_prob: f64,
    /// Probability of emitting a record twice (redundant taps).
    pub dup_prob: f64,
    /// Probability of truncating a record's volume counters.
    pub truncate_prob: f64,
    /// Fraction of the true volume a truncated counter retains, in
    /// `[0, 1]`.
    pub truncate_keep: f64,
    /// Probability of skewing a record's `start_hour`.
    pub skew_prob: f64,
    /// Maximum clock skew, hours; a skewed record moves forward by
    /// `1..=skew_max_hours` hours (wrapping around the week).
    pub skew_max_hours: u16,
    /// Probability of corrupting a serialized trace line
    /// ([`trace_to_csv_faulty`](crate::trace::trace_to_csv_faulty));
    /// exercised by the replay path, not by in-memory collection.
    pub corrupt_prob: f64,
}

impl FaultPlan {
    /// The identity plan: no outages, every probability zero.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            outages: Vec::new(),
            loss_prob: 0.0,
            dup_prob: 0.0,
            truncate_prob: 0.0,
            truncate_keep: 1.0,
            skew_prob: 0.0,
            skew_max_hours: 0,
            corrupt_prob: 0.0,
        }
    }

    /// A representative degraded-collection preset: a Tuesday-morning Gn
    /// outage, 2% record loss, 1% duplication, 1% truncation to a quarter
    /// of the volume, 1% clock skew up to 2 h, and 2% trace-line
    /// corruption.
    pub fn degraded(seed: u64) -> Self {
        FaultPlan {
            seed,
            outages: vec![OutageWindow { interface: Interface::Gn, hours: 33..37 }],
            loss_prob: 0.02,
            dup_prob: 0.01,
            truncate_prob: 0.01,
            truncate_keep: 0.25,
            skew_prob: 0.01,
            skew_max_hours: 2,
            corrupt_prob: 0.02,
        }
    }

    /// Whether this plan is the identity (no fault can ever fire).
    pub fn is_none(&self) -> bool {
        self.outages.is_empty()
            && self.loss_prob == 0.0
            && self.dup_prob == 0.0
            && (self.truncate_prob == 0.0 || self.truncate_keep == 1.0)
            && (self.skew_prob == 0.0 || self.skew_max_hours == 0)
            && self.corrupt_prob == 0.0
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss_prob", self.loss_prob),
            ("dup_prob", self.dup_prob),
            ("truncate_prob", self.truncate_prob),
            ("truncate_keep", self.truncate_keep),
            ("skew_prob", self.skew_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault plan: {name} must be in [0,1], got {p}"));
            }
        }
        let hours = HOURS_PER_WEEK as u16;
        for w in &self.outages {
            if w.hours.start >= w.hours.end || w.hours.end > hours {
                return Err(format!(
                    "fault plan: outage window {}..{} must be non-empty and within 0..{hours}",
                    w.hours.start, w.hours.end
                ));
            }
        }
        if self.skew_max_hours as usize >= HOURS_PER_WEEK {
            return Err(format!(
                "fault plan: skew_max_hours must be < {HOURS_PER_WEEK}"
            ));
        }
        Ok(())
    }

    /// Parses a CLI-style plan specification: comma-separated `key=value`
    /// pairs over [`FaultPlan::none`].
    ///
    /// Keys: `seed=N`, `loss=P`, `dup=P`, `trunc=P`, `keep=F`, `skew=P`,
    /// `skewh=H`, `corrupt=P`, and repeatable `outage=IF:START-END` with
    /// `IF` ∈ {`gn`, `s5s8`} and a half-open hour-of-week range. The
    /// literal `degraded` selects [`FaultPlan::degraded`] as the base.
    ///
    /// ```
    /// use mobilenet_netsim::FaultPlan;
    /// let plan = FaultPlan::parse("loss=0.05,dup=0.01,outage=gn:33-37").unwrap();
    /// assert_eq!(plan.loss_prob, 0.05);
    /// assert_eq!(plan.outages.len(), 1);
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part == "degraded" {
                let seed = plan.seed;
                plan = FaultPlan::degraded(seed);
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {part:?}: expected key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                v.parse::<f64>().map_err(|e| format!("fault spec {key}={v}: {e}"))
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("fault spec seed={value}: {e}"))?
                }
                "loss" => plan.loss_prob = prob(value)?,
                "dup" => plan.dup_prob = prob(value)?,
                "trunc" => {
                    plan.truncate_prob = prob(value)?;
                    if plan.truncate_keep >= 1.0 {
                        plan.truncate_keep = 0.25;
                    }
                }
                "keep" => plan.truncate_keep = prob(value)?,
                "skew" => {
                    plan.skew_prob = prob(value)?;
                    if plan.skew_max_hours == 0 {
                        plan.skew_max_hours = 2;
                    }
                }
                "skewh" => {
                    plan.skew_max_hours = value
                        .parse()
                        .map_err(|e| format!("fault spec skewh={value}: {e}"))?
                }
                "corrupt" => plan.corrupt_prob = prob(value)?,
                "outage" => plan.outages.push(parse_outage(value)?),
                other => return Err(format!("fault spec: unknown key {other:?}")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn parse_outage(value: &str) -> Result<OutageWindow, String> {
    let (iface, range) = value
        .split_once(':')
        .ok_or_else(|| format!("outage {value:?}: expected IF:START-END"))?;
    let interface = match iface {
        "gn" => Interface::Gn,
        "s5s8" => Interface::S5S8,
        other => return Err(format!("outage interface {other:?}: use gn|s5s8")),
    };
    let (start, end) = range
        .split_once('-')
        .ok_or_else(|| format!("outage range {range:?}: expected START-END"))?;
    let start: u16 = start.parse().map_err(|e| format!("outage start {start:?}: {e}"))?;
    let end: u16 = end.parse().map_err(|e| format!("outage end {end:?}: {e}"))?;
    Ok(OutageWindow { interface, hours: start..end })
}

/// Counters of the degradation one fault plan inflicted on a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Records lost to probe outage windows.
    pub lost_outage: u64,
    /// Records lost to uniform random loss.
    pub lost_records: u64,
    /// Extra copies emitted by duplication (one per duplicated record).
    pub duplicated_records: u64,
    /// Records whose volume counters were truncated.
    pub truncated_records: u64,
    /// Records whose `start_hour` was skewed.
    pub skewed_records: u64,
}

impl FaultStats {
    /// Folds another stream's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.lost_outage += other.lost_outage;
        self.lost_records += other.lost_records;
        self.duplicated_records += other.duplicated_records;
        self.truncated_records += other.truncated_records;
        self.skewed_records += other.skewed_records;
    }

    /// Total records dropped (outage + random loss).
    pub fn lost_total(&self) -> u64 {
        self.lost_outage + self.lost_records
    }

    /// Whether any fault fired.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// Applies a [`FaultPlan`] to a record stream, shard by shard.
#[derive(Debug, Clone)]
pub struct FaultInjector<'a> {
    plan: &'a FaultPlan,
}

impl<'a> FaultInjector<'a> {
    /// Wires an injector to a plan.
    pub fn new(plan: &'a FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// The fault RNG of one shard: a stream derived from the pipeline's
    /// master seed, the plan seed, and the shard index — independent of
    /// the probe and session streams, and of which worker runs the shard.
    pub fn shard_rng(&self, master_seed: u64, shard: usize) -> StdRng {
        StdRng::seed_from_u64(mobilenet_par::seed_for(
            master_seed ^ self.plan.seed.rotate_left(17) ^ 0x6661_756c_7472_6e67, // "faultrng"
            shard as u64,
        ))
    }

    /// Degrades one observed record: calls `emit` zero times (lost), once
    /// (kept, possibly truncated/skewed) or twice (duplicated).
    ///
    /// Stage order is fixed — outage, loss, truncation, clock skew,
    /// duplication — and each probabilistic stage draws from `rng` only
    /// when its probability is nonzero, so a plan's decisions depend on
    /// nothing but `(plan, rng state, record order)`.
    pub fn apply(
        &self,
        record: &SessionRecord,
        rng: &mut StdRng,
        stats: &mut FaultStats,
        mut emit: impl FnMut(&SessionRecord),
    ) {
        let plan = self.plan;
        if plan.outages.iter().any(|w| w.covers(record)) {
            stats.lost_outage += 1;
            return;
        }
        if plan.loss_prob > 0.0 && rng.gen::<f64>() < plan.loss_prob {
            stats.lost_records += 1;
            return;
        }
        let mut degraded = record.clone();
        if plan.truncate_prob > 0.0 && rng.gen::<f64>() < plan.truncate_prob {
            degraded.dl_mb *= plan.truncate_keep;
            degraded.ul_mb *= plan.truncate_keep;
            stats.truncated_records += 1;
        }
        if plan.skew_prob > 0.0
            && plan.skew_max_hours > 0
            && rng.gen::<f64>() < plan.skew_prob
        {
            let delta = rng.gen_range(1..plan.skew_max_hours + 1);
            degraded.start_hour = (degraded.start_hour + delta) % HOURS_PER_WEEK as u16;
            stats.skewed_records += 1;
        }
        emit(&degraded);
        if plan.dup_prob > 0.0 && rng.gen::<f64>() < plan.dup_prob {
            stats.duplicated_records += 1;
            emit(&degraded);
        }
    }

    /// Degrades a whole [`RecordBatch`] column-wise into `out` (appending;
    /// callers clear between batches).
    ///
    /// Walks records in batch order through the exact stage order of
    /// [`FaultInjector::apply`] — outage (no draw), loss, truncation,
    /// clock skew, duplication, each drawing from `rng` only when its
    /// probability is nonzero — so for any plan and RNG state the emitted
    /// stream and [`FaultStats`] are **bit-identical** to applying
    /// [`FaultInjector::apply`] to each row in turn (pinned by a test
    /// below). The synthesis path keeps per-record application because
    /// faults interleave with probe observation there; this columnar twin
    /// serves batch-replay consumers.
    pub fn apply_batch(
        &self,
        batch: &crate::records::RecordBatch,
        rng: &mut StdRng,
        stats: &mut FaultStats,
        out: &mut crate::records::RecordBatch,
    ) {
        let plan = self.plan;
        let interfaces = batch.interfaces();
        let hours = batch.start_hours();
        let dl = batch.dl_mb();
        let ul = batch.ul_mb();
        let communes = batch.communes();
        let signatures = batch.signatures();
        let stale = batch.stale_uli();
        for i in 0..batch.len() {
            let interface = interfaces[i];
            let mut hour = hours[i];
            if plan.outages.iter().any(|w| w.covers_at(interface, hour)) {
                stats.lost_outage += 1;
                continue;
            }
            if plan.loss_prob > 0.0 && rng.gen::<f64>() < plan.loss_prob {
                stats.lost_records += 1;
                continue;
            }
            let (mut dl_mb, mut ul_mb) = (dl[i], ul[i]);
            if plan.truncate_prob > 0.0 && rng.gen::<f64>() < plan.truncate_prob {
                dl_mb *= plan.truncate_keep;
                ul_mb *= plan.truncate_keep;
                stats.truncated_records += 1;
            }
            if plan.skew_prob > 0.0
                && plan.skew_max_hours > 0
                && rng.gen::<f64>() < plan.skew_prob
            {
                let delta = rng.gen_range(1..plan.skew_max_hours + 1);
                hour = (hour + delta) % HOURS_PER_WEEK as u16;
                stats.skewed_records += 1;
            }
            out.push_parts(interface, hour, dl_mb, ul_mb, communes[i], signatures[i], stale[i]);
            if plan.dup_prob > 0.0 && rng.gen::<f64>() < plan.dup_prob {
                stats.duplicated_records += 1;
                out.push_parts(
                    interface, hour, dl_mb, ul_mb, communes[i], signatures[i], stale[i],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_geo::CommuneId;

    use crate::records::FlowSignature;

    fn record(interface: Interface, hour: u16) -> SessionRecord {
        SessionRecord {
            interface,
            start_hour: hour,
            dl_mb: 8.0,
            ul_mb: 2.0,
            commune: CommuneId(3),
            signature: FlowSignature(0xABCD),
            stale_uli: false,
        }
    }

    fn run_plan(plan: &FaultPlan, records: &[SessionRecord]) -> (Vec<SessionRecord>, FaultStats) {
        let injector = FaultInjector::new(plan);
        let mut rng = injector.shard_rng(7, 0);
        let mut stats = FaultStats::default();
        let mut out = Vec::new();
        for r in records {
            injector.apply(r, &mut rng, &mut stats, |d| out.push(d.clone()));
        }
        (out, stats)
    }

    #[test]
    fn identity_plan_is_pass_through() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate().unwrap();
        let records: Vec<_> = (0..50).map(|h| record(Interface::Gn, h)).collect();
        let (out, stats) = run_plan(&plan, &records);
        assert_eq!(out, records);
        assert!(!stats.any());
    }

    #[test]
    fn outage_drops_exactly_the_window_on_one_interface() {
        let mut plan = FaultPlan::none();
        plan.outages.push(OutageWindow { interface: Interface::Gn, hours: 10..20 });
        plan.validate().unwrap();
        let mut records = Vec::new();
        for h in 0..168 {
            records.push(record(Interface::Gn, h));
            records.push(record(Interface::S5S8, h));
        }
        let (out, stats) = run_plan(&plan, &records);
        assert_eq!(stats.lost_outage, 10);
        assert_eq!(out.len(), records.len() - 10);
        assert!(out
            .iter()
            .all(|r| r.interface != Interface::Gn || !(10..20).contains(&r.start_hour)));
    }

    #[test]
    fn probabilistic_faults_fire_at_roughly_their_rates() {
        let mut plan = FaultPlan::none();
        plan.loss_prob = 0.1;
        plan.dup_prob = 0.05;
        plan.truncate_prob = 0.08;
        plan.truncate_keep = 0.5;
        plan.skew_prob = 0.06;
        plan.skew_max_hours = 3;
        plan.validate().unwrap();
        let records: Vec<_> = (0..20_000).map(|i| record(Interface::S5S8, i % 168)).collect();
        let (out, stats) = run_plan(&plan, &records);
        let n = records.len() as f64;
        assert!((stats.lost_records as f64 / n - 0.1).abs() < 0.02, "{stats:?}");
        let survivors = n - stats.lost_records as f64;
        assert!((stats.duplicated_records as f64 / survivors - 0.05).abs() < 0.02);
        assert!((stats.truncated_records as f64 / survivors - 0.08).abs() < 0.02);
        assert!((stats.skewed_records as f64 / survivors - 0.06).abs() < 0.02);
        assert_eq!(
            out.len() as u64,
            records.len() as u64 - stats.lost_records + stats.duplicated_records
        );
        // Truncated copies carry exactly the configured fraction.
        assert!(out.iter().any(|r| r.dl_mb == 4.0 && r.ul_mb == 1.0));
    }

    #[test]
    fn columnar_apply_batch_matches_per_record_apply_bitwise() {
        use crate::records::RecordBatch;
        for plan in [
            FaultPlan::degraded(11),
            {
                let mut p = FaultPlan::degraded(11);
                p.loss_prob = 0.2;
                p.dup_prob = 0.1;
                p
            },
            FaultPlan::none(),
        ] {
            let records: Vec<SessionRecord> = (0..5000)
                .map(|i| {
                    let mut r = record(
                        if i % 2 == 0 { Interface::Gn } else { Interface::S5S8 },
                        (i % 168) as u16,
                    );
                    r.dl_mb = 0.5 + i as f64 * 0.13;
                    r
                })
                .collect();
            let (rows, row_stats) = run_plan(&plan, &records);

            let injector = FaultInjector::new(&plan);
            let mut rng = injector.shard_rng(7, 0);
            let mut stats = FaultStats::default();
            let mut batch = RecordBatch::with_capacity(records.len());
            for r in &records {
                batch.push(r);
            }
            let mut out = RecordBatch::default();
            injector.apply_batch(&batch, &mut rng, &mut stats, &mut out);
            let cols: Vec<SessionRecord> = (0..out.len()).map(|i| out.row(i)).collect();
            assert_eq!(cols, rows, "columnar degradation diverged");
            assert_eq!(stats, row_stats);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_shard() {
        let plan = FaultPlan::degraded(3);
        let records: Vec<_> = (0..500).map(|i| record(Interface::Gn, i % 168)).collect();
        let (a, sa) = run_plan(&plan, &records);
        let (b, sb) = run_plan(&plan, &records);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // A different plan seed degrades a different subset.
        let other = FaultPlan::degraded(4);
        let (c, _) = run_plan(&other, &records);
        assert_ne!(a, c);
    }

    #[test]
    fn validate_rejects_out_of_range_values() {
        let mut p = FaultPlan::none();
        p.loss_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.truncate_keep = -0.1;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.outages.push(OutageWindow { interface: Interface::Gn, hours: 30..30 });
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.outages.push(OutageWindow { interface: Interface::Gn, hours: 160..169 });
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.skew_max_hours = 168;
        assert!(p.validate().is_err());
        FaultPlan::degraded(0).validate().unwrap();
    }

    #[test]
    fn parse_builds_plans_and_rejects_garbage() {
        let plan = FaultPlan::parse("seed=9,loss=0.05,dup=0.01,trunc=0.02,keep=0.5,skew=0.03,skewh=4,corrupt=0.01,outage=gn:33-37,outage=s5s8:100-110").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.loss_prob, 0.05);
        assert_eq!(plan.truncate_keep, 0.5);
        assert_eq!(plan.skew_max_hours, 4);
        assert_eq!(plan.outages.len(), 2);
        assert_eq!(FaultPlan::parse("degraded").unwrap(), FaultPlan::degraded(0));
        assert_eq!(FaultPlan::parse("seed=5,degraded").unwrap(), FaultPlan::degraded(5));
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        // `trunc`/`skew` alone get usable defaults for keep/skewh.
        let t = FaultPlan::parse("trunc=0.1,skew=0.1").unwrap();
        assert!(t.truncate_keep < 1.0 && t.skew_max_hours > 0);
        assert!(FaultPlan::parse("loss").is_err());
        assert!(FaultPlan::parse("loss=2.0").is_err());
        assert!(FaultPlan::parse("warp=0.1").is_err());
        assert!(FaultPlan::parse("outage=gn:40").is_err());
        assert!(FaultPlan::parse("outage=wifi:1-2").is_err());
        assert!(FaultPlan::parse("outage=gn:9-9").is_err());
    }
}
