//! What the probes emit: operator-side session records, both as row
//! structs ([`SessionRecord`]) and as columnar struct-of-arrays batches
//! ([`RecordBatch`]) for the streaming aggregation hot path.

use mobilenet_geo::CommuneId;

use crate::classifier::DpiClassifier;

/// The probed core-network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Gn — between SGSN and GGSN (3G packet-switched core).
    Gn,
    /// S5/S8 — between S-GW and P-GW (4G evolved packet core).
    S5S8,
}

impl Interface {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Interface::Gn => "Gn",
            Interface::S5S8 => "S5/S8",
        }
    }
}

/// A wire-level flow signature, the classifier's input. Synthetic stand-in
/// for the transport/application-layer features a real DPI engine sees
/// (SNI, ports, payload patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowSignature(pub u64);

/// One session as recorded by a probe: volumes, timing, interface, the
/// commune derived from the ULI fix, and the flow signature awaiting
/// classification. The true service/commune are **not** part of the
/// record — the pipeline must recover them, as the real apparatus does.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Interface the record was captured on.
    pub interface: Interface,
    /// Hour-of-week of session establishment.
    pub start_hour: u16,
    /// Downlink volume, MB.
    pub dl_mb: f64,
    /// Uplink volume, MB.
    pub ul_mb: f64,
    /// Commune of the serving base station, per the ULI chain.
    pub commune: CommuneId,
    /// Flow signature for the DPI stage.
    pub signature: FlowSignature,
    /// Whether the ULI fix was stale (diagnostic, not available to the
    /// real operator; used only by collection statistics).
    pub stale_uli: bool,
}

/// A columnar batch of session records: the struct-of-arrays twin of
/// `Vec<SessionRecord>` that the streaming engine's [`ChunkSink`]
/// (`crate::ingest::ChunkSink`) buffers and the aggregation fold walks.
///
/// Every column holds one field of every record, in record order, so the
/// fold is a tight loop over dense `Vec<u16>`/`Vec<u32>`/`Vec<f64>`
/// columns instead of a pointer-chasing walk over 56-byte row structs.
/// The `codes` column is *derived* scratch: [`RecordBatch::resolve_codes`]
/// dictionary-encodes every signature through the DPI table once per
/// batch ([`DpiClassifier::classify_batch`]), and the fold then branches
/// on small integer codes only. All columns retain their capacity across
/// [`RecordBatch::clear`], so a warmed sink re-fills batches without
/// touching the heap.
#[derive(Debug, Clone, Default)]
pub struct RecordBatch {
    interfaces: Vec<Interface>,
    start_hours: Vec<u16>,
    dl_mb: Vec<f64>,
    ul_mb: Vec<f64>,
    communes: Vec<u32>,
    signatures: Vec<u64>,
    stale_uli: Vec<bool>,
    codes: Vec<u32>,
}

impl RecordBatch {
    /// An empty batch with room for `capacity` records per column.
    pub fn with_capacity(capacity: usize) -> Self {
        RecordBatch {
            interfaces: Vec::with_capacity(capacity),
            start_hours: Vec::with_capacity(capacity),
            dl_mb: Vec::with_capacity(capacity),
            ul_mb: Vec::with_capacity(capacity),
            communes: Vec::with_capacity(capacity),
            signatures: Vec::with_capacity(capacity),
            stale_uli: Vec::with_capacity(capacity),
            codes: Vec::new(),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.start_hours.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.start_hours.is_empty()
    }

    /// Empties every column, retaining capacity.
    pub fn clear(&mut self) {
        self.interfaces.clear();
        self.start_hours.clear();
        self.dl_mb.clear();
        self.ul_mb.clear();
        self.communes.clear();
        self.signatures.clear();
        self.stale_uli.clear();
        self.codes.clear();
    }

    /// Appends one record, splitting its fields across the columns.
    #[inline]
    pub fn push(&mut self, r: &SessionRecord) {
        self.interfaces.push(r.interface);
        self.start_hours.push(r.start_hour);
        self.dl_mb.push(r.dl_mb);
        self.ul_mb.push(r.ul_mb);
        self.communes.push(r.commune.0);
        self.signatures.push(r.signature.0);
        self.stale_uli.push(r.stale_uli);
    }

    /// Appends one record given as loose fields — the columnar writers'
    /// entry point (e.g. [`FaultInjector::apply_batch`]
    /// (`crate::faults::FaultInjector::apply_batch`)), skipping the row
    /// struct entirely.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn push_parts(
        &mut self,
        interface: Interface,
        start_hour: u16,
        dl_mb: f64,
        ul_mb: f64,
        commune: u32,
        signature: u64,
        stale_uli: bool,
    ) {
        self.interfaces.push(interface);
        self.start_hours.push(start_hour);
        self.dl_mb.push(dl_mb);
        self.ul_mb.push(ul_mb);
        self.communes.push(commune);
        self.signatures.push(signature);
        self.stale_uli.push(stale_uli);
    }

    /// Reassembles record `i` as a row struct (the legacy row-at-a-time
    /// fold path and tests use this; the batched fold never does).
    #[inline]
    pub fn row(&self, i: usize) -> SessionRecord {
        SessionRecord {
            interface: self.interfaces[i],
            start_hour: self.start_hours[i],
            dl_mb: self.dl_mb[i],
            ul_mb: self.ul_mb[i],
            commune: CommuneId(self.communes[i]),
            signature: FlowSignature(self.signatures[i]),
            stale_uli: self.stale_uli[i],
        }
    }

    /// Dictionary-encodes every signature into the `codes` column in one
    /// pass over the DPI table (see [`DpiClassifier::classify_batch`]).
    /// Reuses the column's capacity: allocation-free once warmed.
    pub fn resolve_codes(&mut self, classifier: &DpiClassifier) {
        classifier.classify_batch(&self.signatures, &mut self.codes);
    }

    /// The interface column.
    pub fn interfaces(&self) -> &[Interface] {
        &self.interfaces
    }

    /// The hour-of-week column.
    pub fn start_hours(&self) -> &[u16] {
        &self.start_hours
    }

    /// The downlink-volume column (MB).
    pub fn dl_mb(&self) -> &[f64] {
        &self.dl_mb
    }

    /// The uplink-volume column (MB).
    pub fn ul_mb(&self) -> &[f64] {
        &self.ul_mb
    }

    /// The commune-index column.
    pub fn communes(&self) -> &[u32] {
        &self.communes
    }

    /// The raw flow-signature column.
    pub fn signatures(&self) -> &[u64] {
        &self.signatures
    }

    /// The stale-ULI diagnostic column.
    pub fn stale_uli(&self) -> &[bool] {
        &self.stale_uli
    }

    /// The dictionary-encoded service codes of the last
    /// [`RecordBatch::resolve_codes`] call (empty until then).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_labels() {
        assert_eq!(Interface::Gn.label(), "Gn");
        assert_eq!(Interface::S5S8.label(), "S5/S8");
    }

    #[test]
    fn signatures_are_comparable() {
        assert_eq!(FlowSignature(5), FlowSignature(5));
        assert_ne!(FlowSignature(5), FlowSignature(6));
    }

    #[test]
    fn batch_round_trips_rows_and_retains_capacity_across_clear() {
        let records: Vec<SessionRecord> = (0..10)
            .map(|i| SessionRecord {
                interface: if i % 2 == 0 { Interface::Gn } else { Interface::S5S8 },
                start_hour: i as u16 * 7,
                dl_mb: i as f64 + 0.25,
                ul_mb: i as f64 * 0.5,
                commune: CommuneId(i as u32),
                signature: FlowSignature(0x1000 + i as u64),
                stale_uli: i % 3 == 0,
            })
            .collect();
        let mut batch = RecordBatch::with_capacity(4);
        assert!(batch.is_empty());
        for r in &records {
            batch.push(r);
        }
        assert_eq!(batch.len(), 10);
        let back: Vec<SessionRecord> = (0..batch.len()).map(|i| batch.row(i)).collect();
        assert_eq!(back, records);

        let cap = batch.signatures.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.signatures.capacity(), cap, "clear must keep capacity");
    }
}
