//! What the probes emit: operator-side session records.

use mobilenet_geo::CommuneId;

/// The probed core-network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Gn — between SGSN and GGSN (3G packet-switched core).
    Gn,
    /// S5/S8 — between S-GW and P-GW (4G evolved packet core).
    S5S8,
}

impl Interface {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Interface::Gn => "Gn",
            Interface::S5S8 => "S5/S8",
        }
    }
}

/// A wire-level flow signature, the classifier's input. Synthetic stand-in
/// for the transport/application-layer features a real DPI engine sees
/// (SNI, ports, payload patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowSignature(pub u64);

/// One session as recorded by a probe: volumes, timing, interface, the
/// commune derived from the ULI fix, and the flow signature awaiting
/// classification. The true service/commune are **not** part of the
/// record — the pipeline must recover them, as the real apparatus does.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Interface the record was captured on.
    pub interface: Interface,
    /// Hour-of-week of session establishment.
    pub start_hour: u16,
    /// Downlink volume, MB.
    pub dl_mb: f64,
    /// Uplink volume, MB.
    pub ul_mb: f64,
    /// Commune of the serving base station, per the ULI chain.
    pub commune: CommuneId,
    /// Flow signature for the DPI stage.
    pub signature: FlowSignature,
    /// Whether the ULI fix was stale (diagnostic, not available to the
    /// real operator; used only by collection statistics).
    pub stale_uli: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_labels() {
        assert_eq!(Interface::Gn.label(), "Gn");
        assert_eq!(Interface::S5S8.label(), "S5/S8");
    }

    #[test]
    fn signatures_are_comparable() {
        assert_eq!(FlowSignature(5), FlowSignature(5));
        assert_ne!(FlowSignature(5), FlowSignature(6));
    }
}
