//! Observability layer for the mobilenet workspace.
//!
//! The measurement pipeline (synthesis → probes → DPI → aggregation →
//! analysis) is the paper's §2 apparatus; a real packet-core collection
//! system lives and dies by per-stage counters and drop accounting. This
//! crate is that substrate for the simulator, on `std` alone:
//!
//! * **spans** — RAII wall-clock timers ([`span`]) that nest: a span
//!   started while another is active on the same thread records under the
//!   parent's path (`generate/collect/shards`);
//! * **counters** — monotonic `u64` ([`add`]) and `f64` ([`add_f64`])
//!   accumulators for session, record and byte accounting;
//! * **gauges** — last-write-wins `f64` values ([`gauge`]);
//! * **histograms** — fixed-bucket distributions ([`observe`]), e.g. the
//!   ULI localization-error displacement histogram.
//!
//! Everything funnels into one process-wide thread-safe [`Registry`];
//! [`snapshot`] returns an immutable [`Snapshot`] that renders to a
//! human-readable report ([`Snapshot::render`]) or machine-readable JSON
//! ([`Snapshot::to_json`]).
//!
//! # Determinism contract
//!
//! Counters, `f64` counters recorded from deterministic (merge-ordered)
//! contexts, and histograms are **exact**: their values are identical no
//! matter how many worker threads ran the instrumented code. Span
//! *durations* (and span counts of per-worker instrumentation such as
//! queue-wait probes) are wall-clock measurements, and gauges may
//! describe the environment itself (e.g. `par.workers`), so both are
//! thread-count-dependent by design. [`Snapshot::counts_fingerprint`]
//! renders exactly the deterministic sections, for tests that assert
//! the contract.
//!
//! # Enabling
//!
//! Collection is **off by default**: every instrumentation entry point
//! first reads one relaxed atomic and returns immediately when disabled,
//! so the instrumented hot paths pay no measurable cost. Enable with the
//! `MOBILENET_OBS` environment variable (any value other than
//! `0`/`off`/`false`; a value that looks like a path additionally names
//! the JSON report file the binaries write) or programmatically with
//! [`set_enabled`], which takes precedence over the environment.
//!
//! ```
//! mobilenet_obs::set_enabled(Some(true));
//! {
//!     let _outer = mobilenet_obs::span("stage");
//!     let _inner = mobilenet_obs::span("substep"); // records as "stage/substep"
//!     mobilenet_obs::add("stage.items", 128);
//! }
//! let snap = mobilenet_obs::snapshot();
//! assert_eq!(snap.counter("stage.items"), Some(128));
//! assert!(snap.span("stage/substep").is_some());
//! mobilenet_obs::set_enabled(None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod render;

pub use registry::{HistStat, Registry, Snapshot, SpanStat};

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Name of the environment variable that enables collection (and may name
/// the JSON output file, see [`env_output_path`]).
pub const OBS_ENV: &str = "MOBILENET_OBS";

/// Process-wide runtime override; 0 = unset, 1 = disabled, 2 = enabled.
static ENABLE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached resolution of `MOBILENET_OBS`.
static DEFAULT_ENABLED: OnceLock<bool> = OnceLock::new();

fn default_enabled() -> bool {
    *DEFAULT_ENABLED.get_or_init(|| match std::env::var(OBS_ENV) {
        Ok(v) => !matches!(v.trim(), "" | "0" | "off" | "false"),
        Err(_) => false,
    })
}

/// Whether instrumentation currently records anything: the
/// [`set_enabled`] override if set, else the `MOBILENET_OBS` environment
/// variable, else off.
#[inline]
pub fn enabled() -> bool {
    match ENABLE_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_enabled(),
        1 => false,
        _ => true,
    }
}

/// Forces collection on or off for the whole process, taking precedence
/// over `MOBILENET_OBS`; `None` restores the environment default.
pub fn set_enabled(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    ENABLE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The JSON output path carried by `MOBILENET_OBS`, if its value names a
/// file rather than a bare on/off switch.
pub fn env_output_path() -> Option<PathBuf> {
    match std::env::var(OBS_ENV) {
        Ok(v) => {
            let v = v.trim();
            if matches!(v, "" | "0" | "1" | "on" | "off" | "true" | "false") {
                None
            } else {
                Some(PathBuf::from(v))
            }
        }
        Err(_) => None,
    }
}

/// The process-wide registry every free function records into.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

thread_local! {
    /// Active span names of this thread, outermost first. Worker threads
    /// spawned inside a parallel region start with an empty stack, so
    /// spans recorded there are root-level — name them accordingly.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span timer; records its wall-clock duration (and increments
/// the span's call count) under the hierarchical path when dropped.
///
/// When collection is disabled the guard is inert — no clock read, no
/// allocation, no lock.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    inner: Option<(String, Instant)>,
}

/// Starts a span named `name`, nested under any span already active on
/// this thread.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let path = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join("/")
    });
    Span { inner: Some((path, Instant::now())) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((path, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            global().record_span(&path, ns);
        }
    }
}

/// Adds `delta` to the monotonic `u64` counter `name`.
#[inline]
pub fn add(name: &str, delta: u64) {
    if enabled() {
        global().add(name, delta);
    }
}

/// Adds `delta` to the `f64` counter `name`.
///
/// Unlike `u64` addition, floating-point accumulation is
/// order-sensitive: call this from merge-ordered (or single-threaded)
/// contexts when the value must be bit-identical across thread counts.
#[inline]
pub fn add_f64(name: &str, delta: f64) {
    if enabled() {
        global().add_f64(name, delta);
    }
}

/// Sets the gauge `name` to `value` (last write wins).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        global().gauge(name, value);
    }
}

/// Records `value` into the fixed-bucket histogram `name`.
///
/// `edges` are the inclusive upper bounds of the buckets; one overflow
/// bucket past the last edge is implicit. The first call fixes the
/// histogram's edges; later calls must pass the same edges.
#[inline]
pub fn observe(name: &str, value: f64, edges: &[f64]) {
    if enabled() {
        global().observe(name, value, edges);
    }
}

/// Records an externally measured duration under span `path` — the hook
/// for instrumentation that cannot hold a [`Span`] guard across the
/// measured region (e.g. per-worker queue-wait probes).
#[inline]
pub fn record_span_ns(path: &str, ns: u64) {
    if enabled() {
        global().record_span(path, ns);
    }
}

/// An immutable copy of everything recorded so far.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global registry (the enabled state is untouched).
pub fn reset() {
    global().reset();
}

/// Writes the current [`snapshot`] as JSON to `path`.
pub fn write_json(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global enable flag and registry are process-wide, so all tests
    /// that touch them run under this lock.
    fn with_global_obs<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        reset();
        let r = f();
        reset();
        set_enabled(None);
        r
    }

    #[test]
    fn spans_nest_on_one_thread() {
        with_global_obs(|| {
            {
                let _a = span("outer");
                {
                    let _b = span("inner");
                    let _c = span("leaf");
                }
                let _d = span("inner"); // second visit aggregates
            }
            let snap = snapshot();
            assert_eq!(snap.span("outer").unwrap().count, 1);
            assert_eq!(snap.span("outer/inner").unwrap().count, 2);
            assert_eq!(snap.span("outer/inner/leaf").unwrap().count, 1);
            assert!(snap.span("inner").is_none(), "child must not leak to root");
            // A sibling started after the tree closed is root-level again.
            drop(span("outer"));
            assert_eq!(snapshot().span("outer").unwrap().count, 2);
        });
    }

    #[test]
    fn disabled_mode_records_nothing() {
        with_global_obs(|| {
            set_enabled(Some(false));
            let _s = span("ghost");
            add("ghost.count", 5);
            add_f64("ghost.mb", 1.5);
            gauge("ghost.gauge", 2.0);
            observe("ghost.hist", 1.0, &[1.0, 2.0]);
            drop(_s);
            set_enabled(Some(true));
            let snap = snapshot();
            assert!(snap.spans.is_empty());
            assert!(snap.counters.is_empty());
            assert!(snap.fcounters.is_empty());
            assert!(snap.gauges.is_empty());
            assert!(snap.histograms.is_empty());
        });
    }

    #[test]
    fn filtered_snapshot_keeps_only_matching_prefixes() {
        with_global_obs(|| {
            add("serve.queries", 3);
            add("serve.connections", 1);
            add("netsim.ingest.records", 100);
            add("core.r2_pairs", 190);
            gauge("serve.watermark_hour", 42.0);
            gauge("par.threads", 8.0);
            drop(span("serve"));
            drop(span("collect"));
            let snap = snapshot();
            let health = snap.filtered(&["serve.", "netsim.ingest.", "serve"]);
            assert_eq!(health.counter("serve.queries"), Some(3));
            assert_eq!(health.counter("netsim.ingest.records"), Some(100));
            assert_eq!(health.counter("core.r2_pairs"), None);
            assert_eq!(health.gauge("serve.watermark_hour"), Some(42.0));
            assert_eq!(health.gauge("par.threads"), None);
            assert!(health.span("serve").is_some());
            assert!(health.span("collect").is_none());
            // Filtering an already-filtered snapshot is idempotent.
            assert_eq!(health.filtered(&["serve.", "netsim.ingest.", "serve"]), health);
        });
    }

    #[test]
    fn counter_and_histogram_merge_is_count_exact_at_1_2_8_threads() {
        // The contract the parallel pipeline relies on: u64 counters and
        // histogram bucket counts are exact sums, independent of how many
        // threads recorded them.
        const ITEMS: u64 = 10_000;
        let edges = [10.0, 100.0, 1000.0];
        let run = |threads: usize| -> Snapshot {
            let reg = Registry::new();
            let per = ITEMS as usize / threads;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let reg = &reg;
                    let edges = &edges;
                    scope.spawn(move || {
                        for i in (t * per)..((t + 1) * per) {
                            reg.add("items", 1);
                            reg.add("weighted", (i % 7) as u64);
                            reg.observe("dist", (i % 2000) as f64, edges);
                        }
                    });
                }
            });
            reg.snapshot()
        };
        let reference = run(1);
        assert_eq!(reference.counter("items"), Some(ITEMS));
        for threads in [2usize, 8] {
            let snap = run(threads);
            assert_eq!(snap.counter("items"), reference.counter("items"), "{threads} threads");
            assert_eq!(snap.counter("weighted"), reference.counter("weighted"));
            let (a, b) = (snap.histogram("dist").unwrap(), reference.histogram("dist").unwrap());
            assert_eq!(a.counts, b.counts, "{threads} threads");
            assert_eq!(a.count, b.count);
            assert_eq!(
                snap.counts_fingerprint(),
                reference.counts_fingerprint(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn histogram_buckets_values_by_upper_bound() {
        let reg = Registry::new();
        let edges = [1.0, 2.0, 4.0];
        for v in [0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 100.0] {
            reg.observe("h", v, &edges);
        }
        let h = reg.snapshot().histogram("h").unwrap().clone();
        assert_eq!(h.edges, edges);
        assert_eq!(h.counts, vec![2, 2, 2, 1]); // (≤1, ≤2, ≤4, overflow)
        assert_eq!(h.count, 7);
        assert!((h.sum - (0.5 + 1.0 + 1.5 + 2.0 + 3.9 + 4.0 + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge_folds_all_sections() {
        let a = Registry::new();
        a.add("c", 1);
        a.add_f64("f", 0.5);
        a.gauge("g", 1.0);
        a.observe("h", 1.0, &[2.0]);
        a.record_span("s", 100);
        let b = Registry::new();
        b.add("c", 2);
        b.add_f64("f", 0.25);
        b.gauge("g", 3.0);
        b.observe("h", 5.0, &[2.0]);
        b.record_span("s", 50);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("c"), Some(3));
        assert_eq!(m.fcounter("f"), Some(0.75));
        assert_eq!(m.gauge("g"), Some(3.0));
        assert_eq!(m.histogram("h").unwrap().counts, vec![1, 1]);
        let s = m.span("s").unwrap();
        assert_eq!((s.count, s.total_ns, s.max_ns), (2, 150, 100));
    }

    #[test]
    fn env_output_path_distinguishes_switches_from_paths() {
        // Pure-value helper, exercised through the parsing rules only
        // (the env var itself is owned by the harness, not this test).
        for v in ["", "0", "1", "on", "off", "true", "false"] {
            let is_switch = matches!(v, "" | "0" | "1" | "on" | "off" | "true" | "false");
            assert!(is_switch, "{v}");
        }
    }

    #[test]
    fn json_and_render_cover_every_section() {
        let reg = Registry::new();
        reg.add("pipeline.sessions", 42);
        reg.add_f64("pipeline.classified_mb", 1234.5);
        reg.gauge("par.workers", 8.0);
        reg.observe("uli_km", 2.5, &[1.0, 3.0]);
        reg.record_span("generate", 1_500_000);
        reg.record_span("generate/collect", 1_000_000);
        let snap = reg.snapshot();
        let json = snap.to_json();
        for needle in [
            "\"schema\": \"mobilenet-obs/v1\"",
            "\"pipeline.sessions\": 42",
            "\"pipeline.classified_mb\"",
            "\"par.workers\"",
            "\"uli_km\"",
            "\"generate/collect\"",
            "\"total_ms\"",
            "\"edges\"",
        ] {
            assert!(json.contains(needle), "JSON missing {needle}:\n{json}");
        }
        let text = snap.render();
        assert!(text.contains("generate"));
        assert!(text.contains("  collect"), "nested span not indented:\n{text}");
        assert!(text.contains("pipeline.sessions"));
        // Fingerprint covers counts but not wall-clock fields.
        let fp = snap.counts_fingerprint();
        assert!(fp.contains("pipeline.sessions=42"));
        assert!(!fp.contains("total_ms"));
    }
}
