//! Snapshot rendering: machine-readable JSON and the human report.

use std::fmt::Write as _;

use crate::registry::Snapshot;

/// Schema identifier embedded in every JSON report.
pub const JSON_SCHEMA: &str = "mobilenet-obs/v1";

/// Minimal JSON string escaping (metric names are plain identifiers, but
/// the format must stay valid for any input).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `f64` → JSON number (JSON has no NaN/Inf; those degrade to null).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Serializes the snapshot as a self-describing JSON object
    /// (`mobilenet-obs/v1`). Keys are sorted, so equal snapshots produce
    /// byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{JSON_SCHEMA}\",");

        out.push_str("  \"spans\": {");
        let mut first = true;
        for (path, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{ \"count\": {}, \"total_ms\": {}, \"mean_ms\": {}, \"max_ms\": {} }}",
                escape(path),
                s.count,
                number(s.total_ms()),
                number(s.mean_ms()),
                number(s.max_ns as f64 / 1e6)
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", escape(name));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"fcounters\": {");
        let mut first = true;
        for (name, v) in &self.fcounters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(name), number(*v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        let mut first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(name), number(*v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let edges: Vec<String> = h.edges.iter().map(|e| number(*e)).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            let _ = write!(
                out,
                "\n    \"{}\": {{ \"edges\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {} }}",
                escape(name),
                edges.join(", "),
                counts.join(", "),
                h.count,
                number(h.sum)
            );
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });

        out.push_str("}\n");
        out
    }

    /// A human-readable report: the span tree (indented by path depth)
    /// followed by counters, gauges and histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("observability: nothing recorded\n");
            return out;
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall clock):\n");
            for (path, s) in &self.spans {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let _ = writeln!(
                    out,
                    "  {:indent$}{name:<width$} {:>6}x {:>10.2} ms  (mean {:.2} ms, max {:.2} ms)",
                    "",
                    s.count,
                    s.total_ms(),
                    s.mean_ms(),
                    s.max_ns as f64 / 1e6,
                    indent = depth * 2,
                    width = 28usize.saturating_sub(depth * 2),
                );
            }
        }
        if !self.counters.is_empty() || !self.fcounters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<34} {v}");
            }
            for (name, v) in &self.fcounters {
                let _ = writeln!(out, "  {name:<34} {v:.3}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<34} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name} (n={}, mean={:.3}):",
                    h.count,
                    if h.count > 0 { h.sum / h.count as f64 } else { 0.0 }
                );
                for (i, c) in h.counts.iter().enumerate() {
                    let label = if i < h.edges.len() {
                        format!("<= {}", h.edges[i])
                    } else {
                        format!("> {}", h.edges.last().copied().unwrap_or(f64::INFINITY))
                    };
                    let _ = writeln!(out, "    {label:<12} {c}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = Registry::new().snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"schema\""));
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(snap.render().contains("nothing recorded"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_stay_valid_json() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert!(number(1.5e6).contains('e'));
    }
}
