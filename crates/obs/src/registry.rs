//! The thread-safe metric registry and its immutable snapshots.
//!
//! One [`Registry`] aggregates everything: recording locks a single
//! mutex, which is fine because the workspace instruments at *stage* and
//! *shard* granularity (tens to thousands of records per run), never per
//! session. Per-worker shards of a parallel region therefore merge
//! through the same ordered structure — `u64` additions commute exactly,
//! so counter and histogram values are independent of which worker
//! recorded first.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall-clock time across all runs, nanoseconds.
    pub total_ns: u64,
    /// Longest single run, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Total wall-clock time, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Mean wall-clock time per run, milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms() / self.count as f64
        }
    }
}

/// A fixed-bucket histogram: `edges[i]` is the inclusive upper bound of
/// bucket `i`; the final bucket counts everything past the last edge.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStat {
    /// Inclusive upper bounds, ascending.
    pub edges: Vec<f64>,
    /// One count per edge plus the overflow bucket
    /// (`counts.len() == edges.len() + 1`).
    pub counts: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

impl HistStat {
    fn new(edges: &[f64]) -> Self {
        HistStat {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn record(&mut self, value: f64) {
        let bucket = self
            .edges
            .iter()
            .position(|e| value <= *e)
            .unwrap_or(self.edges.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
    }
}

#[derive(Debug, Clone, Default)]
struct Inner {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    fcounters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistStat>,
}

/// A thread-safe metric store. The workspace normally uses the single
/// [`global`](crate::global) registry through the crate's free
/// functions; standalone registries exist for tests and embedding.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking recorder must not take observability down with it.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *entry_or_insert(&mut inner.counters, name, 0) += delta;
    }

    /// Adds `delta` to `f64` counter `name`.
    pub fn add_f64(&self, name: &str, delta: f64) {
        let mut inner = self.lock();
        *entry_or_insert(&mut inner.fcounters, name, 0.0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        *entry_or_insert(&mut inner.gauges, name, 0.0) = value;
    }

    /// Records `value` into histogram `name` with the given bucket edges
    /// (fixed at first use).
    pub fn observe(&self, name: &str, value: f64, edges: &[f64]) {
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(value);
            return;
        }
        let mut h = HistStat::new(edges);
        h.record(value);
        inner.histograms.insert(name.to_string(), h);
    }

    /// Folds a `ns` run into span `path`.
    pub fn record_span(&self, path: &str, ns: u64) {
        let mut inner = self.lock();
        let stat = entry_or_insert(&mut inner.spans, path, SpanStat::default());
        stat.count += 1;
        stat.total_ns += ns;
        stat.max_ns = stat.max_ns.max(ns);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            spans: inner.spans.clone(),
            counters: inner.counters.clone(),
            fcounters: inner.fcounters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Clears every metric.
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }
}

/// `BTreeMap::entry(name.to_string()).or_insert(..)` without allocating
/// when the key already exists — registries sit on hot-ish paths and
/// names repeat run after run.
fn entry_or_insert<'m, V>(map: &'m mut BTreeMap<String, V>, name: &str, default: V) -> &'m mut V {
    if !map.contains_key(name) {
        map.insert(name.to_string(), default);
    }
    map.get_mut(name).expect("key just ensured")
}

/// An immutable copy of a [`Registry`]'s state, ordered by name so every
/// rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Span statistics by hierarchical path (`a/b/c`).
    pub spans: BTreeMap<String, SpanStat>,
    /// Monotonic `u64` counters by name.
    pub counters: BTreeMap<String, u64>,
    /// `f64` counters by name.
    pub fcounters: BTreeMap<String, f64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistStat>,
}

impl Snapshot {
    /// The value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of `f64` counter `name`, if recorded.
    pub fn fcounter(&self, name: &str) -> Option<f64> {
        self.fcounters.get(name).copied()
    }

    /// The value of gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The statistics of span `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistStat> {
        self.histograms.get(name)
    }

    /// The subset of this snapshot whose metric names (and span paths)
    /// start with any of `prefixes` — how a service carves its own
    /// namespace (e.g. `serve.*` + `netsim.ingest.*`) out of the global
    /// registry for a health endpoint.
    pub fn filtered(&self, prefixes: &[&str]) -> Snapshot {
        fn keep<V: Clone>(map: &BTreeMap<String, V>, prefixes: &[&str]) -> BTreeMap<String, V> {
            map.iter()
                .filter(|(k, _)| prefixes.iter().any(|p| k.starts_with(p)))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        }
        Snapshot {
            spans: keep(&self.spans, prefixes),
            counters: keep(&self.counters, prefixes),
            fcounters: keep(&self.fcounters, prefixes),
            gauges: keep(&self.gauges, prefixes),
            histograms: keep(&self.histograms, prefixes),
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.fcounters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters and histograms add, gauges
    /// take `other`'s value, spans accumulate. Histograms whose bucket
    /// edges disagree adopt `other`'s layout wholesale.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *entry_or_insert(&mut self.counters, k, 0) += v;
        }
        for (k, v) in &other.fcounters {
            *entry_or_insert(&mut self.fcounters, k, 0.0) += v;
        }
        for (k, v) in &other.gauges {
            *entry_or_insert(&mut self.gauges, k, 0.0) = *v;
        }
        for (k, v) in &other.spans {
            let stat = entry_or_insert(&mut self.spans, k, SpanStat::default());
            stat.count += v.count;
            stat.total_ns += v.total_ns;
            stat.max_ns = stat.max_ns.max(v.max_ns);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) if h.edges == v.edges => {
                    for (a, b) in h.counts.iter_mut().zip(v.counts.iter()) {
                        *a += b;
                    }
                    h.count += v.count;
                    h.sum += v.sum;
                }
                _ => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// A deterministic text rendering of the **count-exact** sections:
    /// counters, `f64` counters, and histogram bucket counts. Spans are
    /// excluded (durations are wall-clock, and per-worker probes make
    /// span *counts* scheduling-dependent); gauges are excluded too
    /// (last-write-wins state such as worker counts is environment
    /// description, not workload accounting). Two runs of the same
    /// workload must produce identical fingerprints regardless of thread
    /// count.
    pub fn counts_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k}={v}");
        }
        for (k, v) in &self.fcounters {
            let _ = writeln!(out, "fcounter {k}={:x}", v.to_bits());
        }
        for (k, v) in &self.histograms {
            let _ = writeln!(out, "hist {k}={:?} sum={:x}", v.counts, v.sum.to_bits());
        }
        out
    }
}
