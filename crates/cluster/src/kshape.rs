//! k-Shape clustering (Paparrizos & Gravano, SIGMOD 2015).
//!
//! k-Shape is a k-means-style loop specialized for time-series shape:
//!
//! * **assignment** uses the shape-based distance (SBD), i.e. one minus the
//!   maximum coefficient-normalized cross-correlation over all shifts;
//! * **refinement** computes each cluster's centroid by *shape
//!   extraction*: members are aligned to the current centroid at their
//!   optimal shift, and the new centroid is the dominant eigenvector of
//!   the centred scatter matrix `Qᵀ(Σ yᵢyᵢᵀ)Q` — the shape maximizing the
//!   summed squared cross-correlation with all members.
//!
//! Inputs are z-normalized internally, as the algorithm requires.
//!
//! # Kernel layout
//!
//! All distances go through one [`SbdEngine`] sized for the series length:
//! every series' spectrum is transformed **once** up front, every
//! centroid's spectrum **once per round**, and each SBD evaluation after
//! that is a single inverse FFT into reused scratch — zero per-call heap
//! allocation in the assignment/repair loops. Shape extraction aligns
//! members into one flat scratch buffer reused across iterations, and
//! runs power iteration against the *implicit* operator
//! `Q(Σ yᵢyᵢᵀ)Q · v` (two passes over the aligned members, `O(|members|·m)`
//! per matvec) when the cluster has fewer members than time points,
//! falling back to the dense `m × m` scatter matrix otherwise — see
//! `DESIGN.md` §3.12 for the numerical contract.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobilenet_timeseries::norm::z_normalize;
use mobilenet_timeseries::sbd::{SbdEngine, SbdScratch, Spectrum};

use crate::linalg::{dominant_eigenpair, dominant_eigenpair_of, SquareMatrix};
use crate::Clustering;

/// Upper bound on refinement/assignment rounds.
const MAX_ITER: usize = 100;

/// Which scatter/eigen kernel shape extraction uses. Production always
/// goes through `Auto`; the forced variants exist so tests can pit the
/// two kernels against each other on identical inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))]
enum ExtractionMode {
    /// Implicit operator when `|members| < m`, dense otherwise.
    Auto,
    /// Always materialize the dense centred scatter matrix.
    Dense,
    /// Always apply the implicit operator.
    Implicit,
}

/// Runs k-Shape on `series` (equal lengths) with `k` clusters.
///
/// `seed` controls the initial random assignment; the rest of the
/// algorithm is deterministic.
///
/// # Panics
///
/// Panics if `series` is empty, lengths differ, `k == 0` or
/// `k > series.len()`.
pub fn kshape(series: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
    kshape_mode(series, k, seed, ExtractionMode::Auto)
}

fn kshape_mode(series: &[Vec<f64>], k: usize, seed: u64, mode: ExtractionMode) -> Clustering {
    validate(series, k);
    let n = series.len();
    let m = series[0].len();
    let z: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s)).collect();

    // One plan and one spectrum per series for the whole run.
    let engine = SbdEngine::new(m);
    let z_specs: Vec<Spectrum> = z.iter().map(|s| engine.spectrum(s)).collect();
    let mut sbd_scratch = SbdScratch::new();
    let mut shape_scratch = ShapeScratch::default();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b73_6861_7065_3031); // "kshape01"
    // Fully random initial assignment, as in the original algorithm; the
    // empty-cluster repair below guarantees every cluster ends populated.
    // (Forcing a deterministic prefix split here would make restarts
    // near-identical and defeat the best-of-restarts search.)
    let mut assignments: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];
    let mut cent_specs: Vec<Spectrum> = centroids.iter().map(|c| engine.spectrum(c)).collect();
    let mut members: Vec<usize> = Vec::with_capacity(n);

    let mut iterations = 0;
    let mut converged = false;
    for iter in 0..MAX_ITER {
        iterations = iter + 1;

        // Refinement. The alignment reference is the previous round's
        // centroid, whose spectrum is still cached in `cent_specs`.
        for c in 0..k {
            members.clear();
            members.extend((0..n).filter(|&i| assignments[i] == c));
            if members.is_empty() {
                continue; // handled after assignment
            }
            centroids[c] = shape_extraction(
                &engine,
                &z,
                &z_specs,
                &members,
                &cent_specs[c],
                mode,
                &mut sbd_scratch,
                &mut shape_scratch,
            );
        }
        // One forward transform per centroid per round, reused across all
        // n assignment distances below (plus the repair pass).
        for (cent, spec) in centroids.iter().zip(cent_specs.iter_mut()) {
            engine.spectrum_into(cent, spec);
        }

        // Assignment. A fresh/empty centroid is all-zero, hence flat, so
        // the engine yields the neutral distance 1.0 and it can still
        // attract members on the first round.
        let mut changed = false;
        for (i, zi_spec) in z_specs.iter().enumerate() {
            let mut best = (f64::INFINITY, assignments[i]);
            for (c, spec) in cent_specs.iter().enumerate() {
                let d = engine.sbd(zi_spec, spec, &mut sbd_scratch);
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 != assignments[i] {
                assignments[i] = best.1;
                changed = true;
            }
        }

        // Empty-cluster repair: move the point farthest from its centroid
        // into each empty cluster (deterministic; `total_cmp` so a
        // NaN-poisoned distance cannot panic the selection).
        let mut sizes = vec![0usize; k];
        for &a in &assignments {
            sizes[a] += 1;
        }
        for c in 0..k {
            if sizes[c] > 0 {
                continue;
            }
            let (worst, _) = assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| sizes[a] > 1)
                .map(|(i, &a)| {
                    let d = engine.sbd(&z_specs[i], &cent_specs[a], &mut sbd_scratch);
                    (i, d)
                })
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("some cluster has more than one member");
            sizes[assignments[worst]] -= 1;
            assignments[worst] = c;
            sizes[c] = 1;
            changed = true;
        }

        if !changed {
            converged = true;
            break;
        }
    }

    Clustering { assignments, centroids, iterations, converged }
}

/// Buffers reused across shape-extraction calls: the flat aligned-member
/// matrix and the two temporaries of the implicit operator.
#[derive(Debug, Default)]
struct ShapeScratch {
    aligned: Vec<f64>,
    t: Vec<f64>,
    u: Vec<f64>,
}

/// Shape extraction: the new centroid of a cluster, given the members'
/// cached spectra and the previous centroid's spectrum as alignment
/// reference.
///
/// A flat reference (the all-zero initial centroid) aligns at shift 0,
/// i.e. members are taken as-is.
#[allow(clippy::too_many_arguments)]
fn shape_extraction(
    engine: &SbdEngine,
    z: &[Vec<f64>],
    z_specs: &[Spectrum],
    members: &[usize],
    reference: &Spectrum,
    mode: ExtractionMode,
    sbd_scratch: &mut SbdScratch,
    scratch: &mut ShapeScratch,
) -> Vec<f64> {
    let m = engine.series_len();
    let nm = members.len();
    scratch.aligned.resize(nm * m, 0.0);
    for (row, &idx) in members.iter().enumerate() {
        let a = engine.ncc_c(reference, &z_specs[idx], sbd_scratch);
        shift_into(&z[idx], a.shift, &mut scratch.aligned[row * m..(row + 1) * m]);
    }
    let aligned = &scratch.aligned[..nm * m];

    let implicit = match mode {
        ExtractionMode::Auto => nm < m,
        ExtractionMode::Dense => false,
        ExtractionMode::Implicit => true,
    };
    let pair = if implicit {
        // Power iteration against the implicit operator
        // `w = Q (Σ yᵢ yᵢᵀ) Q v` with `Q = I − (1/m)·11ᵀ`: centring a
        // vector is subtracting its mean, and the scatter product is two
        // passes over the aligned members — `O(|members|·m)` per matvec
        // instead of `O(m²)`, with no `m × m` matrix materialized.
        let mf = m as f64;
        scratch.t.resize(m, 0.0);
        scratch.u.resize(m, 0.0);
        let (t, u) = (&mut scratch.t, &mut scratch.u);
        dominant_eigenpair_of(
            m,
            |v, w| {
                let mean = v.iter().sum::<f64>() / mf;
                for (ti, vi) in t.iter_mut().zip(v.iter()) {
                    *ti = vi - mean;
                }
                u.iter_mut().for_each(|x| *x = 0.0);
                for row in 0..nm {
                    let y = &aligned[row * m..(row + 1) * m];
                    let a: f64 = y.iter().zip(t.iter()).map(|(yi, ti)| yi * ti).sum();
                    if a != 0.0 {
                        for (uj, yj) in u.iter_mut().zip(y.iter()) {
                            *uj += yj * a;
                        }
                    }
                }
                let mean_u = u.iter().sum::<f64>() / mf;
                for (wi, ui) in w.iter_mut().zip(u.iter()) {
                    *wi = ui - mean_u;
                }
            },
            300,
            1e-10,
        )
    } else {
        // Scatter matrix S = Σ yᵀy, centred: M = Q S Q.
        let mut s_mat = SquareMatrix::zeros(m);
        for row in 0..nm {
            let y = &aligned[row * m..(row + 1) * m];
            for i in 0..m {
                if y[i] == 0.0 {
                    continue;
                }
                for j in 0..m {
                    s_mat.add(i, j, y[i] * y[j]);
                }
            }
        }
        let centred = center_both_sides(&s_mat);
        dominant_eigenpair(&centred, 300, 1e-10)
    };

    match pair {
        None => vec![0.0; m],
        Some(pair) => {
            let mut v = pair.vector;
            // Eigenvector sign is arbitrary: pick the orientation closer to
            // the first member.
            let first = &aligned[..m];
            let d_pos = sq_dist(first, &v);
            let neg: Vec<f64> = v.iter().map(|x| -x).collect();
            let d_neg = sq_dist(first, &neg);
            if d_neg < d_pos {
                v = neg;
            }
            z_normalize(&v)
        }
    }
}

/// [`mobilenet_timeseries::sbd::shift_series`] into a caller-owned slice.
fn shift_into(y: &[f64], shift: isize, out: &mut [f64]) {
    let n = y.len();
    for (i, o) in out.iter_mut().enumerate() {
        let src = i as isize - shift;
        *o = if src >= 0 && (src as usize) < n { y[src as usize] } else { 0.0 };
    }
}

/// `Q S Q` with `Q = I − (1/m)·1` — subtracts row and column means and adds
/// back the grand mean.
fn center_both_sides(s: &SquareMatrix) -> SquareMatrix {
    let m = s.n();
    let mf = m as f64;
    let mut row_mean = vec![0.0; m];
    let mut col_mean = vec![0.0; m];
    let mut grand = 0.0;
    for (i, rm) in row_mean.iter_mut().enumerate() {
        for (j, cm) in col_mean.iter_mut().enumerate() {
            let v = s.get(i, j);
            *rm += v;
            *cm += v;
            grand += v;
        }
    }
    for v in row_mean.iter_mut() {
        *v /= mf;
    }
    for v in col_mean.iter_mut() {
        *v /= mf;
    }
    grand /= mf * mf;
    let mut out = SquareMatrix::zeros(m);
    for (i, &rm) in row_mean.iter().enumerate() {
        for (j, &cm) in col_mean.iter().enumerate() {
            out.set(i, j, s.get(i, j) - rm - cm + grand);
        }
    }
    out
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn validate(series: &[Vec<f64>], k: usize) {
    assert!(!series.is_empty(), "cannot cluster zero series");
    let m = series[0].len();
    assert!(m > 0, "series must be non-empty");
    assert!(series.iter().all(|s| s.len() == m), "series lengths must match");
    assert!(k >= 1 && k <= series.len(), "k must be in 1..=n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobilenet_timeseries::sbd::shift_series;

    /// Three distinct shapes with shifts and noise.
    fn labelled_shapes(per_class: usize, m: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for i in 0..per_class {
                let shift = (i * 3) % 7;
                let s: Vec<f64> = (0..m)
                    .map(|t| {
                        let x = (t + shift) as f64;
                        let noise = ((t * 7 + i * 13 + class * 29) % 11) as f64 / 110.0;
                        let v = match class {
                            0 => (x * 0.3).sin(),
                            1 => (x * 0.3).sin().abs() * 2.0 - 1.0, // rectified
                            _ => {
                                // Square-ish wave.
                                if ((x * 0.15).sin()) > 0.0 {
                                    1.0
                                } else {
                                    -1.0
                                }
                            }
                        };
                        v + noise
                    })
                    .collect();
                series.push(s);
                labels.push(class);
            }
        }
        (series, labels)
    }

    /// Fraction of pairs on which two labelings agree (Rand index).
    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_a = a[i] == a[j];
                let same_b = b[i] == b[j];
                if same_a == same_b {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_well_separated_shape_classes() {
        let (series, labels) = labelled_shapes(8, 64);
        let best = (0..5)
            .map(|seed| kshape(&series, 3, seed))
            .map(|c| rand_index(&c.assignments, &labels))
            .fold(0.0f64, f64::max);
        assert!(best > 0.85, "best Rand index {best}");
    }

    #[test]
    fn is_shift_invariant_in_assignment() {
        // Two classes that differ only by shape, members shifted copies.
        // Compact-support pulses shift exactly under zero-fill.
        let bump = |t: f64, c: f64, w: f64| (-(t - c) * (t - c) / (2.0 * w * w)).exp();
        let base_a: Vec<f64> = (0..48).map(|t| bump(t as f64, 10.0, 2.5)).collect();
        let base_b: Vec<f64> = (0..48)
            .map(|t| bump(t as f64, 8.0, 1.2) - bump(t as f64, 16.0, 1.2))
            .collect();
        let mut series = Vec::new();
        for shift in [0isize, 5, 11] {
            series.push(shift_series(&base_a, shift));
            series.push(shift_series(&base_b, shift));
        }
        let c = kshape(&series, 2, 3);
        // All A-shaped in one cluster, all B-shaped in the other.
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[0], c.assignments[4]);
        assert_eq!(c.assignments[1], c.assignments[3]);
        assert_eq!(c.assignments[1], c.assignments[5]);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let (series, _) = labelled_shapes(2, 32);
        let c = kshape(&series, series.len(), 1);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert!(sizes.iter().all(|&s| s == 1), "sizes {sizes:?}");
    }

    #[test]
    fn k_equals_one_groups_everything() {
        let (series, _) = labelled_shapes(3, 32);
        let c = kshape(&series, 1, 1);
        assert!(c.assignments.iter().all(|&a| a == 0));
        assert_eq!(c.k(), 1);
        // Centroid is z-normalized (unit variance).
        let var: f64 =
            c.centroids[0].iter().map(|x| x * x).sum::<f64>() / c.centroids[0].len() as f64;
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_cluster_is_left_empty() {
        let (series, _) = labelled_shapes(4, 40);
        for k in 2..=6 {
            let c = kshape(&series, k, 7);
            assert!(c.sizes().iter().all(|&s| s > 0), "k={k}: {:?}", c.sizes());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (series, _) = labelled_shapes(5, 48);
        let a = kshape(&series, 3, 42);
        let b = kshape(&series, 3, 42);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn converges_within_the_cap() {
        let (series, _) = labelled_shapes(6, 48);
        let c = kshape(&series, 3, 0);
        assert!(c.converged, "did not converge in {} iterations", c.iterations);
        assert!(c.iterations < MAX_ITER);
    }

    #[test]
    fn dense_and_implicit_extraction_agree() {
        // Both kernels compute the dominant eigenvector of the same
        // operator; they differ only in floating-point summation order, so
        // the extracted shapes must agree to numerical tolerance and the
        // full runs must produce the same partition.
        let (series, _) = labelled_shapes(5, 24); // 15 members > m in k=1 runs? no: per cluster ≤ 15 < 24
        for seed in 0..3 {
            let dense = kshape_mode(&series, 3, seed, ExtractionMode::Dense);
            let imp = kshape_mode(&series, 3, seed, ExtractionMode::Implicit);
            assert_eq!(dense.assignments, imp.assignments, "seed {seed}");
            assert_eq!(dense.iterations, imp.iterations, "seed {seed}");
            for (cd, ci) in dense.centroids.iter().zip(imp.centroids.iter()) {
                for (a, b) in cd.iter().zip(ci.iter()) {
                    assert!((a - b).abs() < 1e-6, "centroid drift {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn nan_bearing_series_does_not_panic() {
        // A poisoned series must not panic the farthest-point selection in
        // empty-cluster repair (total_cmp convention from PR 3) nor the
        // assignment loop; the run still terminates with a full partition.
        let (mut series, _) = labelled_shapes(4, 40);
        series[3][7] = f64::NAN;
        for k in [2, 4, 6] {
            let c = kshape(&series, k, 11);
            assert_eq!(c.assignments.len(), series.len());
            assert!(c.assignments.iter().all(|&a| a < k));
        }
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_zero_is_rejected() {
        kshape(&[vec![1.0, 2.0]], 0, 0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn ragged_input_is_rejected() {
        kshape(&[vec![1.0, 2.0], vec![1.0]], 1, 0);
    }
}
