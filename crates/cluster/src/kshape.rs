//! k-Shape clustering (Paparrizos & Gravano, SIGMOD 2015).
//!
//! k-Shape is a k-means-style loop specialized for time-series shape:
//!
//! * **assignment** uses the shape-based distance (SBD), i.e. one minus the
//!   maximum coefficient-normalized cross-correlation over all shifts;
//! * **refinement** computes each cluster's centroid by *shape
//!   extraction*: members are aligned to the current centroid at their
//!   optimal shift, and the new centroid is the dominant eigenvector of
//!   the centred scatter matrix `Qᵀ(Σ yᵢyᵢᵀ)Q` — the shape maximizing the
//!   summed squared cross-correlation with all members.
//!
//! Inputs are z-normalized internally, as the algorithm requires.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobilenet_timeseries::norm::z_normalize;
use mobilenet_timeseries::sbd::{ncc_c, shape_based_distance, shift_series};

use crate::linalg::{dominant_eigenpair, SquareMatrix};
use crate::Clustering;

/// Upper bound on refinement/assignment rounds.
const MAX_ITER: usize = 100;

/// Runs k-Shape on `series` (equal lengths) with `k` clusters.
///
/// `seed` controls the initial random assignment; the rest of the
/// algorithm is deterministic.
///
/// # Panics
///
/// Panics if `series` is empty, lengths differ, `k == 0` or
/// `k > series.len()`.
pub fn kshape(series: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
    validate(series, k);
    let n = series.len();
    let m = series[0].len();
    let z: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s)).collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b73_6861_7065_3031); // "kshape01"
    // Fully random initial assignment, as in the original algorithm; the
    // empty-cluster repair below guarantees every cluster ends populated.
    // (Forcing a deterministic prefix split here would make restarts
    // near-identical and defeat the best-of-restarts search.)
    let mut assignments: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];

    let mut iterations = 0;
    let mut converged = false;
    for iter in 0..MAX_ITER {
        iterations = iter + 1;

        // Refinement.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&[f64]> = assignments
                .iter()
                .zip(z.iter())
                .filter(|(&a, _)| a == c)
                .map(|(_, s)| s.as_slice())
                .collect();
            if members.is_empty() {
                continue; // handled after assignment
            }
            *centroid = shape_extraction(&members, centroid);
        }

        // Assignment.
        let mut changed = false;
        for (i, zi) in z.iter().enumerate() {
            let mut best = (f64::INFINITY, assignments[i]);
            for (c, centroid) in centroids.iter().enumerate() {
                let d = if centroid.iter().all(|v| *v == 0.0) {
                    // Fresh/empty centroid: neutral distance so it can
                    // still attract members on the first round.
                    1.0
                } else {
                    shape_based_distance(zi, centroid)
                };
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 != assignments[i] {
                assignments[i] = best.1;
                changed = true;
            }
        }

        // Empty-cluster repair: move the point farthest from its centroid
        // into each empty cluster (deterministic).
        let mut sizes = vec![0usize; k];
        for &a in &assignments {
            sizes[a] += 1;
        }
        for c in 0..k {
            if sizes[c] > 0 {
                continue;
            }
            let (worst, _) = assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| sizes[a] > 1)
                .map(|(i, &a)| {
                    let d = shape_based_distance(&z[i], &centroids[a]);
                    (i, d)
                })
                .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
                .expect("some cluster has more than one member");
            sizes[assignments[worst]] -= 1;
            assignments[worst] = c;
            sizes[c] = 1;
            changed = true;
        }

        if !changed {
            converged = true;
            break;
        }
    }

    Clustering { assignments, centroids, iterations, converged }
}

/// Shape extraction: the new centroid of a set of (z-normalized) members,
/// given the previous centroid as alignment reference.
fn shape_extraction(members: &[&[f64]], reference: &[f64]) -> Vec<f64> {
    let m = reference.len();
    // Align members to the reference (a zero reference means no alignment).
    let aligned: Vec<Vec<f64>> = members
        .iter()
        .map(|s| {
            if reference.iter().all(|v| *v == 0.0) {
                s.to_vec()
            } else {
                let a = ncc_c(reference, s);
                shift_series(s, a.shift)
            }
        })
        .collect();

    // Scatter matrix S = Σ yᵀy, centred: M = Q S Q with Q = I − 1/m.
    let mut s_mat = SquareMatrix::zeros(m);
    for y in &aligned {
        for i in 0..m {
            if y[i] == 0.0 {
                continue;
            }
            for j in 0..m {
                s_mat.add(i, j, y[i] * y[j]);
            }
        }
    }
    let centred = center_both_sides(&s_mat);

    match dominant_eigenpair(&centred, 300, 1e-10) {
        None => vec![0.0; m],
        Some(pair) => {
            let mut v = pair.vector;
            // Eigenvector sign is arbitrary: pick the orientation closer to
            // the first member.
            let d_pos = sq_dist(&aligned[0], &v);
            let neg: Vec<f64> = v.iter().map(|x| -x).collect();
            let d_neg = sq_dist(&aligned[0], &neg);
            if d_neg < d_pos {
                v = neg;
            }
            z_normalize(&v)
        }
    }
}

/// `Q S Q` with `Q = I − (1/m)·1` — subtracts row and column means and adds
/// back the grand mean.
fn center_both_sides(s: &SquareMatrix) -> SquareMatrix {
    let m = s.n();
    let mf = m as f64;
    let mut row_mean = vec![0.0; m];
    let mut col_mean = vec![0.0; m];
    let mut grand = 0.0;
    for (i, rm) in row_mean.iter_mut().enumerate() {
        for (j, cm) in col_mean.iter_mut().enumerate() {
            let v = s.get(i, j);
            *rm += v;
            *cm += v;
            grand += v;
        }
    }
    for v in row_mean.iter_mut() {
        *v /= mf;
    }
    for v in col_mean.iter_mut() {
        *v /= mf;
    }
    grand /= mf * mf;
    let mut out = SquareMatrix::zeros(m);
    for (i, &rm) in row_mean.iter().enumerate() {
        for (j, &cm) in col_mean.iter().enumerate() {
            out.set(i, j, s.get(i, j) - rm - cm + grand);
        }
    }
    out
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn validate(series: &[Vec<f64>], k: usize) {
    assert!(!series.is_empty(), "cannot cluster zero series");
    let m = series[0].len();
    assert!(m > 0, "series must be non-empty");
    assert!(series.iter().all(|s| s.len() == m), "series lengths must match");
    assert!(k >= 1 && k <= series.len(), "k must be in 1..=n");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three distinct shapes with shifts and noise.
    fn labelled_shapes(per_class: usize, m: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for i in 0..per_class {
                let shift = (i * 3) % 7;
                let s: Vec<f64> = (0..m)
                    .map(|t| {
                        let x = (t + shift) as f64;
                        let noise = ((t * 7 + i * 13 + class * 29) % 11) as f64 / 110.0;
                        let v = match class {
                            0 => (x * 0.3).sin(),
                            1 => (x * 0.3).sin().abs() * 2.0 - 1.0, // rectified
                            _ => {
                                // Square-ish wave.
                                if ((x * 0.15).sin()) > 0.0 {
                                    1.0
                                } else {
                                    -1.0
                                }
                            }
                        };
                        v + noise
                    })
                    .collect();
                series.push(s);
                labels.push(class);
            }
        }
        (series, labels)
    }

    /// Fraction of pairs on which two labelings agree (Rand index).
    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_a = a[i] == a[j];
                let same_b = b[i] == b[j];
                if same_a == same_b {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_well_separated_shape_classes() {
        let (series, labels) = labelled_shapes(8, 64);
        let best = (0..5)
            .map(|seed| kshape(&series, 3, seed))
            .map(|c| rand_index(&c.assignments, &labels))
            .fold(0.0f64, f64::max);
        assert!(best > 0.85, "best Rand index {best}");
    }

    #[test]
    fn is_shift_invariant_in_assignment() {
        // Two classes that differ only by shape, members shifted copies.
        // Compact-support pulses shift exactly under zero-fill.
        let bump = |t: f64, c: f64, w: f64| (-(t - c) * (t - c) / (2.0 * w * w)).exp();
        let base_a: Vec<f64> = (0..48).map(|t| bump(t as f64, 10.0, 2.5)).collect();
        let base_b: Vec<f64> = (0..48)
            .map(|t| bump(t as f64, 8.0, 1.2) - bump(t as f64, 16.0, 1.2))
            .collect();
        let mut series = Vec::new();
        for shift in [0isize, 5, 11] {
            series.push(shift_series(&base_a, shift));
            series.push(shift_series(&base_b, shift));
        }
        let c = kshape(&series, 2, 3);
        // All A-shaped in one cluster, all B-shaped in the other.
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[0], c.assignments[4]);
        assert_eq!(c.assignments[1], c.assignments[3]);
        assert_eq!(c.assignments[1], c.assignments[5]);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let (series, _) = labelled_shapes(2, 32);
        let c = kshape(&series, series.len(), 1);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert!(sizes.iter().all(|&s| s == 1), "sizes {sizes:?}");
    }

    #[test]
    fn k_equals_one_groups_everything() {
        let (series, _) = labelled_shapes(3, 32);
        let c = kshape(&series, 1, 1);
        assert!(c.assignments.iter().all(|&a| a == 0));
        assert_eq!(c.k(), 1);
        // Centroid is z-normalized (unit variance).
        let var: f64 =
            c.centroids[0].iter().map(|x| x * x).sum::<f64>() / c.centroids[0].len() as f64;
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_cluster_is_left_empty() {
        let (series, _) = labelled_shapes(4, 40);
        for k in 2..=6 {
            let c = kshape(&series, k, 7);
            assert!(c.sizes().iter().all(|&s| s > 0), "k={k}: {:?}", c.sizes());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (series, _) = labelled_shapes(5, 48);
        let a = kshape(&series, 3, 42);
        let b = kshape(&series, 3, 42);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn converges_within_the_cap() {
        let (series, _) = labelled_shapes(6, 48);
        let c = kshape(&series, 3, 0);
        assert!(c.converged, "did not converge in {} iterations", c.iterations);
        assert!(c.iterations < MAX_ITER);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_zero_is_rejected() {
        kshape(&[vec![1.0, 2.0]], 0, 0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn ragged_input_is_rejected() {
        kshape(&[vec![1.0, 2.0], vec![1.0]], 1, 0);
    }
}
