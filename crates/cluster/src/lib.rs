//! Time-series clustering for the `mobilenet` workspace.
//!
//! §4 of the paper attempts to group the 20 selected services by the shape
//! of their weekly time series, using **k-Shape** — "the current
//! state-of-the-art unsupervised technique for time series clustering" —
//! over all candidate `k`, ranked by the **Davies-Bouldin**, **modified
//! Davies-Bouldin (DB*)**, **Dunn** and **Silhouette** indices (Figure 5).
//! The outcome is famously inconclusive: quality degrades monotonically
//! with `k` and no grouping is stable, which the paper reads as evidence
//! that every service has unique temporal dynamics.
//!
//! This crate reimplements the machinery from scratch:
//!
//! * [`kshape`](mod@kshape) — the full k-Shape loop: SBD assignment and shape
//!   extraction (dominant eigenvector of the centred aligned-scatter
//!   matrix, via power iteration).
//! * [`kmeans`](mod@kmeans) — Lloyd's algorithm on z-normalized series, the baseline
//!   the ablation benches compare against.
//! * [`indices`] — the four quality indices, parametric in the distance.
//! * [`linalg`] — the small dense-matrix kernel (power iteration) that
//!   shape extraction needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod indices;
pub mod kmeans;
pub mod kshape;
pub mod linalg;

pub use hierarchy::{agglomerate, Dendrogram, Linkage};
pub use indices::{
    davies_bouldin, davies_bouldin_from, davies_bouldin_star, davies_bouldin_star_from, dunn,
    dunn_from, silhouette, silhouette_from,
};
#[doc(inline)]
pub use kmeans::kmeans;
#[doc(inline)]
pub use kshape::kshape;

/// A clustering of `n` series into `k` groups.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster id of each input series, in `0..k`.
    pub assignments: Vec<usize>,
    /// One centroid per cluster (same length as the input series).
    pub centroids: Vec<Vec<f64>>,
    /// Number of iterations until convergence (or the cap).
    pub iterations: usize,
    /// Whether the loop converged before hitting the iteration cap.
    pub converged: bool,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Indices of the members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_and_sizes_are_consistent() {
        let c = Clustering {
            assignments: vec![0, 1, 0, 2, 1],
            centroids: vec![vec![0.0], vec![0.0], vec![0.0]],
            iterations: 1,
            converged: true,
        };
        assert_eq!(c.k(), 3);
        assert_eq!(c.members(0), vec![0, 2]);
        assert_eq!(c.members(2), vec![3]);
        assert_eq!(c.sizes(), vec![2, 2, 1]);
    }
}
