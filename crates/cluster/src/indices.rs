//! Cluster-quality indices.
//!
//! Figure 5 of the paper ranks k-shape outputs for every `k` with four
//! indices — **Davies-Bouldin** and **modified Davies-Bouldin (DB\*)**
//! (minimum is best) plus **Dunn** and **Silhouette** (maximum is best) —
//! a representative selection from Milligan & Cooper's classic survey.
//! All four are implemented parametrically in the distance function so the
//! same code ranks SBD-based (k-shape) and Euclidean (k-means)
//! clusterings.
//!
//! Each index also has a `_from` variant consuming **precomputed distance
//! tables** instead of a distance closure. The closure forms are thin
//! wrappers that materialize the tables and delegate, so the two forms are
//! bit-identical; the `_from` forms exist so batched callers (the Fig-5
//! sweep) can fill the tables once from cached spectra and score many
//! clusterings without recomputing a single distance. Because a distance
//! need not be symmetric at the bit level (SBD's FFT evaluates
//! `d(x, y)` and `d(y, x)` in different orders), the tables are **ordered**:
//! entry `[i][j]` must hold the distance as evaluated with `i` as the first
//! argument, which is the orientation the original loops used.

use crate::Clustering;

/// Average distance of each cluster's members to its centroid, from the
/// per-series distance-to-own-centroid table.
fn scatter_from(own_dist: &[f64], clustering: &Clustering) -> Vec<f64> {
    let k = clustering.k();
    let mut sums = vec![0.0; k];
    let mut counts = vec![0usize; k];
    for (&d, &a) in own_dist.iter().zip(clustering.assignments.iter()) {
        sums[a] += d;
        counts[a] += 1;
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// `own_dist[i] = dist(series[i], centroid_of(i))`.
fn own_distances<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    clustering: &Clustering,
    dist: &D,
) -> Vec<f64> {
    series
        .iter()
        .zip(clustering.assignments.iter())
        .map(|(s, &a)| dist(s, &clustering.centroids[a]))
        .collect()
}

/// Ordered `k × k` centroid-centroid table; the (never-read) diagonal is 0.
fn centroid_distances<D: Fn(&[f64], &[f64]) -> f64>(
    clustering: &Clustering,
    dist: &D,
) -> Vec<Vec<f64>> {
    let k = clustering.k();
    let mut t = vec![vec![0.0; k]; k];
    for (i, row) in t.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = dist(&clustering.centroids[i], &clustering.centroids[j]);
            }
        }
    }
    t
}

/// Ordered `n × n` series-series table; the (never-read) diagonal is 0.
fn pairwise_distances<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    dist: &D,
) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut t = vec![vec![0.0; n]; n];
    for (i, row) in t.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            if i != j {
                *v = dist(&series[i], &series[j]);
            }
        }
    }
    t
}

/// Davies-Bouldin index (lower is better):
/// `DB = (1/k) Σᵢ maxⱼ≠ᵢ (Sᵢ + Sⱼ) / d(cᵢ, cⱼ)`.
///
/// Returns `f64::INFINITY` when two centroids coincide; `k < 2` is
/// rejected because the index is undefined there.
pub fn davies_bouldin<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    clustering: &Clustering,
    dist: D,
) -> f64 {
    davies_bouldin_from(
        &own_distances(series, clustering, &dist),
        &centroid_distances(clustering, &dist),
        clustering,
    )
}

/// [`davies_bouldin`] from tables: `own_dist[i]` is each series' distance
/// to its own centroid, `centroid_dist[i][j]` the ordered centroid pair
/// distance.
pub fn davies_bouldin_from(
    own_dist: &[f64],
    centroid_dist: &[Vec<f64>],
    clustering: &Clustering,
) -> f64 {
    let k = clustering.k();
    assert!(k >= 2, "Davies-Bouldin requires k >= 2");
    assert_eq!(own_dist.len(), clustering.assignments.len());
    assert_eq!(centroid_dist.len(), k);
    let s = scatter_from(own_dist, clustering);
    let mut total = 0.0;
    for i in 0..k {
        let mut worst = 0.0f64;
        for j in 0..k {
            if i == j {
                continue;
            }
            let sep = centroid_dist[i][j];
            let r = if sep > 0.0 { (s[i] + s[j]) / sep } else { f64::INFINITY };
            worst = worst.max(r);
        }
        total += worst;
    }
    total / k as f64
}

/// Modified Davies-Bouldin index DB\* (Kim & Ramakrishna; lower is
/// better): the worst *cohesion* pair over the best *separation*,
/// `DB* = (1/k) Σᵢ [maxⱼ≠ᵢ (Sᵢ + Sⱼ)] / [minⱼ≠ᵢ d(cᵢ, cⱼ)]`.
pub fn davies_bouldin_star<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    clustering: &Clustering,
    dist: D,
) -> f64 {
    davies_bouldin_star_from(
        &own_distances(series, clustering, &dist),
        &centroid_distances(clustering, &dist),
        clustering,
    )
}

/// [`davies_bouldin_star`] from the same tables as
/// [`davies_bouldin_from`].
pub fn davies_bouldin_star_from(
    own_dist: &[f64],
    centroid_dist: &[Vec<f64>],
    clustering: &Clustering,
) -> f64 {
    let k = clustering.k();
    assert!(k >= 2, "DB* requires k >= 2");
    assert_eq!(own_dist.len(), clustering.assignments.len());
    assert_eq!(centroid_dist.len(), k);
    let s = scatter_from(own_dist, clustering);
    let mut total = 0.0;
    for i in 0..k {
        let mut max_cohesion = 0.0f64;
        let mut min_sep = f64::INFINITY;
        for j in 0..k {
            if i == j {
                continue;
            }
            max_cohesion = max_cohesion.max(s[i] + s[j]);
            min_sep = min_sep.min(centroid_dist[i][j]);
        }
        total += if min_sep > 0.0 { max_cohesion / min_sep } else { f64::INFINITY };
    }
    total / k as f64
}

/// Dunn index (higher is better): smallest between-cluster member
/// distance over the largest within-cluster diameter.
pub fn dunn<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    clustering: &Clustering,
    dist: D,
) -> f64 {
    dunn_from(&pairwise_distances(series, &dist), clustering)
}

/// [`dunn`] from the ordered series-series table (only the `i < j`
/// triangle is read).
pub fn dunn_from(pair_dist: &[Vec<f64>], clustering: &Clustering) -> f64 {
    let k = clustering.k();
    assert!(k >= 2, "Dunn requires k >= 2");
    let n = clustering.assignments.len();
    assert_eq!(pair_dist.len(), n);
    let mut min_between = f64::INFINITY;
    let mut max_within = 0.0f64;
    for (i, row) in pair_dist.iter().enumerate() {
        for (j, &d) in row.iter().enumerate().skip(i + 1) {
            if clustering.assignments[i] == clustering.assignments[j] {
                max_within = max_within.max(d);
            } else {
                min_between = min_between.min(d);
            }
        }
    }
    if max_within <= 0.0 {
        // All clusters are singletons or contain identical points.
        return f64::INFINITY;
    }
    min_between / max_within
}

/// Mean Silhouette coefficient (higher is better, in `[-1, 1]`):
/// per-point `(b − a) / max(a, b)` with `a` the mean distance to own
/// cluster and `b` the smallest mean distance to another cluster.
/// Singleton clusters contribute 0, the standard convention.
pub fn silhouette<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    clustering: &Clustering,
    dist: D,
) -> f64 {
    silhouette_from(&pairwise_distances(series, &dist), clustering)
}

/// [`silhouette`] from the ordered series-series table (row `i` supplies
/// all distances with `i` as the first argument, matching the original
/// evaluation orientation).
pub fn silhouette_from(pair_dist: &[Vec<f64>], clustering: &Clustering) -> f64 {
    let k = clustering.k();
    assert!(k >= 2, "Silhouette requires k >= 2");
    let n = clustering.assignments.len();
    assert_eq!(pair_dist.len(), n);
    let sizes = clustering.sizes();
    let mut total = 0.0;
    for (i, row) in pair_dist.iter().enumerate() {
        let own = clustering.assignments[i];
        if sizes[own] <= 1 {
            continue; // contributes 0
        }
        let mut sums = vec![0.0; k];
        for (j, &d) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            sums[clustering.assignments[j]] += d;
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// Two tight, well-separated 1-D blobs embedded as 2-vectors.
    fn blobs() -> (Vec<Vec<f64>>, Clustering) {
        let series = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![10.05, 10.05],
        ];
        let clustering = Clustering {
            assignments: vec![0, 0, 0, 1, 1, 1],
            centroids: vec![vec![0.05, 0.05], vec![10.05, 10.05]],
            iterations: 1,
            converged: true,
        };
        (series, clustering)
    }

    /// The same points split badly (mixing the blobs).
    fn bad_split() -> (Vec<Vec<f64>>, Clustering) {
        let (series, _) = blobs();
        let clustering = Clustering {
            assignments: vec![0, 1, 0, 1, 0, 1],
            centroids: vec![vec![3.38, 3.4], vec![6.73, 6.7]],
            iterations: 1,
            converged: true,
        };
        (series, clustering)
    }

    #[test]
    fn good_clustering_beats_bad_on_every_index() {
        let (series, good) = blobs();
        let (_, bad) = bad_split();
        // Lower is better.
        assert!(
            davies_bouldin(&series, &good, euclid) < davies_bouldin(&series, &bad, euclid)
        );
        assert!(
            davies_bouldin_star(&series, &good, euclid)
                < davies_bouldin_star(&series, &bad, euclid)
        );
        // Higher is better.
        assert!(dunn(&series, &good, euclid) > dunn(&series, &bad, euclid));
        assert!(silhouette(&series, &good, euclid) > silhouette(&series, &bad, euclid));
    }

    #[test]
    fn perfect_separation_has_near_one_silhouette() {
        let (series, good) = blobs();
        let s = silhouette(&series, &good, euclid);
        assert!(s > 0.95, "silhouette {s}");
    }

    #[test]
    fn dunn_rewards_wide_separation() {
        let (series, good) = blobs();
        let d = dunn(&series, &good, euclid);
        // Separation ≈ 14 vs diameter ≈ 0.14 → large ratio.
        assert!(d > 50.0, "dunn {d}");
    }

    #[test]
    fn db_star_upper_bounds_db() {
        // DB* replaces the per-pair denominator with the *minimum*
        // separation, so DB* >= DB on any clustering.
        let (series, _) = blobs();
        for k in 2..=3 {
            let c = kmeans(&series, k, 1);
            let db = davies_bouldin(&series, &c, euclid);
            let dbs = davies_bouldin_star(&series, &c, euclid);
            assert!(dbs >= db - 1e-12, "k={k}: DB*={dbs} < DB={db}");
        }
    }

    #[test]
    fn coincident_centroids_blow_up_db() {
        let (series, mut clustering) = blobs();
        clustering.centroids[1] = clustering.centroids[0].clone();
        assert_eq!(davies_bouldin(&series, &clustering, euclid), f64::INFINITY);
    }

    #[test]
    fn all_singletons_give_infinite_dunn() {
        let series = vec![vec![0.0], vec![1.0], vec![2.0]];
        let clustering = Clustering {
            assignments: vec![0, 1, 2],
            centroids: vec![vec![0.0], vec![1.0], vec![2.0]],
            iterations: 1,
            converged: true,
        };
        assert_eq!(dunn(&series, &clustering, euclid), f64::INFINITY);
        // Silhouette of all-singletons is 0 by convention.
        assert_eq!(silhouette(&series, &clustering, euclid), 0.0);
    }

    #[test]
    fn table_forms_match_closure_forms_bitwise() {
        use mobilenet_timeseries::sbd::shape_based_distance;
        // SBD is the asymmetric-at-the-bit distance the ordered-table
        // contract exists for; check all four indices on a k-shape-style
        // input against hand-built ordered tables.
        let series: Vec<Vec<f64>> = (0..7)
            .map(|s| (0..24).map(|t| ((t + s * 3) as f64 * 0.37).sin() + s as f64 * 0.05).collect())
            .collect();
        let clustering = Clustering {
            assignments: vec![0, 0, 1, 1, 2, 2, 0],
            centroids: vec![series[0].clone(), series[2].clone(), series[4].clone()],
            iterations: 1,
            converged: true,
        };
        let dist = |a: &[f64], b: &[f64]| shape_based_distance(a, b);
        let own = own_distances(&series, &clustering, &dist);
        let cc = centroid_distances(&clustering, &dist);
        let ss = pairwise_distances(&series, &dist);
        let pairs = [
            (davies_bouldin(&series, &clustering, dist), davies_bouldin_from(&own, &cc, &clustering)),
            (
                davies_bouldin_star(&series, &clustering, dist),
                davies_bouldin_star_from(&own, &cc, &clustering),
            ),
            (dunn(&series, &clustering, dist), dunn_from(&ss, &clustering)),
            (silhouette(&series, &clustering, dist), silhouette_from(&ss, &clustering)),
        ];
        for (closure, table) in pairs {
            assert_eq!(closure.to_bits(), table.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "requires k >= 2")]
    fn k_one_is_rejected() {
        let series = vec![vec![0.0], vec![1.0]];
        let clustering = Clustering {
            assignments: vec![0, 0],
            centroids: vec![vec![0.5]],
            iterations: 1,
            converged: true,
        };
        davies_bouldin(&series, &clustering, euclid);
    }
}
