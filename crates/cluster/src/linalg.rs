//! Small dense-matrix kernels for shape extraction.
//!
//! k-Shape's centroid refinement needs the dominant eigenvector of a
//! symmetric `m × m` matrix (`m` = series length, 168 here). Power
//! iteration with periodic renormalization is entirely adequate at that
//! size and keeps the workspace dependency-free.

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix { n, data: vec![0.0; n * n] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "need n² entries");
        SquareMatrix { n, data }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// Matrix–vector product `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-owned buffer — the
    /// allocation-free form of [`SquareMatrix::mul_vec`]; identical
    /// accumulation order, so results are bit-identical.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
    }
}

/// Result of a dominant-eigenpair computation.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// The dominant eigenvalue (largest in magnitude).
    pub value: f64,
    /// The corresponding unit eigenvector.
    pub vector: Vec<f64>,
}

/// Computes the dominant eigenpair of a symmetric matrix by power
/// iteration.
///
/// Returns `None` when the iteration degenerates (zero matrix). The
/// starting vector is deterministic, so results are reproducible.
pub fn dominant_eigenpair(m: &SquareMatrix, max_iter: usize, tol: f64) -> Option<EigenPair> {
    dominant_eigenpair_of(m.n(), |v, w| m.mul_vec_into(v, w), max_iter, tol)
}

/// Power iteration against an arbitrary symmetric linear operator,
/// supplied as a matvec `apply(v, w)` writing `A·v` into `w`.
///
/// This is [`dominant_eigenpair`] with the matrix abstracted away: same
/// deterministic starting vector, Rayleigh-quotient eigenvalue estimate,
/// normalization, and stopping rule, so a dense matrix and an implicit
/// operator that performs the same floating-point accumulation produce
/// bit-identical results. The two buffers handed to `apply` are reused
/// across iterations — the whole computation allocates exactly twice.
pub fn dominant_eigenpair_of(
    n: usize,
    mut apply: impl FnMut(&[f64], &mut [f64]),
    max_iter: usize,
    tol: f64,
) -> Option<EigenPair> {
    if n == 0 {
        return None;
    }
    // Deterministic, non-degenerate start: varying entries to avoid being
    // orthogonal to the dominant eigenvector by symmetry.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin() * 0.5).collect();
    normalize(&mut v)?;

    let mut w = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..max_iter {
        apply(&v, &mut w);
        let new_lambda = dot(&v, &w);
        normalize(&mut w)?; // None: the operator annihilated the vector
        let delta = (new_lambda - lambda).abs();
        std::mem::swap(&mut v, &mut w);
        lambda = new_lambda;
        if delta <= tol * lambda.abs().max(1.0) {
            break;
        }
    }
    Some(EigenPair { value: lambda, vector: v })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f64]) -> Option<()> {
    let norm = dot(v, v).sqrt();
    if norm <= 1e-300 {
        return None;
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = SquareMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn accessors_roundtrip() {
        let mut m = SquareMatrix::zeros(3);
        m.set(0, 2, 5.0);
        m.add(0, 2, 1.0);
        assert_eq!(m.get(0, 2), 6.0);
        assert_eq!(m.n(), 3);
    }

    #[test]
    fn dominant_eigenpair_of_diagonal_matrix() {
        let mut m = SquareMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(1, 1, 5.0);
        m.set(2, 2, 2.0);
        let e = dominant_eigenpair(&m, 500, 1e-12).unwrap();
        assert!((e.value - 5.0).abs() < 1e-9);
        assert!((e.vector[1].abs() - 1.0).abs() < 1e-6);
        assert!(e.vector[0].abs() < 1e-5 && e.vector[2].abs() < 1e-5);
    }

    #[test]
    fn dominant_eigenpair_of_rank_one_matrix() {
        // M = u uᵀ has dominant eigenvector u (normalized), eigenvalue |u|².
        let u = [1.0, 2.0, -2.0];
        let mut m = SquareMatrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, u[i] * u[j]);
            }
        }
        let e = dominant_eigenpair(&m, 200, 1e-12).unwrap();
        assert!((e.value - 9.0).abs() < 1e-9);
        let norm_u = 3.0;
        for (i, &ui) in u.iter().enumerate() {
            // Up to a global sign.
            assert!(
                (e.vector[i].abs() - (ui / norm_u).abs()).abs() < 1e-6,
                "component {i}"
            );
        }
    }

    #[test]
    fn zero_matrix_yields_none() {
        let m = SquareMatrix::zeros(4);
        assert!(dominant_eigenpair(&m, 100, 1e-10).is_none());
    }

    #[test]
    fn empty_matrix_yields_none() {
        let m = SquareMatrix::zeros(0);
        assert!(dominant_eigenpair(&m, 100, 1e-10).is_none());
    }

    #[test]
    #[should_panic(expected = "n² entries")]
    fn from_rows_validates_length() {
        SquareMatrix::from_rows(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec_bitwise() {
        let n = 7;
        let data: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 17) as f64 * 0.3 - 2.0).collect();
        let m = SquareMatrix::from_rows(n, data);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.1).cos()).collect();
        let mut y = vec![f64::NAN; n];
        m.mul_vec_into(&x, &mut y);
        for (a, b) in m.mul_vec(&x).iter().zip(y.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn operator_form_matches_dense_bitwise() {
        // A symmetric matrix driven both ways: the dense entry point and
        // the operator entry point with the matrix's own matvec must agree
        // to the bit, including iteration-for-iteration convergence.
        let n = 9;
        let mut m = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = ((i * 3 + j * 7) % 11) as f64 - 5.0;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let dense = dominant_eigenpair(&m, 300, 1e-10).unwrap();
        let op = dominant_eigenpair_of(n, |v, w| m.mul_vec_into(v, w), 300, 1e-10).unwrap();
        assert_eq!(dense.value.to_bits(), op.value.to_bits());
        for (a, b) in dense.vector.iter().zip(op.vector.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
