//! Agglomerative hierarchical clustering.
//!
//! Milligan & Cooper's survey — the paper's reference for the quality
//! indices of Figure 5 — studied stopping rules in the context of
//! hierarchical methods. This module provides agglomerative clustering
//! with single / complete / average linkage over an arbitrary distance, so
//! the "no convincing k" finding can be re-checked under a third
//! algorithm (see the `ablations` binary).

use crate::Clustering;

/// Linkage criterion: how the distance between two clusters is derived
/// from member distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum member distance (chains easily).
    Single,
    /// Maximum member distance (compact clusters).
    Complete,
    /// Unweighted average member distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram: clusters `a` and `b` (ids in the
/// merge forest) joined at `height`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First cluster id (leaves are `0..n`, merges are `n..2n-1`).
    pub a: usize,
    /// Second cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
}

/// A full agglomerative dendrogram over `n` leaves.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the dendrogram has no leaves (never by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge sequence, in non-decreasing height order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into exactly `k` clusters (undoing the last
    /// `k − 1` merges) and returns dense assignments.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= n`.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "k must be in 1..=n");
        // Union-find over the first n - k merges.
        let mut parent: Vec<usize> = (0..2 * self.n - 1).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().take(self.n - k).enumerate() {
            let merged_id = self.n + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = merged_id;
            parent[rb] = merged_id;
        }
        // Dense relabeling of leaf roots.
        let mut label_of_root = std::collections::HashMap::new();
        let mut assignments = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            assignments.push(label);
        }
        assignments
    }

    /// Cuts into `k` clusters and packages the result as a [`Clustering`]
    /// with medoid centroids (the member minimizing summed distance).
    pub fn cut_clustering<D: Fn(&[f64], &[f64]) -> f64>(
        &self,
        series: &[Vec<f64>],
        k: usize,
        dist: D,
    ) -> Clustering {
        assert_eq!(series.len(), self.n, "series count must match leaves");
        let assignments = self.cut(k);
        let mut centroids = Vec::with_capacity(k);
        for c in 0..k {
            let members: Vec<usize> =
                (0..self.n).filter(|&i| assignments[i] == c).collect();
            let medoid = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let da: f64 = members.iter().map(|&m| dist(&series[a], &series[m])).sum();
                    let db: f64 = members.iter().map(|&m| dist(&series[b], &series[m])).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .expect("cut never produces empty clusters");
            centroids.push(series[medoid].clone());
        }
        Clustering { assignments, centroids, iterations: self.n - k, converged: true }
    }
}

/// Builds the agglomerative dendrogram of `series` under `linkage` and
/// `dist`. `O(n³)` naïve implementation — ample for the paper's 20 series.
///
/// # Panics
///
/// Panics on empty input or mismatched series lengths.
pub fn agglomerate<D: Fn(&[f64], &[f64]) -> f64>(
    series: &[Vec<f64>],
    linkage: Linkage,
    dist: D,
) -> Dendrogram {
    let n = series.len();
    assert!(n >= 1, "cannot cluster zero series");
    assert!(series.iter().all(|s| s.len() == series[0].len()), "series lengths must match");

    // Active clusters: (forest id, member leaf indices).
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;

    // Precompute the leaf distance matrix.
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(&series[i], &series[j]);
            d[i][j] = v;
            d[j][i] = v;
        }
    }
    let d_ref = &d;
    let cluster_dist = |a: &[usize], b: &[usize]| -> f64 {
        let values = a.iter().flat_map(|&i| b.iter().map(move |&j| d_ref[i][j]));
        match linkage {
            Linkage::Single => values.fold(f64::INFINITY, f64::min),
            Linkage::Complete => values.fold(f64::NEG_INFINITY, f64::max),
            Linkage::Average => {
                let (sum, count) = values.fold((0.0, 0usize), |(s, c), v| (s + v, c + 1));
                sum / count as f64
            }
        }
    };

    while active.len() > 1 {
        // Find the closest pair.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let v = cluster_dist(&active[i].1, &active[j].1);
                if v < best.2 {
                    best = (i, j, v);
                }
            }
        }
        let (i, j, height) = best;
        let (id_b, members_b) = active.remove(j);
        let (id_a, members_a) = active.remove(i);
        merges.push(Merge { a: id_a, b: id_b, height });
        let mut merged = members_a;
        merged.extend(members_b);
        active.push((next_id, merged));
        next_id += 1;
    }

    Dendrogram { n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }

    fn blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn two_blobs_separate_at_k2() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendro = agglomerate(&blobs(), linkage, euclid);
            let cut = dendro.cut(2);
            assert_eq!(cut[0], cut[1]);
            assert_eq!(cut[0], cut[2]);
            assert_eq!(cut[3], cut[4]);
            assert_eq!(cut[3], cut[5]);
            assert_ne!(cut[0], cut[3], "{linkage:?}");
        }
    }

    #[test]
    fn merge_heights_are_monotone_for_complete_linkage() {
        let dendro = agglomerate(&blobs(), Linkage::Complete, euclid);
        for w in dendro.merges().windows(2) {
            assert!(w[1].height >= w[0].height - 1e-12);
        }
    }

    #[test]
    fn cut_extremes() {
        let series = blobs();
        let dendro = agglomerate(&series, Linkage::Average, euclid);
        let all = dendro.cut(1);
        assert!(all.iter().all(|&a| a == 0));
        let singletons = dendro.cut(series.len());
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), series.len());
    }

    #[test]
    fn cut_clustering_produces_valid_medoids() {
        let series = blobs();
        let dendro = agglomerate(&series, Linkage::Average, euclid);
        let clustering = dendro.cut_clustering(&series, 2, euclid);
        assert_eq!(clustering.k(), 2);
        assert!(clustering.sizes().iter().all(|&s| s == 3));
        // Each centroid is one of its members.
        for c in 0..2 {
            let members = clustering.members(c);
            assert!(members
                .iter()
                .any(|&m| series[m] == clustering.centroids[c]));
        }
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of points: single linkage keeps it together at k=2
        // against an outlier pair; complete linkage splits the chain.
        let mut series: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 0.0]).collect();
        series.push(vec![100.0, 0.0]);
        series.push(vec![101.0, 0.0]);
        let single = agglomerate(&series, Linkage::Single, euclid).cut(2);
        assert!(single[..6].iter().all(|&a| a == single[0]), "{single:?}");
        assert_eq!(single[6], single[7]);
        assert_ne!(single[0], single[6]);
    }

    #[test]
    fn works_on_the_papers_series_shape() {
        // 20 series of 168 samples, like Figure 5's input.
        let series: Vec<Vec<f64>> = (0..20)
            .map(|s| (0..168).map(|t| ((t + s * 7) as f64 * 0.2).sin()).collect())
            .collect();
        let dendro = agglomerate(
            &series,
            Linkage::Average,
            mobilenet_timeseries::sbd::shape_based_distance,
        );
        assert_eq!(dendro.merges().len(), 19);
        for k in [2usize, 5, 10, 19] {
            let cut = dendro.cut(k);
            let mut labels = cut.clone();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), k, "cut at k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn cut_rejects_zero() {
        agglomerate(&blobs(), Linkage::Single, euclid).cut(0);
    }
}
