//! Lloyd's k-means on z-normalized series — the baseline comparator.
//!
//! The paper chooses k-Shape over Euclidean clustering; the ablation
//! benches quantify that choice by running both on the same series. This
//! is a plain Lloyd loop with k-means++-style greedy seeding (farthest
//! point), Euclidean distance, and the same empty-cluster repair as the
//! k-Shape implementation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobilenet_timeseries::norm::z_normalize;

use crate::Clustering;

/// Upper bound on Lloyd rounds.
const MAX_ITER: usize = 200;

/// Runs k-means with `k` clusters on `series` (z-normalized internally).
///
/// # Panics
///
/// Panics if `series` is empty, lengths differ, `k == 0` or
/// `k > series.len()`.
pub fn kmeans(series: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
    assert!(!series.is_empty(), "cannot cluster zero series");
    let m = series[0].len();
    assert!(m > 0, "series must be non-empty");
    assert!(series.iter().all(|s| s.len() == m), "series lengths must match");
    assert!(k >= 1 && k <= series.len(), "k must be in 1..=n");

    let z: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s)).collect();
    let n = z.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b6d_6561_6e73_3031); // "kmeans01"

    // Greedy farthest-point seeding from a random start.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(z[rng.gen_range(0..n)].clone());
    while centroids.len() < k {
        let (far, _) = z
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let d = centroids
                    .iter()
                    .map(|c| sq_dist(s, c))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        centroids.push(z[far].clone());
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut converged = false;
    for iter in 0..MAX_ITER {
        iterations = iter + 1;
        // Assignment.
        let mut changed = false;
        for (i, s) in z.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .map(|(c, centroid)| (c, sq_dist(s, centroid)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0;
            if best != assignments[i] {
                assignments[i] = best;
                changed = true;
            }
        }

        // Refinement.
        let mut sums = vec![vec![0.0; m]; k];
        let mut counts = vec![0usize; k];
        for (s, &a) in z.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (acc, v) in sums[a].iter_mut().zip(s.iter()) {
                *acc += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty-cluster repair: seed with the farthest point.
                let (far, _) = z
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, sq_dist(s, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                centroids[c] = z[far].clone();
                assignments[far] = c;
                changed = true;
            } else {
                for (j, v) in centroids[c].iter_mut().enumerate() {
                    *v = sums[c][j] / counts[c] as f64;
                }
            }
        }

        if !changed {
            converged = true;
            break;
        }
    }

    Clustering { assignments, centroids, iterations, converged }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two very different shapes (aligned — k-means is not shift
        // invariant, so keep phases fixed).
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for i in 0..6 {
            let eps = i as f64 * 0.01;
            series.push((0..32).map(|t| (t as f64 * 0.4).sin() + eps).collect());
            labels.push(0);
            series.push((0..32).map(|t| t as f64 * 0.1 + eps).collect());
            labels.push(1);
        }
        (series, labels)
    }

    #[test]
    fn separates_two_obvious_groups() {
        let (series, labels) = two_blobs();
        let c = kmeans(&series, 2, 1);
        // Perfect separation up to label permutation.
        for i in 0..series.len() {
            for j in 0..series.len() {
                assert_eq!(
                    labels[i] == labels[j],
                    c.assignments[i] == c.assignments[j],
                    "pair ({i},{j})"
                );
            }
        }
        assert!(c.converged);
    }

    #[test]
    fn no_empty_clusters() {
        let (series, _) = two_blobs();
        for k in 1..=6 {
            let c = kmeans(&series, k, 3);
            assert!(c.sizes().iter().all(|&s| s > 0), "k={k}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (series, _) = two_blobs();
        assert_eq!(kmeans(&series, 3, 9).assignments, kmeans(&series, 3, 9).assignments);
    }

    #[test]
    fn centroid_is_mean_of_members() {
        let (series, _) = two_blobs();
        let c = kmeans(&series, 2, 5);
        let z: Vec<Vec<f64>> = series.iter().map(|s| z_normalize(s)).collect();
        for cluster in 0..2 {
            let members = c.members(cluster);
            let mut mean = vec![0.0; z[0].len()];
            for &i in &members {
                for (acc, v) in mean.iter_mut().zip(z[i].iter()) {
                    *acc += v;
                }
            }
            for v in mean.iter_mut() {
                *v /= members.len() as f64;
            }
            for (a, b) in mean.iter().zip(c.centroids[cluster].iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_is_rejected() {
        kmeans(&[vec![1.0, 2.0]], 2, 0);
    }
}
