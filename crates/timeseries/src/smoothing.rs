//! Smoothing filters for time series.
//!
//! The smoothed z-score peak detector of §4 of the paper maintains an
//! exponentially *influenced* trailing window; the plain filters here are
//! also used for plotting smoothed traffic curves (Figure 4 right).

/// Centered moving average with window `2·half + 1`, shrinking at the
/// boundaries so the output has the same length as the input.
pub fn moving_average(series: &[f64], half: usize) -> Vec<f64> {
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &series[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
    out
}

/// Trailing (causal) moving average over the previous `window` samples
/// including the current one; shrinks at the start.
pub fn trailing_average(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be at least 1");
    let mut out = Vec::with_capacity(series.len());
    for i in 0..series.len() {
        let lo = (i + 1).saturating_sub(window);
        let w = &series[lo..=i];
        out.push(w.iter().sum::<f64>() / w.len() as f64);
    }
    out
}

/// Exponentially weighted moving average with smoothing factor
/// `alpha ∈ (0, 1]` (1 = no smoothing).
pub fn ewma(series: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(series.len());
    let mut prev = None;
    for &x in series {
        let v = match prev {
            None => x,
            Some(p) => alpha * x + (1.0 - alpha) * p,
        };
        out.push(v);
        prev = Some(v);
    }
    out
}

/// First differences `series[i+1] - series[i]`; output is one shorter.
pub fn diff(series: &[f64]) -> Vec<f64> {
    series.windows(2).map(|w| w[1] - w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_preserves_constants() {
        let s = vec![3.0; 12];
        assert_eq!(moving_average(&s, 2), s);
        assert_eq!(trailing_average(&s, 4), s);
        for (a, b) in ewma(&s, 0.3).iter().zip(s.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_smooths_an_impulse() {
        let mut s = vec![0.0; 9];
        s[4] = 9.0;
        let m = moving_average(&s, 1);
        assert_eq!(m[3], 3.0);
        assert_eq!(m[4], 3.0);
        assert_eq!(m[5], 3.0);
        assert_eq!(m[0], 0.0);
    }

    #[test]
    fn boundary_windows_shrink() {
        let s = vec![1.0, 2.0, 3.0];
        let m = moving_average(&s, 5);
        // All windows cover the whole series.
        for v in m {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trailing_average_is_causal() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        let t = trailing_average(&s, 2);
        assert_eq!(t, vec![1.0, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn ewma_with_alpha_one_is_identity() {
        let s = vec![5.0, -1.0, 2.0];
        assert_eq!(ewma(&s, 1.0), s);
    }

    #[test]
    fn ewma_lags_a_step() {
        let mut s = vec![0.0; 5];
        s.extend(vec![1.0; 5]);
        let e = ewma(&s, 0.5);
        assert!(e[5] < 1.0 && e[5] > 0.0);
        assert!(e[9] > e[5], "converges toward the step level");
    }

    #[test]
    fn diff_computes_first_differences() {
        assert_eq!(diff(&[1.0, 4.0, 2.0]), vec![3.0, -2.0]);
        assert!(diff(&[1.0]).is_empty());
        assert!(diff(&[]).is_empty());
    }
}
