//! Normalizations of time series.
//!
//! k-Shape operates on z-normalized series (zero mean, unit variance); the
//! paper's figures also use min–max scaling and normalization to a share of
//! a total, both provided here.

/// Z-normalizes a series: subtracts the mean and divides by the *population*
/// standard deviation.
///
/// A constant series (zero variance) maps to all zeros rather than NaNs, so
/// downstream distance computations stay finite.
pub fn z_normalize(series: &[f64]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd <= f64::EPSILON {
        return vec![0.0; series.len()];
    }
    series.iter().map(|x| (x - mean) / sd).collect()
}

/// Scales a series linearly into `[0, 1]`.
///
/// A constant series maps to all zeros.
pub fn min_max_normalize(series: &[f64]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in series {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let span = hi - lo;
    if span <= f64::EPSILON {
        return vec![0.0; series.len()];
    }
    series.iter().map(|x| (x - lo) / span).collect()
}

/// Normalizes a non-negative series so its entries sum to one (a share
/// vector). An all-zero series is returned unchanged.
pub fn to_shares(series: &[f64]) -> Vec<f64> {
    let total: f64 = series.iter().sum();
    if total <= 0.0 {
        return series.to_vec();
    }
    series.iter().map(|x| x / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_normalized_has_zero_mean_unit_variance() {
        let s: Vec<f64> = (0..100).map(|i| (i as f64 * 0.17).sin() * 3.0 + 5.0).collect();
        let z = z_normalize(&s);
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|x| x * x).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_normalizes_to_zeros() {
        let z = z_normalize(&[7.0; 10]);
        assert!(z.iter().all(|&x| x == 0.0));
        let m = min_max_normalize(&[7.0; 10]);
        assert!(m.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_inputs_yield_empty_outputs() {
        assert!(z_normalize(&[]).is_empty());
        assert!(min_max_normalize(&[]).is_empty());
        assert!(to_shares(&[]).is_empty());
    }

    #[test]
    fn min_max_spans_unit_interval() {
        let m = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert_eq!(m, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn shares_sum_to_one() {
        let s = to_shares(&[1.0, 3.0, 4.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shares_of_zero_vector_are_unchanged() {
        assert_eq!(to_shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn z_normalization_is_shift_and_scale_invariant() {
        let s: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let t: Vec<f64> = s.iter().map(|x| 4.0 * x + 11.0).collect();
        let zs = z_normalize(&s);
        let zt = z_normalize(&t);
        for (a, b) in zs.iter().zip(zt.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
