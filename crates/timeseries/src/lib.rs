//! Time-series and statistics substrate for the `mobilenet` workspace.
//!
//! The paper's analyses (CoNEXT 2017, "Not All Apps Are Created Equal") rest
//! on a handful of numerical kernels that in the original study were provided
//! by the Python scientific stack. This crate reimplements them from scratch:
//!
//! * [`complex`] — a minimal complex-number type used by the FFT.
//! * [`fft`] — an iterative radix-2 fast Fourier transform and the
//!   convolution / cross-correlation helpers built on it.
//! * [`norm`] — z-normalization and related scalings of series.
//! * [`sbd`] — the normalized cross-correlation coefficient (NCC-c) and the
//!   shape-based distance (SBD) of Paparrizos & Gravano's *k-Shape*
//!   (SIGMOD 2015), which the paper uses for time-series clustering.
//! * [`stats`] — descriptive statistics, Pearson correlation and the
//!   coefficient of determination, ordinary least squares, quantiles and
//!   empirical CDFs, cumulative-share (concentration) curves.
//! * [`zipf`] — rank–frequency (Zipf) exponent fitting used for Figure 2.
//! * [`smoothing`] — moving averages and related filters feeding the
//!   smoothed z-score peak detector in `mobilenet-core`.
//!
//! All kernels operate on plain `&[f64]` slices so they stay decoupled from
//! how the rest of the workspace stores traffic data.
//!
//! # Example
//!
//! ```
//! use mobilenet_timeseries::sbd::shape_based_distance;
//!
//! let a = vec![0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0];
//! // The same shape, shifted by two samples.
//! let b = vec![0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0];
//! let d = shape_based_distance(&a, &b);
//! assert!(d < 1e-9, "SBD is shift-invariant: {d}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod decompose;
pub mod dtw;
pub mod fft;
pub mod norm;
pub mod periodicity;
pub mod sbd;
pub mod smoothing;
pub mod stats;
pub mod zipf;

pub use complex::Complex;
pub use sbd::{ncc_c, shape_based_distance};
