//! Shape-based distance (SBD) from *k-Shape* (Paparrizos & Gravano,
//! SIGMOD 2015).
//!
//! The paper clusters the weekly per-service time series with k-Shape
//! (Figure 5). k-Shape measures dissimilarity with
//!
//! ```text
//! SBD(x, y) = 1 − max_w NCC_c(x, y)(w)
//! ```
//!
//! where `NCC_c` is the cross-correlation sequence normalized by the product
//! of the series' Euclidean norms (*coefficient* normalization). SBD lies in
//! `[0, 2]`, is 0 for identical shapes at any shift, and is invariant to
//! amplitude scaling when inputs are z-normalized.
//!
//! # Degenerate series convention
//!
//! A series with **no shape** — one whose Euclidean norm is (near) zero
//! *or* that is constant (zero variance) — correlates with nothing:
//! `NCC_c` is defined as 0 at shift 0, so its SBD to anything (including
//! another flat series) is exactly **1.0**, the neutral midpoint of
//! `[0, 2]`. This makes the convention explicit at the SBD layer rather
//! than an accident of `z_normalize` mapping constants to all-zeros
//! (which this definition agrees with: a z-normalized constant is the
//! zero series, whose norm is zero).
//!
//! # Batched evaluation
//!
//! [`ncc_c`]/[`shape_based_distance`] are one-shot conveniences. The hot
//! paths (k-Shape assignment, pairwise matrices, cluster-quality indices)
//! go through [`SbdEngine`]: each series' z-padded spectrum and norm are
//! computed **once** ([`SbdEngine::spectrum`]), after which every distance
//! costs one inverse transform — no forward FFTs, no heap allocation
//! (caller-owned [`SbdScratch`]). Engine results are bit-identical to the
//! one-shot functions.

use crate::complex::Complex;
use crate::fft::{
    cross_correlation_spectra, forward_spectrum, next_pow2, with_cached_plan, FftPlan,
};

/// Result of an NCC-c maximization: the best-aligned correlation value and
/// the shift that achieves it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// Maximum coefficient-normalized cross-correlation, in `[-1, 1]`.
    pub ncc: f64,
    /// Shift (in samples) to apply to `y` for best alignment with `x`.
    /// Positive means `y` is delayed (shifted right).
    pub shift: isize,
}

const FLAT: Alignment = Alignment { ncc: 0.0, shift: 0 };

/// A series prepared for batched SBD: its forward spectrum at the engine's
/// padded length, Euclidean norm, and flat-series flag.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// Euclidean norm of the raw series.
    norm: f64,
    /// No shape: zero norm or constant series (see module docs).
    flat: bool,
    /// Forward FFT of the zero-padded series.
    bins: Vec<Complex>,
}

impl Spectrum {
    /// Euclidean norm of the series this spectrum was computed from.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Whether the series is flat (no shape): zero norm or constant.
    pub fn is_flat(&self) -> bool {
        self.flat
    }
}

/// Caller-owned buffer for the engine's inverse transforms, grown on
/// first use and reused thereafter.
#[derive(Debug, Default, Clone)]
pub struct SbdScratch {
    buf: Vec<Complex>,
}

impl SbdScratch {
    /// An empty scratch; grows to the engine's FFT length on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Plan-cached SBD kernel for equal-length series of length `m`.
///
/// Holds the FFT plan for the padded correlation length
/// `next_pow2(2m − 1)`. Precompute one [`Spectrum`] per series, then
/// every pairwise [`SbdEngine::ncc_c`]/[`SbdEngine::sbd`] costs a single
/// inverse transform over a caller-owned [`SbdScratch`] — zero per-call
/// heap allocation, bit-identical to the one-shot [`ncc_c`].
#[derive(Debug, Clone)]
pub struct SbdEngine {
    m: usize,
    plan: FftPlan,
}

impl SbdEngine {
    /// An engine for series of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "NCC-c of empty series");
        SbdEngine { m, plan: FftPlan::new(next_pow2(2 * m - 1)) }
    }

    /// The series length this engine was built for.
    pub fn series_len(&self) -> usize {
        self.m
    }

    /// The padded FFT length.
    pub fn fft_len(&self) -> usize {
        self.plan.len()
    }

    /// Computes a series' spectrum (one forward FFT plus norm and
    /// flatness checks). Allocates the spectrum's buffer — do this once
    /// per series, outside the hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `series.len()` differs from the engine length.
    pub fn spectrum(&self, series: &[f64]) -> Spectrum {
        let mut s = Spectrum { norm: 0.0, flat: true, bins: Vec::new() };
        self.spectrum_into(series, &mut s);
        s
    }

    /// Recomputes `out` from `series`, reusing its buffer — the zero-
    /// allocation path for spectra that change every round (k-Shape
    /// centroids).
    pub fn spectrum_into(&self, series: &[f64], out: &mut Spectrum) {
        assert_eq!(series.len(), self.m, "engine built for length {}", self.m);
        out.norm = series.iter().map(|v| v * v).sum::<f64>().sqrt();
        out.flat = out.norm <= f64::EPSILON || series.windows(2).all(|w| w[0] == w[1]);
        forward_spectrum(&self.plan, series, &mut out.bins);
    }

    /// The maximizing [`Alignment`] of two prepared series — the batched
    /// form of [`ncc_c`], bit-identical to it.
    pub fn ncc_c(&self, x: &Spectrum, y: &Spectrum, scratch: &mut SbdScratch) -> Alignment {
        if x.flat || y.flat {
            return FLAT;
        }
        let denom = x.norm * y.norm;
        let n = self.plan.len();
        scratch.buf.clear();
        scratch.buf.extend_from_slice(&x.bins);
        for (a, b) in scratch.buf.iter_mut().zip(y.bins.iter()) {
            *a = *a * b.conj();
        }
        self.plan.fft_in_place(&mut scratch.buf, crate::fft::Direction::Inverse);

        // Scan the circular buffer in output order (lag −(m−1) ..= m−1) —
        // negative lags live at the tail `n−(m−1)..n`, non-negative at the
        // head `0..m` — visiting candidates in exactly the order the
        // one-shot path scans its materialized sequence, so the strict
        // `>` keeps the same winner.
        let neg = self.m - 1;
        let mut best = Alignment { ncc: f64::NEG_INFINITY, shift: 0 };
        for (off, c) in scratch.buf[n - neg..n].iter().enumerate() {
            let ncc = c.re / denom;
            if ncc > best.ncc {
                best = Alignment { ncc, shift: off as isize - neg as isize };
            }
        }
        for (lag, c) in scratch.buf[..self.m].iter().enumerate() {
            let ncc = c.re / denom;
            if ncc > best.ncc {
                best = Alignment { ncc, shift: lag as isize };
            }
        }
        best
    }

    /// Shape-based distance of two prepared series: `1 − max NCC_c`.
    pub fn sbd(&self, x: &Spectrum, y: &Spectrum, scratch: &mut SbdScratch) -> f64 {
        1.0 - self.ncc_c(x, y, scratch).ncc
    }
}

/// Computes the full coefficient-normalized cross-correlation sequence
/// `NCC_c(x, y)` and returns the maximizing [`Alignment`].
///
/// If either series is flat — zero norm *or* constant (see the module
/// docs) — the correlation is defined as 0 at shift 0.
pub fn ncc_c(x: &[f64], y: &[f64]) -> Alignment {
    assert_eq!(x.len(), y.len(), "NCC-c requires equal-length series");
    assert!(!x.is_empty(), "NCC-c of empty series");
    let nx = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    let ny = y.iter().map(|v| v * v).sum::<f64>().sqrt();
    if nx <= f64::EPSILON || ny <= f64::EPSILON {
        return FLAT;
    }
    if x.windows(2).all(|w| w[0] == w[1]) || y.windows(2).all(|w| w[0] == w[1]) {
        return FLAT; // constant series carry no shape
    }
    let denom = nx * ny;
    let out_len = 2 * x.len() - 1;
    let n = next_pow2(out_len);
    with_cached_plan(n, |plan| {
        let mut fx = Vec::new();
        let mut fy = Vec::new();
        forward_spectrum(plan, x, &mut fx);
        forward_spectrum(plan, y, &mut fy);
        let mut cc = Vec::new();
        cross_correlation_spectra(plan, &fy, y.len(), &mut fx, out_len, &mut cc);
        let mut best = Alignment { ncc: f64::NEG_INFINITY, shift: 0 };
        let zero_index = y.len() as isize - 1;
        for (k, &v) in cc.iter().enumerate() {
            let ncc = v / denom;
            if ncc > best.ncc {
                best = Alignment { ncc, shift: k as isize - zero_index };
            }
        }
        best
    })
}

/// Shape-based distance: `1 − max NCC_c(x, y)`, in `[0, 2]`.
pub fn shape_based_distance(x: &[f64], y: &[f64]) -> f64 {
    1.0 - ncc_c(x, y).ncc
}

/// Shifts `y` by `shift` samples (zero-filling), the alignment operation
/// used when k-Shape refines centroids.
pub fn shift_series(y: &[f64], shift: isize) -> Vec<f64> {
    let n = y.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let src = i as isize - shift;
        if src >= 0 && (src as usize) < n {
            *o = y[src as usize];
        }
    }
    out
}

/// Pairwise SBD matrix of a set of equal-length series.
///
/// The result is symmetric with a zero diagonal. Batched: each series'
/// spectrum is computed once (`O(n)` forward transforms), and each of the
/// `n(n−1)/2` pairs costs one inverse transform.
pub fn sbd_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut m = vec![vec![0.0; n]; n];
    if n == 0 {
        return m;
    }
    let len = series[0].len();
    assert!(series.iter().all(|s| s.len() == len), "series lengths must match");
    let engine = SbdEngine::new(len);
    let spectra: Vec<Spectrum> = series.iter().map(|s| engine.spectrum(s)).collect();
    let mut scratch = SbdScratch::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = engine.sbd(&spectra[i], &spectra[j], &mut scratch);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::z_normalize;

    #[test]
    fn identical_series_have_zero_distance() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.5).sin()).collect();
        assert!(shape_based_distance(&x, &x) < 1e-12);
    }

    #[test]
    fn sbd_is_shift_invariant() {
        let mut x = vec![0.0; 32];
        for (i, v) in x.iter_mut().enumerate().take(8) {
            *v = (i as f64 / 7.0 * std::f64::consts::PI).sin();
        }
        let y = shift_series(&x, 10);
        let a = ncc_c(&x, &y);
        assert!((a.ncc - 1.0).abs() < 1e-9, "ncc = {}", a.ncc);
        assert_eq!(a.shift, -10);
    }

    #[test]
    fn sbd_is_scale_invariant_after_znorm() {
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).cos() + 2.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v + 3.0).collect();
        let d = shape_based_distance(&z_normalize(&x), &z_normalize(&y));
        assert!(d < 1e-9, "d = {d}");
    }

    #[test]
    fn anti_correlated_series_approach_distance_two() {
        // A monotone ramp and its negation stay negatively correlated at
        // every shift (periodic signals would recover correlation when
        // shifted by half a period, so we avoid them here).
        let x: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        let d = shape_based_distance(&x, &y);
        assert!(d > 1.0, "d = {d}");
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let x: Vec<f64> = (0..20).map(|i| ((i * 13) % 7) as f64).collect();
        let y: Vec<f64> = (0..20).map(|i| ((i * 5) % 11) as f64).collect();
        let dxy = shape_based_distance(&x, &y);
        let dyx = shape_based_distance(&y, &x);
        assert!((dxy - dyx).abs() < 1e-9);
        assert!((0.0..=2.0).contains(&dxy));
    }

    #[test]
    fn flat_series_yield_neutral_alignment() {
        let x = vec![0.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = ncc_c(&x, &y);
        assert_eq!(a.ncc, 0.0);
        assert_eq!(a.shift, 0);
        assert!((shape_based_distance(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_have_neutral_distance_by_convention() {
        // Zero variance but nonzero norm: no shape, SBD is exactly 1.0 —
        // to a varying series, to a different constant, and to itself.
        let c = vec![3.5; 16];
        let d = vec![-2.0; 16];
        let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        for other in [&y, &d, &c] {
            assert_eq!(shape_based_distance(&c, other), 1.0);
            assert_eq!(shape_based_distance(other, &c), 1.0);
            let a = ncc_c(&c, other);
            assert_eq!((a.ncc, a.shift), (0.0, 0));
        }
        // Consistent with the z-normalize route: a z-normalized constant
        // is the zero series, which hits the zero-norm rule.
        assert_eq!(shape_based_distance(&z_normalize(&c), &z_normalize(&y)), 1.0);
    }

    #[test]
    fn engine_matches_one_shot_functions_bitwise() {
        let m = 37;
        let series: Vec<Vec<f64>> = (0..6)
            .map(|s| (0..m).map(|i| ((i + s * 5) as f64 * 0.41).sin() + s as f64 * 0.1).collect())
            .collect();
        let engine = SbdEngine::new(m);
        let spectra: Vec<Spectrum> = series.iter().map(|s| engine.spectrum(s)).collect();
        let mut scratch = SbdScratch::new();
        for i in 0..series.len() {
            for j in 0..series.len() {
                let fast = engine.ncc_c(&spectra[i], &spectra[j], &mut scratch);
                let slow = ncc_c(&series[i], &series[j]);
                assert_eq!(fast.ncc.to_bits(), slow.ncc.to_bits(), "({i},{j})");
                assert_eq!(fast.shift, slow.shift, "({i},{j})");
                let d_fast = engine.sbd(&spectra[i], &spectra[j], &mut scratch);
                assert_eq!(d_fast.to_bits(), shape_based_distance(&series[i], &series[j]).to_bits());
            }
        }
    }

    #[test]
    fn engine_flags_flat_series() {
        let engine = SbdEngine::new(8);
        assert!(engine.spectrum(&[0.0; 8]).is_flat());
        assert!(engine.spectrum(&[7.25; 8]).is_flat());
        let wave: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let spec = engine.spectrum(&wave);
        assert!(!spec.is_flat());
        assert!(spec.norm() > 0.0);
        let mut scratch = SbdScratch::new();
        assert_eq!(engine.sbd(&engine.spectrum(&[7.25; 8]), &spec, &mut scratch), 1.0);
    }

    #[test]
    fn spectrum_into_reuses_buffers() {
        let engine = SbdEngine::new(16);
        let a: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut spec = engine.spectrum(&a);
        engine.spectrum_into(&b, &mut spec);
        let fresh = engine.spectrum(&b);
        assert_eq!(spec.norm().to_bits(), fresh.norm().to_bits());
        let mut scratch = SbdScratch::new();
        let wave = engine.spectrum(&a);
        assert_eq!(
            engine.sbd(&spec, &wave, &mut scratch).to_bits(),
            engine.sbd(&fresh, &wave, &mut scratch).to_bits()
        );
    }

    #[test]
    fn shift_series_zero_fills() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(shift_series(&y, 2), vec![0.0, 0.0, 1.0, 2.0]);
        assert_eq!(shift_series(&y, -2), vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(shift_series(&y, 0), y);
        assert_eq!(shift_series(&y, 10), vec![0.0; 4]);
    }

    #[test]
    fn sbd_matrix_is_symmetric_with_zero_diagonal() {
        let series: Vec<Vec<f64>> = (0..4)
            .map(|s| (0..16).map(|i| ((i + s * 3) as f64 * 0.4).sin()).collect())
            .collect();
        let m = sbd_matrix(&series);
        for (i, row) in m.iter().enumerate() {
            assert!(row[i] < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sbd_matrix_matches_pairwise_calls_bitwise() {
        let series: Vec<Vec<f64>> = (0..5)
            .map(|s| (0..21).map(|i| ((i * (s + 2)) % 9) as f64 - 4.0).collect())
            .collect();
        let m = sbd_matrix(&series);
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                assert_eq!(
                    m[i][j].to_bits(),
                    shape_based_distance(&series[i], &series[j]).to_bits()
                );
            }
        }
    }
}
