//! Shape-based distance (SBD) from *k-Shape* (Paparrizos & Gravano,
//! SIGMOD 2015).
//!
//! The paper clusters the weekly per-service time series with k-Shape
//! (Figure 5). k-Shape measures dissimilarity with
//!
//! ```text
//! SBD(x, y) = 1 − max_w NCC_c(x, y)(w)
//! ```
//!
//! where `NCC_c` is the cross-correlation sequence normalized by the product
//! of the series' Euclidean norms (*coefficient* normalization). SBD lies in
//! `[0, 2]`, is 0 for identical shapes at any shift, and is invariant to
//! amplitude scaling when inputs are z-normalized.

use crate::fft::cross_correlation;

/// Result of an NCC-c maximization: the best-aligned correlation value and
/// the shift that achieves it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// Maximum coefficient-normalized cross-correlation, in `[-1, 1]`.
    pub ncc: f64,
    /// Shift (in samples) to apply to `y` for best alignment with `x`.
    /// Positive means `y` is delayed (shifted right).
    pub shift: isize,
}

/// Computes the full coefficient-normalized cross-correlation sequence
/// `NCC_c(x, y)` and returns the maximizing [`Alignment`].
///
/// If either series has zero norm, the correlation is defined as 0 at shift
/// 0 (two flat series have no shape to compare).
pub fn ncc_c(x: &[f64], y: &[f64]) -> Alignment {
    assert_eq!(x.len(), y.len(), "NCC-c requires equal-length series");
    assert!(!x.is_empty(), "NCC-c of empty series");
    let nx = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    let ny = y.iter().map(|v| v * v).sum::<f64>().sqrt();
    if nx <= f64::EPSILON || ny <= f64::EPSILON {
        return Alignment { ncc: 0.0, shift: 0 };
    }
    let denom = nx * ny;
    let cc = cross_correlation(x, y);
    let mut best = Alignment { ncc: f64::NEG_INFINITY, shift: 0 };
    let zero_index = y.len() as isize - 1;
    for (k, &v) in cc.iter().enumerate() {
        let ncc = v / denom;
        if ncc > best.ncc {
            best = Alignment { ncc, shift: k as isize - zero_index };
        }
    }
    best
}

/// Shape-based distance: `1 − max NCC_c(x, y)`, in `[0, 2]`.
pub fn shape_based_distance(x: &[f64], y: &[f64]) -> f64 {
    1.0 - ncc_c(x, y).ncc
}

/// Shifts `y` by `shift` samples (zero-filling), the alignment operation
/// used when k-Shape refines centroids.
pub fn shift_series(y: &[f64], shift: isize) -> Vec<f64> {
    let n = y.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let src = i as isize - shift;
        if src >= 0 && (src as usize) < n {
            *o = y[src as usize];
        }
    }
    out
}

/// Pairwise SBD matrix of a set of equal-length series.
///
/// The result is symmetric with a zero diagonal.
pub fn sbd_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = shape_based_distance(&series[i], &series[j]);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::z_normalize;

    #[test]
    fn identical_series_have_zero_distance() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.5).sin()).collect();
        assert!(shape_based_distance(&x, &x) < 1e-12);
    }

    #[test]
    fn sbd_is_shift_invariant() {
        let mut x = vec![0.0; 32];
        for (i, v) in x.iter_mut().enumerate().take(8) {
            *v = (i as f64 / 7.0 * std::f64::consts::PI).sin();
        }
        let y = shift_series(&x, 10);
        let a = ncc_c(&x, &y);
        assert!((a.ncc - 1.0).abs() < 1e-9, "ncc = {}", a.ncc);
        assert_eq!(a.shift, -10);
    }

    #[test]
    fn sbd_is_scale_invariant_after_znorm() {
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).cos() + 2.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v + 3.0).collect();
        let d = shape_based_distance(&z_normalize(&x), &z_normalize(&y));
        assert!(d < 1e-9, "d = {d}");
    }

    #[test]
    fn anti_correlated_series_approach_distance_two() {
        // A monotone ramp and its negation stay negatively correlated at
        // every shift (periodic signals would recover correlation when
        // shifted by half a period, so we avoid them here).
        let x: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        let d = shape_based_distance(&x, &y);
        assert!(d > 1.0, "d = {d}");
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let x: Vec<f64> = (0..20).map(|i| ((i * 13) % 7) as f64).collect();
        let y: Vec<f64> = (0..20).map(|i| ((i * 5) % 11) as f64).collect();
        let dxy = shape_based_distance(&x, &y);
        let dyx = shape_based_distance(&y, &x);
        assert!((dxy - dyx).abs() < 1e-9);
        assert!((0.0..=2.0).contains(&dxy));
    }

    #[test]
    fn flat_series_yield_neutral_alignment() {
        let x = vec![0.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = ncc_c(&x, &y);
        assert_eq!(a.ncc, 0.0);
        assert_eq!(a.shift, 0);
        assert!((shape_based_distance(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_series_zero_fills() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(shift_series(&y, 2), vec![0.0, 0.0, 1.0, 2.0]);
        assert_eq!(shift_series(&y, -2), vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(shift_series(&y, 0), y);
        assert_eq!(shift_series(&y, 10), vec![0.0; 4]);
    }

    #[test]
    fn sbd_matrix_is_symmetric_with_zero_diagonal() {
        let series: Vec<Vec<f64>> = (0..4)
            .map(|s| (0..16).map(|i| ((i + s * 3) as f64 * 0.4).sin()).collect())
            .collect();
        let m = sbd_matrix(&series);
        for i in 0..4 {
            assert!(m[i][i] < 1e-12);
            for j in 0..4 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
    }
}
