//! Iterative radix-2 fast Fourier transform and correlation helpers.
//!
//! The k-Shape distance used by the paper's clustering experiment (Figure 5)
//! needs the full cross-correlation sequence of two series, which is
//! computed in `O(n log n)` via the convolution theorem. The FFT here is a
//! textbook iterative Cooley–Tukey implementation with bit-reversal
//! permutation; it requires power-of-two lengths, and the public helpers
//! take care of zero-padding.
//!
//! Two layers are provided:
//!
//! * the original one-shot helpers ([`fft_in_place`], [`cross_correlation`])
//!   that plan and allocate on every call — kept as the reference
//!   implementation and oracle;
//! * a plan-cached, scratch-reusing layer ([`FftPlan`],
//!   [`cross_correlation_with_plan`], [`forward_spectrum`],
//!   [`cross_correlation_spectra`]) that does **zero heap allocation per
//!   call** once caller-owned buffers are warm, and is **bit-identical** to
//!   the one-shot layer: the twiddle tables are filled by the same
//!   `w = w * wlen` recurrence the per-block butterfly loop uses, so every
//!   butterfly multiplies by exactly the same `f64` pair.
//!
//! [`cross_correlation_auto`] adaptively dispatches to the direct
//! `O(|x|·|y|)` kernel below a measured work threshold where FFT setup cost
//! dominates.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::complex::Complex;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time domain → frequency domain.
    Forward,
    /// Frequency domain → time domain (scaled by `1/n`).
    Inverse,
}

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place radix-2 FFT.
///
/// One-shot reference implementation: recomputes the bit-reversal
/// permutation and twiddle recurrence on every call. The planned variant
/// ([`FftPlan::fft_in_place`]) produces bit-identical output without the
/// per-call setup.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// A precomputed transform plan for one power-of-two length: the
/// bit-reversal swap list plus forward and inverse twiddle tables.
///
/// The twiddle table for each butterfly stage is filled by the exact
/// `w = w * wlen` recurrence the unplanned loop runs inside every block,
/// so a planned transform is **bit-identical** to [`fft_in_place`] —
/// `tw[k]` holds the same accumulated product the k-th butterfly of any
/// block would have computed.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `(i, j)` index pairs with `i < j` to swap, in ascending `i` order.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated: stage for length `len`
    /// starts at offset `len/2 - 1` and holds `len/2` entries.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let mut swaps = Vec::new();
        if n > 1 {
            let bits = n.trailing_zeros();
            for i in 0..n {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if i < j {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        let table = |sign: f64| {
            // One recurrence per stage, identical to the per-block loop.
            let mut out = Vec::with_capacity(n.saturating_sub(1));
            let mut len = 2;
            while len <= n {
                let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex::cis(ang);
                let mut w = Complex::ONE;
                for _ in 0..len / 2 {
                    out.push(w);
                    w = w * wlen;
                }
                len <<= 1;
            }
            out
        };
        FftPlan { n, swaps, fwd: table(-1.0), inv: table(1.0) }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-0 plan (never useful in practice).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place FFT using the precomputed tables; zero heap allocation.
    ///
    /// Bit-identical to the one-shot [`fft_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn fft_in_place(&self, data: &mut [Complex], dir: Direction) {
        let n = self.n;
        assert_eq!(data.len(), n, "planned for length {n}, got {}", data.len());
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let table = match dir {
            Direction::Forward => &self.fwd,
            Direction::Inverse => &self.inv,
        };
        let mut len = 2;
        while len <= n {
            let tw = &table[len / 2 - 1..len - 1];
            // Split each block into its two halves so the butterfly runs
            // on checked-once slices; the arithmetic (and therefore the
            // bits) is exactly the indexed loop's.
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(len / 2);
                for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                    let u = *a;
                    let v = *b * w;
                    *a = u + v;
                    *b = u - v;
                }
            }
            len <<= 1;
        }
        if dir == Direction::Inverse {
            let inv = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.scale(inv);
            }
        }
    }
}

thread_local! {
    /// Per-thread plan cache: sweeps transform at a handful of distinct
    /// lengths, so a tiny map amortizes planning across every call on the
    /// thread (workers each build their own — no locks on the hot path).
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// Runs `f` with the (thread-locally cached) plan for length `n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn with_cached_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    let plan = PLAN_CACHE.with(|c| {
        c.borrow_mut().entry(n).or_insert_with(|| Rc::new(FftPlan::new(n))).clone()
    });
    f(&plan)
}

/// Forward FFT of a real signal, zero-padded to the next power of two of
/// `min_len.max(signal.len())`.
pub fn fft_real(signal: &[f64], min_len: usize) -> Vec<Complex> {
    let n = next_pow2(min_len.max(signal.len()));
    let mut buf = vec![Complex::ZERO; n];
    for (b, &x) in buf.iter_mut().zip(signal.iter()) {
        *b = Complex::from_real(x);
    }
    fft_in_place(&mut buf, Direction::Forward);
    buf
}

/// Forward spectrum of a real signal at the plan's length (zero-padded),
/// written into `out` — the reusable half of a batched cross-correlation.
///
/// `out` is resized to the plan length; once at capacity, no allocation.
///
/// # Panics
///
/// Panics if `signal.len()` exceeds the plan length.
pub fn forward_spectrum(plan: &FftPlan, signal: &[f64], out: &mut Vec<Complex>) {
    assert!(
        signal.len() <= plan.len(),
        "signal length {} exceeds plan length {}",
        signal.len(),
        plan.len()
    );
    out.clear();
    out.resize(plan.len(), Complex::ZERO);
    for (b, &x) in out.iter_mut().zip(signal.iter()) {
        *b = Complex::from_real(x);
    }
    plan.fft_in_place(out, Direction::Forward);
}

/// Full linear cross-correlation sequence of `x` and `y`.
///
/// Returns a vector `r` of length `x.len() + y.len() - 1` where
/// `r[k]` is the correlation at lag `k - (y.len() - 1)`, i.e.
///
/// ```text
/// r[k] = Σ_i x[i + lag] · y[i]       with lag = k - (y.len() - 1)
/// ```
///
/// Lag 0 (the aligned dot product) sits at index `y.len() - 1`.
/// Computed through the frequency domain: `r = IFFT(FFT(x) · conj(FFT(y)))`
/// using the thread-local plan cache.
pub fn cross_correlation(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty() && !y.is_empty(), "cross_correlation of empty input");
    let n = next_pow2(x.len() + y.len() - 1);
    let mut out = Vec::new();
    with_cached_plan(n, |plan| {
        let mut scratch = CorrScratch::new();
        cross_correlation_with_plan(plan, x, y, &mut scratch, &mut out);
    });
    out
}

/// Caller-owned buffers for [`cross_correlation_with_plan`]: two complex
/// work arrays, grown on first use and reused thereafter.
#[derive(Debug, Default, Clone)]
pub struct CorrScratch {
    fx: Vec<Complex>,
    fy: Vec<Complex>,
}

impl CorrScratch {
    /// An empty scratch; buffers grow to the plan length on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`cross_correlation`] against a caller-owned plan and scratch: zero
/// heap allocation per call once `scratch` and `out` have warmed to the
/// plan length. Bit-identical to [`cross_correlation`].
///
/// # Panics
///
/// Panics if either input is empty or `x.len() + y.len() - 1` exceeds the
/// plan length.
pub fn cross_correlation_with_plan(
    plan: &FftPlan,
    x: &[f64],
    y: &[f64],
    scratch: &mut CorrScratch,
    out: &mut Vec<f64>,
) {
    assert!(!x.is_empty() && !y.is_empty(), "cross_correlation of empty input");
    let out_len = x.len() + y.len() - 1;
    assert!(
        out_len <= plan.len(),
        "output length {out_len} exceeds plan length {}",
        plan.len()
    );
    forward_spectrum(plan, x, &mut scratch.fx);
    forward_spectrum(plan, y, &mut scratch.fy);
    let fy = std::mem::take(&mut scratch.fy);
    cross_correlation_spectra(plan, &fy, y.len(), &mut scratch.fx, out_len, out);
    scratch.fy = fy;
}

/// The spectrum-domain tail of a cross-correlation: multiplies the
/// (forward) spectrum in `fx` by `conj(fy)` in place, inverse-transforms,
/// and unrolls the circular buffer into `out` (length `out_len`, lags
/// `-(y_len-1) ..= out_len - y_len`).
///
/// This is the batched-SBD building block: callers that hold precomputed
/// spectra pay one inverse transform per pair instead of three transforms.
/// `fx` is clobbered. Zero heap allocation once `out` is at capacity.
pub fn cross_correlation_spectra(
    plan: &FftPlan,
    fy: &[Complex],
    y_len: usize,
    fx: &mut [Complex],
    out_len: usize,
    out: &mut Vec<f64>,
) {
    let n = plan.len();
    assert_eq!(fx.len(), n, "fx spectrum length mismatch");
    assert_eq!(fy.len(), n, "fy spectrum length mismatch");
    for (a, b) in fx.iter_mut().zip(fy.iter()) {
        *a = *a * b.conj();
    }
    plan.fft_in_place(fx, Direction::Inverse);

    // The circular result places negative lags at the tail of the buffer:
    // lag l >= 0 at index l, lag l < 0 at index n + l. Reorder so the output
    // runs from lag -(y_len-1) to lag out_len - y_len.
    let neg = y_len - 1;
    out.clear();
    out.reserve(out_len);
    for k in 0..out_len {
        let lag = k as isize - neg as isize;
        let idx = if lag >= 0 { lag as usize } else { n - lag.unsigned_abs() };
        out.push(fx[idx].re);
    }
}

/// Direct `O(n·m)` cross-correlation with the same layout as
/// [`cross_correlation`]. Used as a test oracle and for very short series
/// where FFT setup cost dominates.
pub fn cross_correlation_naive(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty() && !y.is_empty(), "cross_correlation of empty input");
    let neg = y.len() as isize - 1;
    let out_len = x.len() + y.len() - 1;
    let mut out = vec![0.0; out_len];
    for (k, o) in out.iter_mut().enumerate() {
        let lag = k as isize - neg;
        let mut acc = 0.0;
        for (i, &yv) in y.iter().enumerate() {
            let xi = i as isize + lag;
            if xi >= 0 && (xi as usize) < x.len() {
                acc += x[xi as usize] * yv;
            }
        }
        *o = acc;
    }
    out
}

/// Work threshold for [`cross_correlation_auto`]: inputs with
/// `x.len() * y.len()` at or below this run the direct kernel.
///
/// Measured with the `measure_auto_dispatch_crossover` harness below
/// (release mode, plan amortized as in the batched engine): the direct
/// kernel wins through 48×48 (0.65× the FFT path's cost) and loses from
/// 64×64 up (1.13×) — below the threshold the three transforms, padding,
/// and reorder cost more than the `O(|x|·|y|)` inner loop. `48 * 48` is
/// the largest measured size class on the winning side.
pub const AUTO_NAIVE_MAX_WORK: usize = 48 * 48;

/// Adaptive cross-correlation: dispatches to [`cross_correlation_naive`]
/// when `x.len() * y.len() <= AUTO_NAIVE_MAX_WORK`, else to the
/// plan-cached FFT path. Output is bit-identical to whichever kernel the
/// size class selects (the two kernels differ from each other in the last
/// few ulps, so the dispatch boundary is part of the contract).
pub fn cross_correlation_auto(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty() && !y.is_empty(), "cross_correlation of empty input");
    if x.len() * y.len() <= AUTO_NAIVE_MAX_WORK {
        cross_correlation_naive(x, y)
    } else {
        cross_correlation(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_in_place(&mut data, Direction::Forward);
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut data = vec![Complex::ONE; 16];
        fft_in_place(&mut data, Direction::Forward);
        assert_close(data[0].re, 16.0, 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        let orig: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, Direction::Forward);
        fft_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(orig.iter()) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn fft_matches_direct_dft() {
        let signal: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let spec = fft_real(&signal, 16);
        // Direct DFT.
        let n = 16usize;
        for (k, s) in spec.iter().enumerate().take(n) {
            let mut acc = Complex::ZERO;
            for (i, &x) in signal.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                acc += Complex::cis(ang).scale(x);
            }
            assert_close(s.re, acc.re, 1e-9);
            assert_close(s.im, acc.im, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() + 0.2 * i as f64).collect();
        let spec = fft_real(&signal, 64);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert_close(time_energy, freq_energy, 1e-6);
    }

    #[test]
    fn planned_fft_is_bit_identical_to_unplanned() {
        for bits in 0..10u32 {
            let n = 1usize << bits;
            let plan = FftPlan::new(n);
            let orig: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin() * 3.0, (i as f64 * 1.1).cos()))
                .collect();
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut a = orig.clone();
                let mut b = orig.clone();
                fft_in_place(&mut a, dir);
                plan.fft_in_place(&mut b, dir);
                for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "n={n} {dir:?} re[{i}]");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "n={n} {dir:?} im[{i}]");
                }
            }
        }
    }

    #[test]
    fn planned_cross_correlation_is_bit_identical_and_allocation_free_buffers_reuse() {
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.13).sin() * (1.0 + i as f64)).collect();
        let y: Vec<f64> = (0..200).map(|i| (i as f64 * 0.71).cos() - 0.3).collect();
        let reference = cross_correlation(&x, &y);
        let n = next_pow2(x.len() + y.len() - 1);
        let plan = FftPlan::new(n);
        let mut scratch = CorrScratch::new();
        let mut out = Vec::new();
        // Repeated calls reuse the same buffers; results stay identical.
        for _ in 0..3 {
            cross_correlation_with_plan(&plan, &x, &y, &mut scratch, &mut out);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn spectra_path_matches_one_shot_path() {
        let x: Vec<f64> = (0..60).map(|i| ((i * 7) % 13) as f64 - 5.0).collect();
        let y: Vec<f64> = (0..60).map(|i| ((i * 5) % 11) as f64).collect();
        let reference = cross_correlation(&x, &y);
        let out_len = x.len() + y.len() - 1;
        let plan = FftPlan::new(next_pow2(out_len));
        let mut fx = Vec::new();
        let mut fy = Vec::new();
        forward_spectrum(&plan, &x, &mut fx);
        forward_spectrum(&plan, &y, &mut fy);
        let mut out = Vec::new();
        cross_correlation_spectra(&plan, &fy, y.len(), &mut fx, out_len, &mut out);
        for (a, b) in out.iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn auto_dispatch_matches_branch_oracles_bitwise() {
        // Below the threshold → naive bits; above → FFT bits.
        for m in [4usize, 16, 48, 49, 64, 100] {
            let x: Vec<f64> = (0..m).map(|i| (i as f64 * 1.3).sin()).collect();
            let y: Vec<f64> = (0..m).map(|i| (i as f64 * 0.9).cos()).collect();
            let auto = cross_correlation_auto(&x, &y);
            let oracle = if m * m <= AUTO_NAIVE_MAX_WORK {
                cross_correlation_naive(&x, &y)
            } else {
                cross_correlation(&x, &y)
            };
            assert_eq!(auto.len(), oracle.len());
            for (a, b) in auto.iter().zip(oracle.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "m={m}");
            }
        }
    }

    #[test]
    fn cross_correlation_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64 * 1.3).sin()).collect();
        let y: Vec<f64> = (0..9).map(|i| (i as f64 * 0.9).cos()).collect();
        let fast = cross_correlation(&x, &y);
        let slow = cross_correlation_naive(&x, &y);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn zero_lag_is_dot_product() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [0.5, -1.0, 2.0, 1.0];
        let r = cross_correlation(&x, &y);
        let dot: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        assert_close(r[y.len() - 1], dot, 1e-10);
    }

    #[test]
    fn shifted_impulse_peaks_at_its_lag() {
        // x is an impulse at 5, y at 2: best alignment at lag 3.
        let mut x = vec![0.0; 16];
        x[5] = 1.0;
        let mut y = vec![0.0; 16];
        y[2] = 1.0;
        let r = cross_correlation(&x, &y);
        let (argmax, _) = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let lag = argmax as isize - (y.len() as isize - 1);
        assert_eq!(lag, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft_in_place(&mut data, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_plan_panics() {
        FftPlan::new(24);
    }

    #[test]
    #[should_panic(expected = "planned for length")]
    fn plan_length_mismatch_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex::ZERO; 16];
        plan.fft_in_place(&mut data, Direction::Forward);
    }

    /// Measurement harness behind [`AUTO_NAIVE_MAX_WORK`]: times the naive
    /// O(m²) kernel against the planned FFT path (plan amortized, as in the
    /// batched engine) across equal-length sizes and reports the observed
    /// crossover. Run with
    /// `cargo test -p mobilenet-timeseries --release crossover -- --ignored --nocapture`.
    #[test]
    #[ignore = "timing harness, run manually in release mode"]
    fn measure_auto_dispatch_crossover() {
        let reps = 2000;
        for m in [8usize, 16, 24, 32, 48, 64, 96, 128] {
            let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
            let y: Vec<f64> = (0..m).map(|i| (i as f64 * 0.91).cos()).collect();
            let t0 = std::time::Instant::now();
            let mut sink = 0.0;
            for _ in 0..reps {
                sink += cross_correlation_naive(&x, &y)[m / 2];
            }
            let naive = t0.elapsed().as_secs_f64();
            let plan = FftPlan::new(next_pow2(2 * m - 1));
            let mut scratch = CorrScratch::new();
            let mut out = Vec::new();
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                cross_correlation_with_plan(&plan, &x, &y, &mut scratch, &mut out);
                sink += out[m / 2];
            }
            let fft = t0.elapsed().as_secs_f64();
            println!(
                "m={m:4} work={:6} naive={:8.1}ns fft={:8.1}ns ratio={:.2} (sink {sink:.3e})",
                m * m,
                naive / reps as f64 * 1e9,
                fft / reps as f64 * 1e9,
                naive / fft,
            );
        }
    }

    #[test]
    fn next_pow2_handles_boundaries() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }
}
