//! Iterative radix-2 fast Fourier transform and correlation helpers.
//!
//! The k-Shape distance used by the paper's clustering experiment (Figure 5)
//! needs the full cross-correlation sequence of two series, which is
//! computed in `O(n log n)` via the convolution theorem. The FFT here is a
//! textbook iterative Cooley–Tukey implementation with bit-reversal
//! permutation; it requires power-of-two lengths, and the public helpers
//! take care of zero-padding.

use crate::complex::Complex;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time domain → frequency domain.
    Forward,
    /// Frequency domain → time domain (scaled by `1/n`).
    Inverse,
}

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place radix-2 FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two of
/// `min_len.max(signal.len())`.
pub fn fft_real(signal: &[f64], min_len: usize) -> Vec<Complex> {
    let n = next_pow2(min_len.max(signal.len()));
    let mut buf = vec![Complex::ZERO; n];
    for (b, &x) in buf.iter_mut().zip(signal.iter()) {
        *b = Complex::from_real(x);
    }
    fft_in_place(&mut buf, Direction::Forward);
    buf
}

/// Full linear cross-correlation sequence of `x` and `y`.
///
/// Returns a vector `r` of length `x.len() + y.len() - 1` where
/// `r[k]` is the correlation at lag `k - (y.len() - 1)`, i.e.
///
/// ```text
/// r[k] = Σ_i x[i + lag] · y[i]       with lag = k - (y.len() - 1)
/// ```
///
/// Lag 0 (the aligned dot product) sits at index `y.len() - 1`.
/// Computed through the frequency domain: `r = IFFT(FFT(x) · conj(FFT(y)))`.
pub fn cross_correlation(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty() && !y.is_empty(), "cross_correlation of empty input");
    let out_len = x.len() + y.len() - 1;
    let n = next_pow2(out_len);

    let mut fx = vec![Complex::ZERO; n];
    for (b, &v) in fx.iter_mut().zip(x.iter()) {
        *b = Complex::from_real(v);
    }
    let mut fy = vec![Complex::ZERO; n];
    for (b, &v) in fy.iter_mut().zip(y.iter()) {
        *b = Complex::from_real(v);
    }
    fft_in_place(&mut fx, Direction::Forward);
    fft_in_place(&mut fy, Direction::Forward);
    for (a, b) in fx.iter_mut().zip(fy.iter()) {
        *a = *a * b.conj();
    }
    fft_in_place(&mut fx, Direction::Inverse);

    // The circular result places negative lags at the tail of the buffer:
    // lag l >= 0 at index l, lag l < 0 at index n + l. Reorder so the output
    // runs from lag -(y.len()-1) to lag x.len()-1.
    let neg = y.len() - 1;
    let mut out = Vec::with_capacity(out_len);
    for k in 0..out_len {
        let lag = k as isize - neg as isize;
        let idx = if lag >= 0 { lag as usize } else { n - lag.unsigned_abs() };
        out.push(fx[idx].re);
    }
    out
}

/// Direct `O(n·m)` cross-correlation with the same layout as
/// [`cross_correlation`]. Used as a test oracle and for very short series
/// where FFT setup cost dominates.
pub fn cross_correlation_naive(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty() && !y.is_empty(), "cross_correlation of empty input");
    let neg = y.len() as isize - 1;
    let out_len = x.len() + y.len() - 1;
    let mut out = vec![0.0; out_len];
    for (k, o) in out.iter_mut().enumerate() {
        let lag = k as isize - neg;
        let mut acc = 0.0;
        for (i, &yv) in y.iter().enumerate() {
            let xi = i as isize + lag;
            if xi >= 0 && (xi as usize) < x.len() {
                acc += x[xi as usize] * yv;
            }
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_in_place(&mut data, Direction::Forward);
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut data = vec![Complex::ONE; 16];
        fft_in_place(&mut data, Direction::Forward);
        assert_close(data[0].re, 16.0, 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        let orig: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, Direction::Forward);
        fft_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(orig.iter()) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn fft_matches_direct_dft() {
        let signal: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let spec = fft_real(&signal, 16);
        // Direct DFT.
        let n = 16usize;
        for (k, s) in spec.iter().enumerate().take(n) {
            let mut acc = Complex::ZERO;
            for (i, &x) in signal.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                acc += Complex::cis(ang).scale(x);
            }
            assert_close(s.re, acc.re, 1e-9);
            assert_close(s.im, acc.im, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() + 0.2 * i as f64).collect();
        let spec = fft_real(&signal, 64);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert_close(time_energy, freq_energy, 1e-6);
    }

    #[test]
    fn cross_correlation_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64 * 1.3).sin()).collect();
        let y: Vec<f64> = (0..9).map(|i| (i as f64 * 0.9).cos()).collect();
        let fast = cross_correlation(&x, &y);
        let slow = cross_correlation_naive(&x, &y);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn zero_lag_is_dot_product() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [0.5, -1.0, 2.0, 1.0];
        let r = cross_correlation(&x, &y);
        let dot: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        assert_close(r[y.len() - 1], dot, 1e-10);
    }

    #[test]
    fn shifted_impulse_peaks_at_its_lag() {
        // x is an impulse at 5, y at 2: best alignment at lag 3.
        let mut x = vec![0.0; 16];
        x[5] = 1.0;
        let mut y = vec![0.0; 16];
        y[2] = 1.0;
        let r = cross_correlation(&x, &y);
        let (argmax, _) = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let lag = argmax as isize - (y.len() as isize - 1);
        assert_eq!(lag, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft_in_place(&mut data, Direction::Forward);
    }

    #[test]
    fn next_pow2_handles_boundaries() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }
}
