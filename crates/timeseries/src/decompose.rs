//! Classical seasonal decomposition of periodic series.
//!
//! The weekly service series of the paper are strongly periodic (diurnal ×
//! weekday/weekend structure). Classical additive decomposition splits a
//! series into **trend** (centred moving average over one period),
//! **seasonal** (per-phase means of the detrended series, normalized to
//! zero sum) and **remainder** — the standard first tool for inspecting
//! and forecasting such series, and the backbone of the
//! `mobilenet-core::forecast` extension.

use crate::smoothing::moving_average;

/// An additive decomposition `series = trend + seasonal + remainder`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Period used for the seasonal component.
    pub period: usize,
    /// Smooth trend (centred moving average, window = one period).
    pub trend: Vec<f64>,
    /// Seasonal component, repeating with `period` and summing to ≈ 0 over
    /// one period.
    pub seasonal: Vec<f64>,
    /// What is left.
    pub remainder: Vec<f64>,
}

impl Decomposition {
    /// Reconstructs the original series (exact up to floating-point).
    pub fn reconstruct(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(self.seasonal.iter())
            .zip(self.remainder.iter())
            .map(|((t, s), r)| t + s + r)
            .collect()
    }

    /// Fraction of the detrended variance explained by the seasonal
    /// component — 1.0 means the series is perfectly periodic around its
    /// trend.
    pub fn seasonal_strength(&self) -> f64 {
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        let detrended: Vec<f64> = self
            .seasonal
            .iter()
            .zip(self.remainder.iter())
            .map(|(s, r)| s + r)
            .collect();
        let dv = var(&detrended);
        if dv <= 0.0 {
            return 0.0;
        }
        (1.0 - var(&self.remainder) / dv).clamp(0.0, 1.0)
    }
}

/// Decomposes `series` with the given seasonal `period`.
///
/// # Panics
///
/// Panics if `period < 2` or the series is shorter than two periods (one
/// period of context is needed on each side of the centred average).
pub fn decompose(series: &[f64], period: usize) -> Decomposition {
    assert!(period >= 2, "period must be at least 2");
    assert!(
        series.len() >= 2 * period,
        "need at least two periods of data ({} < {})",
        series.len(),
        2 * period
    );

    // Trend: centred moving average with half-window = period/2 (window
    // shrinks at the boundaries; adequate for the analyses here).
    let trend = moving_average(series, period / 2);

    // Seasonal: mean detrended value per phase, re-centred to zero.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for (i, (&x, &t)) in series.iter().zip(trend.iter()).enumerate() {
        phase_sum[i % period] += x - t;
        phase_count[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(phase_count.iter())
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let grand: f64 = phase_mean.iter().sum::<f64>() / period as f64;
    for v in &mut phase_mean {
        *v -= grand;
    }

    let seasonal: Vec<f64> = (0..series.len()).map(|i| phase_mean[i % period]).collect();
    let remainder: Vec<f64> = series
        .iter()
        .zip(trend.iter())
        .zip(seasonal.iter())
        .map(|((x, t), s)| x - t - s)
        .collect();

    Decomposition { period, trend, seasonal, remainder }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                10.0 + ((i % period) as f64 / period as f64 * std::f64::consts::TAU).sin() * 3.0
            })
            .collect()
    }

    #[test]
    fn reconstruction_is_exact() {
        let s = periodic(96, 24);
        let d = decompose(&s, 24);
        for (a, b) in d.reconstruct().iter().zip(s.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_periodic_series_is_all_seasonal() {
        let s = periodic(120, 24);
        let d = decompose(&s, 24);
        assert!(d.seasonal_strength() > 0.95, "strength {}", d.seasonal_strength());
        // Seasonal sums to ~0 over a period.
        let sum: f64 = d.seasonal[..24].iter().sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn trend_follows_a_linear_drift() {
        let s: Vec<f64> = (0..120)
            .map(|i| i as f64 * 0.5 + ((i % 24) as f64).sin())
            .collect();
        let d = decompose(&s, 24);
        // Away from the boundaries the trend is close to the drift.
        for i in 24..96 {
            assert!((d.trend[i] - i as f64 * 0.5).abs() < 2.0, "i={i}: {}", d.trend[i]);
        }
    }

    #[test]
    fn white_noise_has_weak_seasonality() {
        // Deterministic pseudo-noise.
        let s: Vec<f64> = (0..240)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let d = decompose(&s, 24);
        assert!(d.seasonal_strength() < 0.5, "strength {}", d.seasonal_strength());
    }

    #[test]
    fn seasonal_repeats_with_period() {
        let s = periodic(96, 12);
        let d = decompose(&s, 12);
        for i in 12..96 {
            assert!((d.seasonal[i] - d.seasonal[i - 12]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "two periods")]
    fn short_series_is_rejected() {
        decompose(&[1.0; 30], 24);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_period_is_rejected() {
        decompose(&[1.0; 30], 1);
    }
}
