//! Dynamic time warping (DTW) distance.
//!
//! k-Shape's evaluation (Paparrizos & Gravano, SIGMOD 2015 — the paper's
//! reference \[25\]) benchmarks shape-based distance against DTW, the
//! classic elastic distance for time series. This implementation — full
//! dynamic program with an optional Sakoe–Chiba band — lets the ablation
//! harness re-run the clustering experiment under a third distance.

/// DTW distance between `x` and `y` with a Sakoe–Chiba window of `band`
/// samples (`None` = unconstrained). Uses squared point costs and returns
/// the square root of the accumulated cost, so it reduces to the Euclidean
/// distance when `band == Some(0)` and the series have equal length.
///
/// `O(n·m)` time, `O(m)` memory.
///
/// # Panics
///
/// Panics if either series is empty.
pub fn dtw_distance(x: &[f64], y: &[f64], band: Option<usize>) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "DTW of empty series");
    let n = x.len();
    let m = y.len();
    // With a band, the end point must be reachable.
    let effective_band = band.map(|b| b.max(n.abs_diff(m)));

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let (j_lo, j_hi) = match effective_band {
            Some(b) => {
                // Centre the window on the diagonal scaled to the lengths.
                let centre = i * m / n;
                (centre.saturating_sub(b).max(1), (centre + b).min(m))
            }
            None => (1, m),
        };
        for j in j_lo..=j_hi {
            let cost = (x[i - 1] - y[j - 1]) * (x[i - 1] - y[j - 1]);
            let best = prev[j].min(prev[j - 1]).min(curr[j - 1]);
            if best.is_finite() {
                curr[j] = cost + best;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// Pairwise DTW matrix of equal-role series (symmetric, zero diagonal).
pub fn dtw_matrix(series: &[Vec<f64>], band: Option<usize>) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dtw_distance(&series[i], &series[j], band);
            out[i][j] = d;
            out[j][i] = d;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        assert!(dtw_distance(&x, &x, None) < 1e-12);
        assert!(dtw_distance(&x, &x, Some(3)) < 1e-12);
    }

    #[test]
    fn zero_band_equals_euclidean() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.7).cos()).collect();
        let y: Vec<f64> = (0..24).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
        let d = dtw_distance(&x, &y, Some(0));
        assert!((d - euclid(&x, &y)).abs() < 1e-9, "{d} vs {}", euclid(&x, &y));
    }

    #[test]
    fn dtw_never_exceeds_euclidean_for_equal_lengths() {
        let x: Vec<f64> = (0..40).map(|i| ((i * 7) % 13) as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 5) % 11) as f64).collect();
        assert!(dtw_distance(&x, &y, None) <= euclid(&x, &y) + 1e-9);
    }

    #[test]
    fn warping_absorbs_time_shifts() {
        // A bump and its shifted copy: Euclidean sees a large distance,
        // DTW warps it away almost entirely.
        let bump = |c: f64| -> Vec<f64> {
            (0..50)
                .map(|i| (-(i as f64 - c) * (i as f64 - c) / 8.0).exp())
                .collect()
        };
        let a = bump(20.0);
        let b = bump(28.0);
        let dtw = dtw_distance(&a, &b, None);
        let euc = euclid(&a, &b);
        assert!(dtw < 0.3 * euc, "dtw {dtw} vs euclidean {euc}");
    }

    #[test]
    fn band_tightens_monotonically() {
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.5).sin()).collect();
        let y: Vec<f64> = (0..30).map(|i| ((i as f64 + 4.0) * 0.5).sin()).collect();
        let unconstrained = dtw_distance(&x, &y, None);
        let wide = dtw_distance(&x, &y, Some(10));
        let narrow = dtw_distance(&x, &y, Some(2));
        let rigid = dtw_distance(&x, &y, Some(0));
        assert!(unconstrained <= wide + 1e-9);
        assert!(wide <= narrow + 1e-9);
        assert!(narrow <= rigid + 1e-9);
    }

    #[test]
    fn handles_unequal_lengths() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..35).map(|i| i as f64 * 20.0 / 35.0).collect();
        let d = dtw_distance(&x, &y, None);
        // Same monotone ramp at different sampling rates: small distance.
        assert!(d < 8.0, "d = {d}");
        // Symmetric.
        assert!((d - dtw_distance(&y, &x, None)).abs() < 1e-9);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let series: Vec<Vec<f64>> = (0..5)
            .map(|s| (0..20).map(|i| ((i + 3 * s) as f64 * 0.3).sin()).collect())
            .collect();
        let m = dtw_matrix(&series, Some(5));
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_is_rejected() {
        dtw_distance(&[], &[1.0], None);
    }
}
