//! Rank–frequency (Zipf) law fitting.
//!
//! Figure 2 of the paper ranks ~500 mobile services by normalized traffic
//! volume and observes that the **top half** follows a Zipf law with
//! exponent ≈ −1.69 (downlink) / −1.55 (uplink), after which a cut-off
//! separates a long tail of very low-volume services. We fit the exponent by
//! least squares in log–log space, the standard estimator for rank plots.

use crate::stats::linear_fit;

/// A fitted Zipf law `volume(rank) ∝ rank^(−exponent)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfFit {
    /// The (positive) Zipf exponent `s` of `rank^(−s)`.
    pub exponent: f64,
    /// Log10 of the fitted volume at rank 1.
    pub log10_scale: f64,
    /// Coefficient of determination of the log–log regression.
    pub r2: f64,
}

impl ZipfFit {
    /// Predicted (linear-scale) value at `rank` (1-based).
    pub fn predict(&self, rank: usize) -> f64 {
        assert!(rank >= 1, "ranks are 1-based");
        10f64.powf(self.log10_scale - self.exponent * (rank as f64).log10())
    }
}

/// Fits a Zipf law to `values` interpreted as volumes of ranks `1..=n`
/// **after sorting descending**. Non-positive values are excluded (they have
/// no logarithm); ranks are still assigned before exclusion so the fit
/// refers to the true rank axis.
///
/// Returns `None` when fewer than two positive values remain.
pub fn fit_zipf(values: &[f64]) -> Option<ZipfFit> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    fit_zipf_ranked(&sorted)
}

/// Like [`fit_zipf`] but assumes `values` are already in rank order
/// (descending). Useful when the caller wants to fit only the head of the
/// distribution, e.g. `fit_zipf_ranked(&sorted[..n/2])` as the paper does.
pub fn fit_zipf_ranked(sorted_desc: &[f64]) -> Option<ZipfFit> {
    let mut log_rank = Vec::new();
    let mut log_val = Vec::new();
    for (i, &v) in sorted_desc.iter().enumerate() {
        if v > 0.0 && v.is_finite() {
            log_rank.push(((i + 1) as f64).log10());
            log_val.push(v.log10());
        }
    }
    if log_rank.len() < 2 {
        return None;
    }
    let fit = linear_fit(&log_rank, &log_val);
    Some(ZipfFit { exponent: -fit.slope, log10_scale: fit.intercept, r2: fit.r2 })
}

/// Generates ideal Zipf weights `rank^(−s)` for `n` ranks, normalized to sum
/// to one. Used by the synthetic service catalog.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        for v in &mut w {
            *v /= total;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_zipf_exponent() {
        let values: Vec<f64> = (1..=100).map(|r| 1e6 * (r as f64).powf(-1.69)).collect();
        let fit = fit_zipf(&values).unwrap();
        assert!((fit.exponent - 1.69).abs() < 1e-9, "exp = {}", fit.exponent);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.predict(1) - 1e6).abs() / 1e6 < 1e-6);
        assert!((fit.predict(10) - 1e6 * 10f64.powf(-1.69)).abs() / 1e4 < 1e-3);
    }

    #[test]
    fn unsorted_input_is_sorted_before_fitting() {
        let mut values: Vec<f64> = (1..=50).map(|r| (r as f64).powf(-2.0)).collect();
        values.reverse();
        let fit = fit_zipf(&values).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_positive_values_are_excluded() {
        let values = vec![100.0, 10.0, 0.0, -5.0, 1.0];
        let fit = fit_zipf(&values).unwrap();
        assert!(fit.exponent > 0.0);
    }

    #[test]
    fn too_few_points_yield_none() {
        assert!(fit_zipf(&[]).is_none());
        assert!(fit_zipf(&[1.0]).is_none());
        assert!(fit_zipf(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn zipf_weights_are_normalized_and_decreasing() {
        let w = zipf_weights(500, 1.69);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        // Head dominance: rank 1 carries far more than rank 100.
        assert!(w[0] / w[99] > 100.0);
    }

    #[test]
    fn head_fit_ignores_tail_cutoff() {
        // Zipf head + crushed tail, as in the paper's Figure 2.
        let mut values: Vec<f64> = (1..=40).map(|r| (r as f64).powf(-1.5)).collect();
        values.extend((41..=80).map(|r| (r as f64).powf(-6.0)));
        let head = fit_zipf_ranked(&values[..40]).unwrap();
        assert!((head.exponent - 1.5).abs() < 1e-9);
        let full = fit_zipf_ranked(&values).unwrap();
        assert!(full.exponent > head.exponent, "tail steepens the overall fit");
    }
}
