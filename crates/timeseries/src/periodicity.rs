//! Dominant-period detection via the FFT power spectrum.
//!
//! The weekly series of the paper carry strong 24-hour (diurnal) and
//! 168-hour (weekly) periodicities. This module finds the dominant period
//! of a series from its power spectrum — used by the forecasting extension
//! to auto-select the seasonal period, and by tests as a structural check
//! on generated traffic.

use crate::fft::{fft_real, next_pow2};

/// One spectral line: a candidate period with its share of the signal's
/// (non-DC) power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralPeak {
    /// Period in samples (may be fractional after padding).
    pub period: f64,
    /// Fraction of the non-DC power carried by this frequency bin.
    pub power_share: f64,
}

/// Returns the spectral peaks of `series`, strongest first, after mean
/// removal and zero-padding to a power of two. Only periods in
/// `[2, series.len()]` are reported.
///
/// # Panics
///
/// Panics if the series has fewer than 4 samples.
pub fn spectral_peaks(series: &[f64], max_peaks: usize) -> Vec<SpectralPeak> {
    assert!(series.len() >= 4, "need at least 4 samples");
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let centred: Vec<f64> = series.iter().map(|x| x - mean).collect();
    let n = next_pow2(centred.len());
    let spectrum = fft_real(&centred, n);

    // Power per positive-frequency bin.
    let half = n / 2;
    let mut power: Vec<(usize, f64)> = (1..=half)
        .map(|k| (k, spectrum[k].norm_sqr()))
        .collect();
    let total: f64 = power.iter().map(|(_, p)| p).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    power.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    power
        .into_iter()
        .map(|(k, p)| SpectralPeak { period: n as f64 / k as f64, power_share: p / total })
        .filter(|pk| pk.period >= 2.0 && pk.period <= series.len() as f64)
        .take(max_peaks)
        .collect()
}

/// The dominant period of `series`, or `None` when no bin carries at least
/// `min_share` of the non-DC power (an aperiodic series).
pub fn dominant_period(series: &[f64], min_share: f64) -> Option<f64> {
    spectral_peaks(series, 1)
        .first()
        .filter(|p| p.power_share >= min_share)
        .map(|p| p.period)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_sine_period_is_found() {
        // Period 32 over 256 samples (power-of-two: no leakage).
        let s: Vec<f64> = (0..256)
            .map(|i| (i as f64 / 32.0 * std::f64::consts::TAU).sin())
            .collect();
        let p = dominant_period(&s, 0.5).expect("strong periodicity");
        assert!((p - 32.0).abs() < 0.5, "period {p}");
    }

    #[test]
    fn daily_cycle_in_weekly_series_is_found() {
        // 168 samples, 24-sample period: padding to 256 causes leakage, so
        // the detected period is approximate.
        let s: Vec<f64> = (0..168)
            .map(|i| 5.0 + ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let p = dominant_period(&s, 0.2).expect("diurnal cycle");
        assert!((p - 24.0).abs() < 3.0, "period {p}");
    }

    #[test]
    fn constant_series_has_no_peaks() {
        assert!(dominant_period(&[7.0; 64], 0.1).is_none());
        assert!(spectral_peaks(&[7.0; 64], 3).is_empty());
    }

    #[test]
    fn noise_has_no_dominant_period() {
        let s: Vec<f64> = (0..256)
            .map(|i| {
                let mut h = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        assert!(dominant_period(&s, 0.3).is_none());
    }

    #[test]
    fn peaks_are_sorted_and_shares_bounded() {
        let s: Vec<f64> = (0..128)
            .map(|i| {
                (i as f64 / 16.0 * std::f64::consts::TAU).sin()
                    + 0.5 * (i as f64 / 8.0 * std::f64::consts::TAU).sin()
            })
            .collect();
        let peaks = spectral_peaks(&s, 4);
        assert!(peaks.len() >= 2);
        for w in peaks.windows(2) {
            assert!(w[0].power_share >= w[1].power_share);
        }
        let total: f64 = peaks.iter().map(|p| p.power_share).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!((peaks[0].period - 16.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_series_is_rejected() {
        spectral_peaks(&[1.0, 2.0], 1);
    }
}
