//! Descriptive statistics, correlation, regression and distribution helpers.
//!
//! These back most of the paper's quantitative claims: the coefficient of
//! determination `r²` between per-user traffic maps (Figure 10) and between
//! urbanization-level time series (Figure 11 bottom), the least-squares
//! slopes of Figure 11 top, the per-subscriber CDFs of Figure 8, and the
//! commune concentration curve of Figure 8 left.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient `r` between two equal-length samples.
///
/// Returns 0 when either sample is (numerically) constant, matching the
/// convention used for flat traffic vectors.
pub fn pearson_r(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson_r requires equal lengths");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return 0.0;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// Coefficient of determination `r²` (the paper's "Pearson's r²").
pub fn r_squared(xs: &[f64], ys: &[f64]) -> f64 {
    let r = pearson_r(xs, ys);
    r * r
}

/// Result of a simple ordinary-least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

/// Ordinary least squares of `y` on `x`.
///
/// Degenerate inputs (fewer than two points, or constant `x`) yield a zero
/// slope with `intercept = mean(y)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "linear_fit requires equal lengths");
    if xs.len() < 2 {
        return LinearFit { slope: 0.0, intercept: mean(ys), r2: 0.0 };
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx <= f64::EPSILON {
        return LinearFit { slope: 0.0, intercept: my, r2: 0.0 };
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    LinearFit { slope, intercept, r2: r_squared(xs, ys) }
}

/// Least-squares slope of `y` on `x` **through the origin**:
/// `argmin_a Σ (y_i − a·x_i)²  =  Σ x·y / Σ x²`.
///
/// Figure 11 (top) regresses per-subscriber time series of one urbanization
/// class on another; a ratio of demands is a line through the origin.
pub fn slope_through_origin(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "slope_through_origin requires equal lengths");
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    if sxx <= f64::EPSILON {
        return 0.0;
    }
    let sxy: f64 = xs.iter().zip(ys.iter()).map(|(x, y)| x * y).sum();
    sxy / sxx
}

/// Empirical quantile with linear interpolation, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics on empty input or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// An empirical cumulative distribution function over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of a sample (non-finite values are dropped).
    pub fn new(sample: &[f64]) -> Self {
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted }
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no finite points were supplied.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of the sample `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The sorted support paired with cumulative probabilities — the series
    /// to plot as a CDF curve.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Inverse CDF (quantile function) with step semantics.
    pub fn inverse(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "inverse of empty ECDF");
        assert!((0.0..=1.0).contains(&q));
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }
}

/// Cumulative-share (concentration) curve: entries are sorted descending and
/// the running share of the total is reported.
///
/// `curve[k] = (share of entities in the top (k+1), cumulative share of mass)`.
/// This is the "cumulative traffic on ranked communes" plot of Figure 8 left.
pub fn concentration_curve(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = sorted.iter().sum();
    if sorted.is_empty() || total <= 0.0 {
        return Vec::new();
    }
    let n = sorted.len() as f64;
    let mut acc = 0.0;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            acc += v;
            ((i + 1) as f64 / n, acc / total)
        })
        .collect()
}

/// Cumulative mass captured by the top `fraction` of ranked entities, read
/// off the [`concentration_curve`]. E.g. the paper reports the top 1% of
/// communes carrying >50% of Twitter traffic.
pub fn share_of_top(values: &[f64], fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction));
    let curve = concentration_curve(values);
    if curve.is_empty() {
        return 0.0;
    }
    let mut best = 0.0;
    for (pop_share, mass_share) in curve {
        if pop_share <= fraction + 1e-12 {
            best = mass_share;
        } else {
            break;
        }
    }
    best
}

/// Sample autocorrelation function up to `max_lag` (inclusive);
/// `acf[0] == 1` by construction. A constant series returns zeros beyond
/// lag 0.
///
/// Used by the forecasting extension to diagnose residual structure and by
/// tests to confirm the generated traffic carries the expected 24-hour
/// rhythm.
///
/// # Panics
///
/// Panics if `max_lag >= xs.len()` or the series is empty.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!xs.is_empty(), "autocorrelation of empty series");
    assert!(max_lag < xs.len(), "max_lag must be below the series length");
    let n = xs.len();
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    let mut acf = Vec::with_capacity(max_lag + 1);
    acf.push(1.0);
    for lag in 1..=max_lag {
        if denom <= f64::EPSILON {
            acf.push(0.0);
            continue;
        }
        let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
        acf.push(num / denom);
    }
    acf
}

/// Gini coefficient of a non-negative sample — a scalar summary of spatial
/// concentration used by the ablation benches.
pub fn gini(values: &[f64]) -> f64 {
    let mut sorted: Vec<f64> =
        values.iter().copied().filter(|v| v.is_finite() && *v >= 0.0).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 =
        sorted.iter().enumerate().map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * x).sum();
    weighted / (n as f64 * total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_hand_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(pearson_r(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson_r(&[1.0, 1.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn pearson_detects_perfect_linear_relations() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        assert!((pearson_r(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -0.5 * x + 4.0).collect();
        assert!((pearson_r(&xs, &neg) + 1.0).abs() < 1e-12);
        assert!((r_squared(&xs, &neg) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_known_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 1.25).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.5).abs() < 1e-10);
        assert!((fit.intercept - 1.25).abs() < 1e-10);
        assert!((fit.r2 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn linear_fit_on_constant_x_is_degenerate() {
        let fit = linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(fit.slope, 0.0);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_through_origin_recovers_pure_ratio() {
        let xs: Vec<f64> = (1..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x).collect();
        assert!((slope_through_origin(&xs, &ys) - 0.5).abs() < 1e-12);
        assert_eq!(slope_through_origin(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn ecdf_evaluates_fractions() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.len(), 4);
        let curve = e.curve();
        assert_eq!(curve[0], (1.0, 0.25));
        assert_eq!(curve[3], (4.0, 1.0));
        assert_eq!(e.inverse(0.5), 2.0);
        assert_eq!(e.inverse(1.0), 4.0);
    }

    #[test]
    fn ecdf_drops_non_finite() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn concentration_curve_on_uniform_mass_is_diagonal() {
        let curve = concentration_curve(&[1.0; 10]);
        for (p, m) in curve {
            assert!((p - m).abs() < 1e-12);
        }
    }

    #[test]
    fn concentration_detects_skew() {
        // One commune with 91% of traffic, nine with 1% each.
        let mut v = vec![1.0; 9];
        v.push(91.0);
        let top10 = share_of_top(&v, 0.1);
        assert!((top10 - 0.91).abs() < 1e-12);
        assert!(gini(&v) > 0.7);
    }

    #[test]
    fn autocorrelation_of_periodic_series_peaks_at_the_period() {
        let xs: Vec<f64> = (0..240)
            .map(|i| ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let acf = autocorrelation(&xs, 48);
        assert_eq!(acf[0], 1.0);
        assert!(acf[24] > 0.8, "lag-24 acf {}", acf[24]);
        assert!(acf[12] < -0.5, "half-period acf {}", acf[12]);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero_beyond_lag0() {
        let acf = autocorrelation(&[5.0; 50], 10);
        assert_eq!(acf[0], 1.0);
        assert!(acf[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn autocorrelation_is_bounded() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 13) % 17) as f64).collect();
        for v in autocorrelation(&xs, 50) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "max_lag")]
    fn autocorrelation_lag_bound_is_enforced() {
        autocorrelation(&[1.0, 2.0], 2);
    }

    #[test]
    fn gini_of_equal_shares_is_zero() {
        assert!(gini(&[5.0; 20]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
    }
}
