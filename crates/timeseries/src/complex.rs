//! A minimal complex-number type.
//!
//! Only the operations needed by the radix-2 FFT in [`crate::fft`] are
//! provided; this is deliberately not a general-purpose complex library.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`: the unit complex number at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let z = Complex::new(2.5, -7.0);
        assert_eq!(z.conj(), Complex::new(2.5, 7.0));
        // z * conj(z) is real and equals |z|².
        let p = z * z.conj();
        assert!((p.im).abs() < 1e-12);
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies_components() {
        let z = Complex::new(1.0, -2.0).scale(3.0);
        assert_eq!(z, Complex::new(3.0, -6.0));
    }
}
