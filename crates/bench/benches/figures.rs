//! One benchmark per table/figure of the paper: measures the cost of
//! regenerating each analysis on a cached small study. The `figures`
//! binary produces the actual CSV/PGM artefacts; these benches track the
//! analysis cost itself.

use criterion::{criterion_group, criterion_main, Criterion};

use mobilenet_bench::small_study;
use mobilenet_core::maps::{coverage_map, per_user_map};
use mobilenet_core::peaks::{detect_peaks, PeakConfig};
use mobilenet_core::ranking::{service_ranking, zipf_ranking};
use mobilenet_core::spatial::{concentration, spatial_correlation};
use mobilenet_core::temporal::{clustering_sweep, Algorithm};
use mobilenet_core::topical::topical_profiles;
use mobilenet_core::urbanization::urbanization_profiles;
use mobilenet_traffic::Direction;

fn fig2_zipf(c: &mut Criterion) {
    let study = small_study();
    c.bench_function("fig2_zipf_ranking", |b| b.iter(|| zipf_ranking(study)));
}

fn fig3_ranking(c: &mut Criterion) {
    let study = small_study();
    c.bench_function("fig3_service_ranking", |b| {
        b.iter(|| service_ranking(study, Direction::Down))
    });
}

fn fig4_peaks(c: &mut Criterion) {
    let study = small_study();
    let series = study.dataset().national_series(Direction::Down, 2).to_vec();
    c.bench_function("fig4_peak_detection", |b| {
        b.iter(|| detect_peaks(&series, &PeakConfig::paper()))
    });
}

fn fig5_kshape_sweep(c: &mut Criterion) {
    let study = small_study();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("kshape_index_sweep", |b| {
        b.iter(|| clustering_sweep(study, Direction::Down, Algorithm::KShape, 1))
    });
    g.finish();
}

fn fig6_fig7_topical(c: &mut Criterion) {
    let study = small_study();
    c.bench_function("fig6_fig7_topical_profiles", |b| {
        b.iter(|| topical_profiles(study, Direction::Down, &PeakConfig::paper()))
    });
}

fn fig8_concentration(c: &mut Criterion) {
    let study = small_study();
    let twitter = study
        .catalog()
        .head()
        .iter()
        .position(|s| s.name == "Twitter")
        .unwrap();
    c.bench_function("fig8_concentration", |b| b.iter(|| concentration(study, twitter)));
}

fn fig9_maps(c: &mut Criterion) {
    let study = small_study();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("per_user_map_120px", |b| {
        b.iter(|| per_user_map(study, Direction::Down, 7, 120))
    });
    g.bench_function("coverage_map_120px", |b| {
        b.iter(|| coverage_map(study.country(), 120))
    });
    g.finish();
}

fn fig10_spatial_corr(c: &mut Criterion) {
    let study = small_study();
    c.bench_function("fig10_spatial_correlation", |b| {
        b.iter(|| spatial_correlation(study, Direction::Down))
    });
}

fn fig11_urbanization(c: &mut Criterion) {
    let study = small_study();
    c.bench_function("fig11_urbanization", |b| {
        b.iter(|| urbanization_profiles(study, Direction::Down))
    });
}

criterion_group!(
    figures,
    fig2_zipf,
    fig3_ranking,
    fig4_peaks,
    fig5_kshape_sweep,
    fig6_fig7_topical,
    fig8_concentration,
    fig9_maps,
    fig10_spatial_corr,
    fig11_urbanization
);
criterion_main!(figures);
