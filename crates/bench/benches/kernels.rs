//! Microbenchmarks of the numerical kernels everything else is built on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use mobilenet_core::peaks::{detect_peaks, PeakConfig};
use mobilenet_timeseries::fft::{cross_correlation, cross_correlation_naive, fft_real};
use mobilenet_timeseries::norm::z_normalize;
use mobilenet_timeseries::sbd::{sbd_matrix, shape_based_distance};
use mobilenet_timeseries::stats::{pearson_r, Ecdf};

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.31 + phase).sin() + 0.3 * (i as f64 * 0.05).cos()).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [256usize, 1024, 4096] {
        let s = series(n, 0.0);
        g.bench_with_input(BenchmarkId::new("fft_real", n), &s, |b, s| {
            b.iter(|| fft_real(black_box(s), s.len()));
        });
    }
    g.finish();
}

fn bench_cross_correlation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cross_correlation");
    // The paper's series length: one week of hours.
    let x = series(168, 0.0);
    let y = series(168, 1.0);
    g.bench_function("fft_168", |b| {
        b.iter(|| cross_correlation(black_box(&x), black_box(&y)));
    });
    g.bench_function("naive_168", |b| {
        b.iter(|| cross_correlation_naive(black_box(&x), black_box(&y)));
    });
    g.finish();
}

fn bench_sbd(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbd");
    let x = z_normalize(&series(168, 0.0));
    let y = z_normalize(&series(168, 0.7));
    g.bench_function("pair_168", |b| {
        b.iter(|| shape_based_distance(black_box(&x), black_box(&y)));
    });
    let set: Vec<Vec<f64>> = (0..20).map(|i| z_normalize(&series(168, i as f64))).collect();
    g.bench_function("matrix_20x168", |b| {
        b.iter(|| sbd_matrix(black_box(&set)));
    });
    g.finish();
}

fn bench_peaks(c: &mut Criterion) {
    let s = series(168, 0.0).iter().map(|v| v + 2.0).collect::<Vec<_>>();
    c.bench_function("smoothed_zscore_168", |b| {
        b.iter(|| detect_peaks(black_box(&s), &PeakConfig::paper()));
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let x = series(6000, 0.0);
    let y = series(6000, 0.4);
    g.bench_function("pearson_6000", |b| {
        b.iter(|| pearson_r(black_box(&x), black_box(&y)));
    });
    g.bench_function("ecdf_build_6000", |b| {
        b.iter(|| Ecdf::new(black_box(&x)));
    });
    g.bench_function("z_normalize_168", |b| {
        let s = series(168, 0.0);
        b.iter(|| z_normalize(black_box(&s)));
    });
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let set: Vec<Vec<f64>> = (0..20).map(|i| series(168, i as f64 * 0.9)).collect();
    c.bench_function("kshape_k5_20x168", |b| {
        b.iter(|| mobilenet_cluster::kshape(black_box(&set), 5, 1));
    });
    c.bench_function("kmeans_k5_20x168", |b| {
        b.iter(|| mobilenet_cluster::kmeans(black_box(&set), 5, 1));
    });
}

criterion_group!(
    kernels,
    bench_fft,
    bench_cross_correlation,
    bench_sbd,
    bench_peaks,
    bench_stats,
    bench_clustering
);
criterion_main!(kernels);
