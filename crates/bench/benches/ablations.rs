//! Timing ablations of the design choices DESIGN.md calls out:
//! k-shape vs the k-means baseline, FFT-accelerated vs naive correlation,
//! and the cost of the measurement pipeline vs the expected-value path.
//! (Output-quality ablations live in the `ablations` binary.)

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use mobilenet_bench::small_study;
use mobilenet_core::peaks::{detect_peaks, PeakConfig};
use mobilenet_geo::{Country, CountryConfig};
use mobilenet_netsim::{collect_with_options, CollectOptions, NetsimConfig};
use mobilenet_timeseries::fft::{cross_correlation, cross_correlation_naive};
use mobilenet_traffic::{DemandModel, Direction, ServiceCatalog, TrafficConfig};

fn kshape_vs_kmeans(c: &mut Criterion) {
    let study = small_study();
    let series: Vec<Vec<f64>> = (0..20)
        .map(|s| study.dataset().national_series(Direction::Down, s).to_vec())
        .collect();
    let mut g = c.benchmark_group("ablation_clustering");
    for k in [3usize, 6, 10] {
        g.bench_with_input(BenchmarkId::new("kshape", k), &k, |b, &k| {
            b.iter(|| mobilenet_cluster::kshape(black_box(&series), k, 1))
        });
        g.bench_with_input(BenchmarkId::new("kmeans", k), &k, |b, &k| {
            b.iter(|| mobilenet_cluster::kmeans(black_box(&series), k, 1))
        });
    }
    g.finish();
}

fn fft_vs_naive_correlation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_correlation");
    for n in [168usize, 672, 2688] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3 + 1.0).cos()).collect();
        g.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| {
            b.iter(|| cross_correlation(black_box(&x), black_box(&y)))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| cross_correlation_naive(black_box(&x), black_box(&y)))
        });
    }
    g.finish();
}

fn measured_vs_expected_path(c: &mut Criterion) {
    let country = Arc::new(Country::generate(&CountryConfig::small(), 1));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    let model = DemandModel::new(country, catalog, TrafficConfig::fast(), 1);
    let mut g = c.benchmark_group("ablation_pipeline");
    g.sample_size(10);
    g.bench_function("measured_collect", |b| {
        b.iter(|| collect_with_options(&model, &NetsimConfig::standard(), &CollectOptions::default(), 1).unwrap())
    });
    g.bench_function("expected_dataset", |b| b.iter(|| model.expected_dataset()));
    g.finish();
}

fn detector_lag_sweep(c: &mut Criterion) {
    let study = small_study();
    let series = study.dataset().national_series(Direction::Down, 0).to_vec();
    let mut g = c.benchmark_group("ablation_peak_lag");
    for lag in [2usize, 4, 8, 24] {
        g.bench_with_input(BenchmarkId::from_parameter(lag), &lag, |b, &lag| {
            let cfg = PeakConfig { lag, ..PeakConfig::paper() };
            b.iter(|| detect_peaks(black_box(&series), &cfg))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    kshape_vs_kmeans,
    fft_vs_naive_correlation,
    measured_vs_expected_path,
    detector_lag_sweep
);
criterion_main!(ablations);
