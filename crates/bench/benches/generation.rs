//! Benchmarks of the synthetic substrate: geography generation, demand
//! construction, session sampling and the full collection pipeline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use mobilenet_geo::{Country, CountryConfig};
use mobilenet_netsim::{collect_with_options, CollectOptions, FaultPlan, NetsimConfig};
use mobilenet_traffic::{DemandModel, ServiceCatalog, SessionGenerator, TrafficConfig};

fn bench_country(c: &mut Criterion) {
    let cfg = CountryConfig::small();
    c.bench_function("country_generate_1k_communes", |b| {
        b.iter(|| Country::generate(&cfg, 1));
    });
}

fn bench_demand_model(c: &mut Criterion) {
    let country = Arc::new(Country::generate(&CountryConfig::small(), 1));
    let catalog = Arc::new(ServiceCatalog::standard(480));
    c.bench_function("demand_model_build_1k", |b| {
        b.iter(|| {
            DemandModel::new(country.clone(), catalog.clone(), TrafficConfig::fast(), 1)
        });
    });
}

fn bench_sessions(c: &mut Criterion) {
    let country = Arc::new(Country::generate(&CountryConfig::small(), 1));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    let model = DemandModel::new(country, catalog, TrafficConfig::fast(), 1);
    c.bench_function("session_generation_1k_fast", |b| {
        b.iter(|| {
            let mut n = 0u64;
            SessionGenerator::new(&model, 1).generate(|_| n += 1);
            n
        });
    });
}

fn bench_collect(c: &mut Criterion) {
    let country = Arc::new(Country::generate(&CountryConfig::small(), 1));
    let catalog = Arc::new(ServiceCatalog::standard(80));
    let model = DemandModel::new(country, catalog, TrafficConfig::fast(), 1);
    let netsim = NetsimConfig::standard();
    c.bench_function("collect_pipeline_1k_fast", |b| {
        b.iter(|| collect_with_options(&model, &netsim, &CollectOptions::default(), 1).unwrap());
    });
    let degraded = CollectOptions::with_faults(FaultPlan::degraded(1));
    c.bench_function("collect_pipeline_1k_fast_degraded", |b| {
        b.iter(|| collect_with_options(&model, &netsim, &degraded, 1).unwrap());
    });
    let streaming = CollectOptions::default().chunk_size(1024);
    c.bench_function("collect_pipeline_1k_fast_chunk_1024", |b| {
        b.iter(|| collect_with_options(&model, &netsim, &streaming, 1).unwrap());
    });
    c.bench_function("expected_dataset_1k", |b| {
        b.iter(|| model.expected_dataset());
    });
}

criterion_group! {
    name = generation;
    config = Criterion::default().sample_size(10);
    targets = bench_country, bench_demand_model, bench_sessions, bench_collect
}
criterion_main!(generation);
