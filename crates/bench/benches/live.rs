//! Live-aggregation benchmarks: what the incremental engine costs
//! relative to the batch path it mirrors, and what a snapshot costs while
//! state is hot.
//!
//! * `live_ingest/batch` vs `live_ingest/live` — the same small week
//!   through `collect_with_options` and through `LiveState::run_ingestion`
//!   (the live path adds per-shard mutexes, watermark tracking and a
//!   version counter; it should stay within a small factor of batch);
//! * `live_snapshot/cached` — the version-keyed fast path queries hit
//!   between folds (the uncached merge cost is included in
//!   `live_ingest/live`, which ends with one cold snapshot).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mobilenet_core::StudyConfig;
use mobilenet_netsim::collect_with_options;
use mobilenet_serve::LiveState;

fn config() -> StudyConfig {
    StudyConfig::small()
}

fn live_vs_batch_ingest(c: &mut Criterion) {
    let cfg = config();
    let mut g = c.benchmark_group("live_ingest");
    g.sample_size(10);
    g.bench_function("batch", |b| {
        b.iter(|| {
            let model = cfg.demand_model(1);
            collect_with_options(&model, &cfg.netsim, &cfg.collect_options(), 1).unwrap()
        })
    });
    g.bench_function("live", |b| {
        b.iter(|| {
            let state = LiveState::from_config(&cfg, 1).unwrap();
            state.run_ingestion().unwrap();
            black_box(state.snapshot())
        })
    });
    g.finish();
}

fn snapshot_costs(c: &mut Criterion) {
    let cfg = config();
    let mut g = c.benchmark_group("live_snapshot");
    let state = LiveState::from_config(&cfg, 1).unwrap();
    state.run_ingestion().unwrap();
    let warm = state.snapshot();
    black_box(warm);
    g.bench_function("cached", |b| b.iter(|| black_box(state.snapshot())));
    g.finish();
}

criterion_group!(benches, live_vs_batch_ingest, snapshot_costs);
criterion_main!(benches);
