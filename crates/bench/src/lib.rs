//! Shared fixtures for the benchmark harness.
//!
//! Benches and the `figures` binary both need a generated study; building
//! one per measurement would swamp the timings, so fixtures are cached in
//! process-wide `OnceLock`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use mobilenet_core::study::Study;
use mobilenet_core::{Pipeline, Scale, DEFAULT_SEED};

/// The benchmark seed: fixed so numbers are comparable across runs
/// (the measurement week's start date, like [`DEFAULT_SEED`]).
pub const SEED: u64 = DEFAULT_SEED;

/// A small (1,000-commune) measured study, built once.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Small)
            .seed(SEED)
            .run()
            .expect("small fixture")
            .into_study()
    })
}

/// A medium (6,000-commune) measured study, built once. This is the scale
/// the shipped figures use.
pub fn medium_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        Pipeline::builder()
            .scale(Scale::Medium)
            .seed(SEED)
            .run()
            .expect("medium fixture")
            .into_study()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_is_cached() {
        let a = small_study() as *const Study;
        let b = small_study() as *const Study;
        assert_eq!(a, b);
    }
}
