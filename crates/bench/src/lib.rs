//! Shared fixtures for the benchmark harness.
//!
//! Benches and the `figures` binary both need a generated study; building
//! one per measurement would swamp the timings, so fixtures are cached in
//! process-wide `OnceLock`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use mobilenet_core::study::{Study, StudyConfig};

/// The benchmark seed: fixed so numbers are comparable across runs.
/// The grouping spells the measurement week's start date, 2016-09-24.
#[allow(clippy::inconsistent_digit_grouping)]
pub const SEED: u64 = 2016_09_24;

/// A small (1,000-commune) measured study, built once.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(&StudyConfig::small(), SEED))
}

/// A medium (6,000-commune) measured study, built once. This is the scale
/// the shipped figures use.
pub fn medium_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(&StudyConfig::medium(), SEED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_is_cached() {
        let a = small_study() as *const Study;
        let b = small_study() as *const Study;
        assert_eq!(a, b);
    }
}
